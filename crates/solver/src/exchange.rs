//! Ghost-cell halo exchange over the virtual cluster (paper §III.A, §IV.A,
//! §IV.C).
//!
//! Every rank shares its freshly updated wavefield layers with its six
//! neighbours. Two plans are available:
//!
//! * **full** — every component, every axis, two layers each way (the
//!   original blanket exchange);
//! * **reduced** — the §IV.A optimisation: each component travels only
//!   along the axes where the neighbouring stencils actually read it, with
//!   the minimal asymmetric widths. For σxx this cuts the message volume by
//!   75 % ("we only need to update xx in the x direction … by sending two
//!   plane faces of xx information to [one] neighbor and one plane to the
//!   [other]").
//!
//! Widths are *receiver-centric*: `(recv_lo, recv_hi)` layers land in this
//! rank's low/high halo; the matching sends are derived symmetrically.
//!
//! The data path is zero-copy: outgoing slabs are extracted into buffers
//! pooled in a [`HaloArena`] and *moved* into the mailbox (`Payload::F32`
//! carries the allocation); the receiver injects straight from the arrived
//! vector and pools it for its own next send. Steady-state stepping
//! performs no per-message heap allocation — the arena's debug ledger
//! asserts this.

use crate::arena::HaloArena;
use crate::state::WaveState;
use awp_grid::decomp::Subdomain;
use awp_grid::face::{extract_face_k, face_len_k, inject_halo_k, Axis, Face};
use awp_grid::stagger::Component;
use awp_telemetry::Phase as TelPhase;
use awp_vcluster::cluster::{CommMode, RankCtx};
use awp_vcluster::message::{make_tag, Tag};
use std::time::Duration;

/// One component-axis exchange rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldPlan {
    pub comp: Component,
    pub axis: Axis,
    /// Layers received into the low-side halo.
    pub recv_lo: usize,
    /// Layers received into the high-side halo.
    pub recv_hi: usize,
}

/// Exchange phase id (tag component).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Velocity = 1,
    Stress = 2,
}

/// Blanket plan: both halves of the two-cell padding in every direction.
pub fn full_plan(comps: &[Component]) -> Vec<FieldPlan> {
    let mut out = Vec::with_capacity(comps.len() * 3);
    for &comp in comps {
        for axis in Axis::ALL {
            out.push(FieldPlan { comp, axis, recv_lo: 2, recv_hi: 2 });
        }
    }
    out
}

/// Reduced velocity plan — derived from the stress-update stencils.
pub fn reduced_velocity_plan() -> Vec<FieldPlan> {
    use Component::*;
    vec![
        FieldPlan { comp: Vx, axis: Axis::X, recv_lo: 2, recv_hi: 1 },
        FieldPlan { comp: Vx, axis: Axis::Y, recv_lo: 1, recv_hi: 2 },
        FieldPlan { comp: Vx, axis: Axis::Z, recv_lo: 1, recv_hi: 2 },
        FieldPlan { comp: Vy, axis: Axis::X, recv_lo: 1, recv_hi: 2 },
        FieldPlan { comp: Vy, axis: Axis::Y, recv_lo: 2, recv_hi: 1 },
        FieldPlan { comp: Vy, axis: Axis::Z, recv_lo: 1, recv_hi: 2 },
        FieldPlan { comp: Vz, axis: Axis::X, recv_lo: 1, recv_hi: 2 },
        FieldPlan { comp: Vz, axis: Axis::Y, recv_lo: 1, recv_hi: 2 },
        FieldPlan { comp: Vz, axis: Axis::Z, recv_lo: 2, recv_hi: 1 },
    ]
}

/// Reduced stress plan — the normal components travel along a single axis.
pub fn reduced_stress_plan() -> Vec<FieldPlan> {
    use Component::*;
    vec![
        FieldPlan { comp: Sxx, axis: Axis::X, recv_lo: 1, recv_hi: 2 },
        FieldPlan { comp: Syy, axis: Axis::Y, recv_lo: 1, recv_hi: 2 },
        FieldPlan { comp: Szz, axis: Axis::Z, recv_lo: 1, recv_hi: 2 },
        FieldPlan { comp: Sxy, axis: Axis::X, recv_lo: 2, recv_hi: 1 },
        FieldPlan { comp: Sxy, axis: Axis::Y, recv_lo: 2, recv_hi: 1 },
        FieldPlan { comp: Sxz, axis: Axis::X, recv_lo: 2, recv_hi: 1 },
        FieldPlan { comp: Sxz, axis: Axis::Z, recv_lo: 2, recv_hi: 1 },
        FieldPlan { comp: Syz, axis: Axis::Y, recv_lo: 2, recv_hi: 1 },
        FieldPlan { comp: Syz, axis: Axis::Z, recv_lo: 2, recv_hi: 1 },
    ]
}

/// f32 volume of one plan for a subdomain (both directions) — used by the
/// communication-reduction bench.
pub fn plan_volume(plan: &[FieldPlan], dims: awp_grid::dims::Dims3) -> usize {
    plan.iter()
        .map(|p| {
            let tangential = match p.axis {
                Axis::X => dims.ny * dims.nz,
                Axis::Y => dims.nx * dims.nz,
                Axis::Z => dims.nx * dims.ny,
            };
            (p.recv_lo + p.recv_hi) * tangential
        })
        .sum()
}

fn faces_of(axis: Axis) -> (Face, Face) {
    match axis {
        Axis::X => (Face::XLo, Face::XHi),
        Axis::Y => (Face::YLo, Face::YHi),
        Axis::Z => (Face::ZLo, Face::ZHi),
    }
}

/// One outstanding receive of a started exchange: where the message comes
/// from and where its slab goes. Stored contiguously so completion needs no
/// scratch vector (MPI_Waitall used to force a second request array here).
#[derive(Debug, Clone, Copy)]
pub struct PendingRecv {
    src: usize,
    tag: Tag,
    comp: Component,
    face: Face,
    width: usize,
    /// k-plane window `[k0, k1)` the slab covers (the full extent for the
    /// global-dt path; a dt-cluster's slice under local time stepping).
    k0: usize,
    k1: usize,
    done: bool,
}

/// A started (asynchronous) exchange awaiting completion. The request list
/// is borrowed from the [`HaloArena`] and returned on finish.
pub struct PendingExchange {
    reqs: Vec<PendingRecv>,
}

/// Post receives and eager sends for a plan (asynchronous engine only).
/// Outgoing slabs are staged in arena buffers and moved into the mailbox.
pub fn start_exchange(
    state: &WaveState,
    sub: &Subdomain,
    ctx: &mut RankCtx,
    plan: &[FieldPlan],
    phase: Phase,
    step: u64,
    arena: &mut HaloArena,
) -> PendingExchange {
    let kr = (0, state.dims.nz);
    start_exchange_k(state, sub, ctx, plan, phase, step, arena, kr)
}

/// [`start_exchange`] restricted to the k-planes `[kr.0, kr.1)`: only that
/// slice of each X/Y face travels (Z faces would ship whole — the LTS
/// driver requires a z-unpartitioned decomposition, so plans carry no
/// active Z entries). Local time stepping calls this once per firing
/// dt-cluster with the cluster's k-range and a cluster-disambiguated
/// `step` tag.
#[allow(clippy::too_many_arguments)]
pub fn start_exchange_k(
    state: &WaveState,
    sub: &Subdomain,
    ctx: &mut RankCtx,
    plan: &[FieldPlan],
    phase: Phase,
    step: u64,
    arena: &mut HaloArena,
    kr: (usize, usize),
) -> PendingExchange {
    // Guarded at solver construction (`SolverConfig::validate`): a bad
    // engine/overlap combination is a ConfigError before any rank thread
    // spawns, so this cannot fire on a validated configuration.
    debug_assert_eq!(
        ctx.mode(),
        CommMode::Asynchronous,
        "overlapped exchange needs the async engine"
    );
    let t_send = ctx.telem.start();
    let mut reqs = arena.take_reqs();
    for p in plan {
        let (f_lo, f_hi) = faces_of(p.axis);
        // Post receives first.
        if let Some(nb) = sub.neighbor(f_lo) {
            if p.recv_lo > 0 {
                let tag = make_tag(phase as u8, p.comp.id() as u8, f_lo.id() as u8, step);
                reqs.push(PendingRecv {
                    src: nb,
                    tag,
                    comp: p.comp,
                    face: f_lo,
                    width: p.recv_lo,
                    k0: kr.0,
                    k1: kr.1,
                    done: false,
                });
            }
        }
        if let Some(nb) = sub.neighbor(f_hi) {
            if p.recv_hi > 0 {
                let tag = make_tag(phase as u8, p.comp.id() as u8, f_hi.id() as u8, step);
                reqs.push(PendingRecv {
                    src: nb,
                    tag,
                    comp: p.comp,
                    face: f_hi,
                    width: p.recv_hi,
                    k0: kr.0,
                    k1: kr.1,
                    done: false,
                });
            }
        }
        // Send to the low neighbour: our low-side layers land in its *high*
        // halo, so the width is the receiver's recv_hi; the receiver posted
        // the matching irecv with its f_hi face id.
        if let Some(nb) = sub.neighbor(f_lo) {
            if p.recv_hi > 0 {
                let field = state.field(p.comp);
                let mut buf = arena.take_buf(face_len_k(field, f_lo, p.recv_hi, kr.0, kr.1));
                extract_face_k(field, f_lo, p.recv_hi, kr.0, kr.1, &mut buf);
                let tag = make_tag(phase as u8, p.comp.id() as u8, f_hi.id() as u8, step);
                ctx.send(nb, tag, buf);
            }
        }
        // Send to the high neighbour: our high-side layers fill its low halo.
        if let Some(nb) = sub.neighbor(f_hi) {
            if p.recv_lo > 0 {
                let field = state.field(p.comp);
                let mut buf = arena.take_buf(face_len_k(field, f_hi, p.recv_lo, kr.0, kr.1));
                extract_face_k(field, f_hi, p.recv_lo, kr.0, kr.1, &mut buf);
                let tag = make_tag(phase as u8, p.comp.id() as u8, f_lo.id() as u8, step);
                ctx.send(nb, tag, buf);
            }
        }
    }
    ctx.telem.finish(t_send, TelPhase::Send);
    PendingExchange { reqs }
}

/// Complete a started exchange: drain every posted receive (MPI_Waitall)
/// and inject the halos. Ready messages are absorbed in arrival order via
/// `try_recv`; when nothing is ready the first outstanding request blocks.
/// Received slabs are pooled in the arena after injection — the completion
/// loop allocates nothing.
pub fn finish_exchange(
    state: &mut WaveState,
    ctx: &mut RankCtx,
    pending: PendingExchange,
    arena: &mut HaloArena,
) {
    let t_all = ctx.telem.start();
    let mut inject_ns = 0u64;
    let PendingExchange { mut reqs } = pending;
    let mut remaining = reqs.len();
    while remaining > 0 {
        let mut progressed = false;
        for r in reqs.iter_mut() {
            if r.done {
                continue;
            }
            if let Some(payload) = ctx.try_recv(r.src, r.tag) {
                let data = payload.into_f32();
                let t = ctx.telem.start();
                inject_halo_k(state.field_mut(r.comp), r.face, r.width, r.k0, r.k1, &data);
                if let Some(t) = t {
                    inject_ns += t.elapsed().as_nanos() as u64;
                }
                arena.put_buf(data);
                r.done = true;
                remaining -= 1;
                progressed = true;
            }
        }
        if !progressed {
            // Nothing arrived: donate the wait to a lagging peer — execute
            // one stolen tile from the work-stealing scheduler (if one is
            // attached) before falling back to a blocking receive. Stolen
            // tiles write disjoint cells of the *victim's* grid, so they
            // cannot perturb this rank's halos.
            if ctx.try_steal() {
                continue;
            }
            if let Some(r) = reqs.iter_mut().find(|r| !r.done) {
                let data = ctx.recv(r.src, r.tag).into_f32();
                let t = ctx.telem.start();
                inject_halo_k(state.field_mut(r.comp), r.face, r.width, r.k0, r.k1, &data);
                if let Some(t) = t {
                    inject_ns += t.elapsed().as_nanos() as u64;
                }
                arena.put_buf(data);
                r.done = true;
                remaining -= 1;
            }
        }
    }
    arena.put_reqs(reqs);
    // Split the completion interval into its two meanings: time blocked on
    // neighbours (wait, the overlap-sensitive term the shell/interior split
    // exists to shrink) and time spent copying arrived slabs into ghosts
    // (inject, presented as one span following the wait).
    if let Some(t0) = t_all {
        let inject = Duration::from_nanos(inject_ns);
        let wait = t0.elapsed().saturating_sub(inject);
        ctx.telem.span_at(TelPhase::Wait, t0, wait);
        ctx.telem.span_at(TelPhase::Inject, t0 + wait, inject);
    }
}

/// Full exchange of a plan, dispatching on the engine:
///
/// * asynchronous — `start_exchange` + `finish_exchange`;
/// * synchronous — the legacy ordered rendezvous: per axis, even-coordinate
///   ranks send first (the cascading pattern whose accumulated latency the
///   paper eliminates).
pub fn exchange(
    state: &mut WaveState,
    sub: &Subdomain,
    ctx: &mut RankCtx,
    plan: &[FieldPlan],
    phase: Phase,
    step: u64,
    arena: &mut HaloArena,
) {
    let kr = (0, state.dims.nz);
    exchange_k(state, sub, ctx, plan, phase, step, arena, kr);
}

/// [`exchange`] restricted to the k-planes `[kr.0, kr.1)` (see
/// [`start_exchange_k`]); dispatches on the engine like [`exchange`].
#[allow(clippy::too_many_arguments)]
pub fn exchange_k(
    state: &mut WaveState,
    sub: &Subdomain,
    ctx: &mut RankCtx,
    plan: &[FieldPlan],
    phase: Phase,
    step: u64,
    arena: &mut HaloArena,
    kr: (usize, usize),
) {
    match ctx.mode() {
        CommMode::Asynchronous => {
            let pending = start_exchange_k(state, sub, ctx, plan, phase, step, arena, kr);
            finish_exchange(state, ctx, pending, arena);
        }
        CommMode::Synchronous => {
            // The rendezvous path interleaves sends and receives; the whole
            // ordered exchange is one blocking wait from the solver's view.
            let t0 = ctx.telem.start();
            exchange_sync(state, sub, ctx, plan, phase, step, arena, kr);
            ctx.telem.finish(t0, TelPhase::Wait);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn exchange_sync(
    state: &mut WaveState,
    sub: &Subdomain,
    ctx: &mut RankCtx,
    plan: &[FieldPlan],
    phase: Phase,
    step: u64,
    arena: &mut HaloArena,
    kr: (usize, usize),
) {
    for p in plan {
        let (f_lo, f_hi) = faces_of(p.axis);
        let even = sub.coords[p.axis.index()] % 2 == 0;
        // Two half-phases per direction keep rendezvous sends deadlock-free.
        // Direction 1: data flows low → high (fills low halos).
        let send_hi = |state: &WaveState, ctx: &mut RankCtx, arena: &mut HaloArena| {
            if let Some(nb) = sub.neighbor(f_hi) {
                if p.recv_lo > 0 {
                    let field = state.field(p.comp);
                    let mut buf = arena.take_buf(face_len_k(field, f_hi, p.recv_lo, kr.0, kr.1));
                    extract_face_k(field, f_hi, p.recv_lo, kr.0, kr.1, &mut buf);
                    let tag = make_tag(phase as u8, p.comp.id() as u8, f_lo.id() as u8, step);
                    ctx.send(nb, tag, buf);
                }
            }
        };
        let recv_lo = |state: &mut WaveState, ctx: &mut RankCtx, arena: &mut HaloArena| {
            if let Some(nb) = sub.neighbor(f_lo) {
                if p.recv_lo > 0 {
                    let tag = make_tag(phase as u8, p.comp.id() as u8, f_lo.id() as u8, step);
                    let data = ctx.recv(nb, tag).into_f32();
                    inject_halo_k(state.field_mut(p.comp), f_lo, p.recv_lo, kr.0, kr.1, &data);
                    arena.put_buf(data);
                }
            }
        };
        if even {
            send_hi(state, ctx, arena);
            recv_lo(state, ctx, arena);
        } else {
            recv_lo(state, ctx, arena);
            send_hi(state, ctx, arena);
        }
        // Direction 2: high → low (fills high halos).
        let send_lo = |state: &WaveState, ctx: &mut RankCtx, arena: &mut HaloArena| {
            if let Some(nb) = sub.neighbor(f_lo) {
                if p.recv_hi > 0 {
                    let field = state.field(p.comp);
                    let mut buf = arena.take_buf(face_len_k(field, f_lo, p.recv_hi, kr.0, kr.1));
                    extract_face_k(field, f_lo, p.recv_hi, kr.0, kr.1, &mut buf);
                    let tag = make_tag(phase as u8, p.comp.id() as u8, f_hi.id() as u8, step);
                    ctx.send(nb, tag, buf);
                }
            }
        };
        let recv_hi = |state: &mut WaveState, ctx: &mut RankCtx, arena: &mut HaloArena| {
            if let Some(nb) = sub.neighbor(f_hi) {
                if p.recv_hi > 0 {
                    let tag = make_tag(phase as u8, p.comp.id() as u8, f_hi.id() as u8, step);
                    let data = ctx.recv(nb, tag).into_f32();
                    inject_halo_k(state.field_mut(p.comp), f_hi, p.recv_hi, kr.0, kr.1, &data);
                    arena.put_buf(data);
                }
            }
        };
        if even {
            send_lo(state, ctx, arena);
            recv_hi(state, ctx, arena);
        } else {
            recv_hi(state, ctx, arena);
            send_lo(state, ctx, arena);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awp_grid::decomp::Decomp3;
    use awp_grid::dims::Dims3;
    use awp_vcluster::Cluster;

    #[test]
    fn reduced_plans_cover_all_components() {
        let v = reduced_velocity_plan();
        let s = reduced_stress_plan();
        for c in Component::VELOCITIES {
            assert!(v.iter().any(|p| p.comp == c));
        }
        for c in Component::STRESSES {
            assert!(s.iter().any(|p| p.comp == c));
        }
        // Widths never exceed the halo.
        for p in v.iter().chain(&s) {
            assert!(p.recv_lo <= 2 && p.recv_hi <= 2);
            assert!(p.recv_lo + p.recv_hi == 3, "reduced widths are 1+2 or 2+1");
        }
    }

    #[test]
    fn reduced_volume_is_well_below_full() {
        let d = Dims3::new(32, 32, 32);
        let vol_full = plan_volume(&full_plan(&Component::ALL), d);
        let vol_red = plan_volume(&reduced_velocity_plan(), d)
            + plan_volume(&reduced_stress_plan(), d);
        // Full: 9 comps × 3 axes × 4 layers = 108 plane-units; reduced:
        // 18 entries × 3 layers = 54 → exactly half the volume overall.
        assert!(
            2 * vol_red <= vol_full,
            "reduced {vol_red} vs full {vol_full}"
        );
        // σxx specifically: 3 planes vs 12 → 75 % reduction, the paper's
        // headline number.
        let full_xx = plan_volume(
            &full_plan(&[Component::Sxx]),
            d,
        );
        let red_xx: usize = plan_volume(
            &reduced_stress_plan()
                .into_iter()
                .filter(|p| p.comp == Component::Sxx)
                .collect::<Vec<_>>(),
            d,
        );
        assert_eq!(red_xx * 4, full_xx, "xx message volume reduced by exactly 75%");
    }

    /// Exchange across a 2-rank split reproduces the neighbour's interior
    /// layers, for both engines and both plans.
    #[test]
    fn exchange_fills_halos_correctly() {
        let global = Dims3::new(8, 4, 4);
        let decomp = Decomp3::new(global, [2, 1, 1]);
        for mode in [CommMode::Asynchronous, CommMode::Synchronous] {
            for reduced in [false, true] {
                let cluster = Cluster::new(2, mode);
                let checks: Vec<bool> = cluster.run(|ctx| {
                    let sub = decomp.subdomain(ctx.rank());
                    let mut st = WaveState::new(sub.dims, false);
                    let mut arena = HaloArena::new();
                    // Value encodes (global i, rank-independent).
                    for c in Component::ALL {
                        let f = st.field_mut(c);
                        for k in 0..4 {
                            for j in 0..4 {
                                for i in 0..4 {
                                    let gi = sub.origin.i + i;
                                    f.set(
                                        i as isize,
                                        j as isize,
                                        k as isize,
                                        (gi * 100 + c.id()) as f32,
                                    );
                                }
                            }
                        }
                    }
                    let plan = if reduced {
                        let mut p = reduced_velocity_plan();
                        p.extend(reduced_stress_plan());
                        p
                    } else {
                        full_plan(&Component::ALL)
                    };
                    exchange(&mut st, &sub, ctx, &plan, Phase::Velocity, 0, &mut arena);
                    // Verify: rank 0's high halo along x holds global i = 4
                    // (width ≥ 1 in every plan for the receiving side).
                    let mut ok = true;
                    for p in &plan {
                        if p.axis != Axis::X {
                            continue;
                        }
                        let f = st.field(p.comp);
                        if ctx.rank() == 0 && p.recv_hi >= 1 {
                            ok &= f.get(4, 1, 1) == (400 + p.comp.id()) as f32;
                        }
                        if ctx.rank() == 1 && p.recv_lo >= 1 {
                            ok &= f.get(-1, 1, 1) == (300 + p.comp.id()) as f32;
                        }
                    }
                    ok
                });
                assert!(checks.iter().all(|&c| c), "mode {mode:?} reduced {reduced}");
            }
        }
    }

    /// Overlap-style start/finish across 4 ranks in a row.
    #[test]
    fn start_finish_exchange_works_split() {
        let global = Dims3::new(8, 8, 4);
        let decomp = Decomp3::new(global, [2, 2, 1]);
        let cluster = Cluster::new(4, CommMode::Asynchronous);
        let maxdiff: Vec<f32> = cluster.run(|ctx| {
            let sub = decomp.subdomain(ctx.rank());
            let mut st = WaveState::new(sub.dims, false);
            let mut arena = HaloArena::new();
            st.vx.map_interior(|idx, _| {
                let g = sub.local_to_global(idx);
                (g.i + 10 * g.j) as f32
            });
            let plan: Vec<FieldPlan> = reduced_velocity_plan()
                .into_iter()
                .filter(|p| p.comp == Component::Vx)
                .collect();
            let pending = start_exchange(&st, &sub, ctx, &plan, Phase::Velocity, 7, &mut arena);
            finish_exchange(&mut st, ctx, pending, &mut arena);
            // Check one halo value against the global function.
            let mut err: f32 = 0.0;
            if sub.neighbor(Face::XHi).is_some() {
                let g = sub.local_to_global(awp_grid::dims::Idx3::new(sub.dims.nx - 1, 0, 0));
                let want = (g.i + 1 + 10 * g.j) as f32;
                err = err.max((st.vx.get(sub.dims.nx as isize, 0, 0) - want).abs());
            }
            if sub.neighbor(Face::YHi).is_some() {
                let g = sub.local_to_global(awp_grid::dims::Idx3::new(0, sub.dims.ny - 1, 0));
                let want = (g.i + 10 * (g.j + 1)) as f32;
                err = err.max((st.vx.get(0, sub.dims.ny as isize, 0) - want).abs());
            }
            err
        });
        assert!(maxdiff.iter().all(|&e| e == 0.0), "{maxdiff:?}");
    }

    /// The tentpole's zero-allocation guarantee: after a warmup step has
    /// sized every pooled buffer, further steady-state exchanges must not
    /// touch the heap (the arena ledger stays flat).
    #[test]
    fn steady_state_exchange_is_allocation_free() {
        let global = Dims3::new(8, 8, 8);
        let decomp = Decomp3::new(global, [2, 2, 2]);
        let cluster = Cluster::new(8, CommMode::Asynchronous);
        let flats: Vec<bool> = cluster.run(|ctx| {
            let sub = decomp.subdomain(ctx.rank());
            let mut st = WaveState::new(sub.dims, false);
            let mut arena = HaloArena::new();
            let mut plan = reduced_velocity_plan();
            plan.extend(reduced_stress_plan());
            // Warmup: pools fill and buffers grow to the largest slab.
            for step in 0..3 {
                exchange(&mut st, &sub, ctx, &plan, Phase::Velocity, step, &mut arena);
            }
            ctx.barrier();
            let warm = arena.allocations();
            for step in 3..13 {
                exchange(&mut st, &sub, ctx, &plan, Phase::Velocity, step, &mut arena);
            }
            ctx.barrier();
            arena.allocations() == warm
        });
        assert!(flats.iter().all(|&f| f), "{flats:?}");
    }
}
