//! Validation toolkit (aVal) and derived data-product analysis (dPDA) for
//! the AWP-ODC reproduction (paper §III.H and §VII.C).
//!
//! * [`aval`] — the acceptance test: L2-norm waveform comparison against a
//!   reference solution;
//! * [`pgv`] — peak-ground-velocity maps assembled from per-rank
//!   fragments, directivity ratios, and ASCII rendering;
//! * [`gmpe`] — the NGA attenuation relations used in the paper's Fig. 23
//!   (Boore & Atkinson 2008; Campbell & Bozorgnia 2008, PGV);
//! * [`distance`] — fault-distance measures and rock-site selection;
//! * [`rupturevel`] — rupture-velocity fields and super-shear detection
//!   (Fig. 19c, Fig. 22);
//! * [`record`] — JSON experiment records written by the bench harness.

pub mod aval;
pub mod distance;
pub mod gmpe;
pub mod pgv;
pub mod record;
pub mod rupturevel;

pub use aval::{AcceptanceReport, AcceptanceTest};
pub use gmpe::{ba08_pgv, cb08_pgv, GmpeEstimate};
pub use pgv::PgvMap;
pub use record::ExperimentRecord;
