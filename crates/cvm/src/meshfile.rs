//! The single global mesh file produced by CVM2MESH and consumed by the
//! mesh partitioner (paper §III.B–C).
//!
//! Layout: a fixed header, then point-interleaved `(vp, vs, rho, qs, qp)`
//! f32 records in x-fastest order. One XY plane is therefore a contiguous
//! byte range — exactly the property PetaMeshP's "readers" exploit ("each
//! XY plane is read in parallel … and distributed to the associated
//! receivers", §III.C, Fig. 9).

use crate::mesh::Mesh;
use awp_grid::dims::Dims3;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic, bumped on format change.
pub const MAGIC: &[u8; 8] = b"AWPMESH1";

/// f32 values per mesh point.
pub const VALUES_PER_POINT: usize = 5;

/// Bytes per mesh point record.
pub const RECORD_BYTES: usize = VALUES_PER_POINT * 4;

/// Header size in bytes: magic + 3×u64 dims + f64 h.
pub const HEADER_BYTES: u64 = 8 + 3 * 8 + 8;

/// Write a mesh to `path`.
pub fn write_mesh(path: &Path, mesh: &Mesh) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(mesh.dims.nx as u64).to_le_bytes())?;
    w.write_all(&(mesh.dims.ny as u64).to_le_bytes())?;
    w.write_all(&(mesh.dims.nz as u64).to_le_bytes())?;
    w.write_all(&mesh.h.to_le_bytes())?;
    let n = mesh.dims.count();
    let mut rec = [0u8; RECORD_BYTES];
    for p in 0..n {
        rec[0..4].copy_from_slice(&mesh.vp[p].to_le_bytes());
        rec[4..8].copy_from_slice(&mesh.vs[p].to_le_bytes());
        rec[8..12].copy_from_slice(&mesh.rho[p].to_le_bytes());
        rec[12..16].copy_from_slice(&mesh.qs[p].to_le_bytes());
        rec[16..20].copy_from_slice(&mesh.qp[p].to_le_bytes());
        w.write_all(&rec)?;
    }
    w.flush()
}

/// Read the header of a mesh file: `(dims, h)`.
pub fn read_header(path: &Path) -> io::Result<(Dims3, f64)> {
    let mut r = BufReader::new(File::open(path)?);
    read_header_from(&mut r)
}

fn read_header_from<R: Read>(r: &mut R) -> io::Result<(Dims3, f64)> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad mesh file magic"));
    }
    let mut b8 = [0u8; 8];
    let mut next_u64 = |r: &mut R| -> io::Result<u64> {
        r.read_exact(&mut b8)?;
        Ok(u64::from_le_bytes(b8))
    };
    let nx = next_u64(r)? as usize;
    let ny = next_u64(r)? as usize;
    let nz = next_u64(r)? as usize;
    r.read_exact(&mut b8)?;
    let h = f64::from_le_bytes(b8);
    Ok((Dims3::new(nx, ny, nz), h))
}

/// Read an entire mesh file.
pub fn read_mesh(path: &Path) -> io::Result<Mesh> {
    let mut r = BufReader::new(File::open(path)?);
    let (dims, h) = read_header_from(&mut r)?;
    let n = dims.count();
    let mut mesh = Mesh::zeroed(dims, h);
    let mut rec = [0u8; RECORD_BYTES];
    for p in 0..n {
        r.read_exact(&mut rec)?;
        mesh.vp[p] = f32::from_le_bytes(rec[0..4].try_into().unwrap());
        mesh.vs[p] = f32::from_le_bytes(rec[4..8].try_into().unwrap());
        mesh.rho[p] = f32::from_le_bytes(rec[8..12].try_into().unwrap());
        mesh.qs[p] = f32::from_le_bytes(rec[12..16].try_into().unwrap());
        mesh.qp[p] = f32::from_le_bytes(rec[16..20].try_into().unwrap());
    }
    Ok(mesh)
}

/// Byte offset of point `(i, j, k)`'s record.
pub fn point_offset(dims: Dims3, i: usize, j: usize, k: usize) -> u64 {
    HEADER_BYTES + (dims.linear(awp_grid::dims::Idx3::new(i, j, k)) as u64) * RECORD_BYTES as u64
}

/// Read one contiguous XY plane (fixed `k`): returns `nx*ny` records of
/// `VALUES_PER_POINT` f32 each, flattened. This is the "contiguous burst
/// reading" unit of Fig. 9.
pub fn read_plane(path: &Path, k: usize) -> io::Result<Vec<f32>> {
    let mut f = File::open(path)?;
    let (dims, _) = {
        let mut r = BufReader::new(&mut f);
        read_header_from(&mut r)?
    };
    if k >= dims.nz {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "plane index out of range"));
    }
    let plane_points = dims.nx * dims.ny;
    let start = point_offset(dims, 0, 0, k);
    f.seek(SeekFrom::Start(start))?;
    let mut bytes = vec![0u8; plane_points * RECORD_BYTES];
    f.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Read a sub-volume `[i0..i0+nx) × [j0..j0+ny) × [k0..k0+nz)` as an
/// interleaved record buffer — the per-rank extraction of the mesh
/// partitioner. Performs one seek+read per x-row (the natural fragmentation
/// the paper's §III.C wrestles with).
#[allow(clippy::too_many_arguments)]
pub fn read_subvolume(
    path: &Path,
    i0: usize,
    j0: usize,
    k0: usize,
    nx: usize,
    ny: usize,
    nz: usize,
) -> io::Result<Vec<f32>> {
    let mut f = File::open(path)?;
    let (dims, _) = {
        let mut r = BufReader::new(&mut f);
        read_header_from(&mut r)?
    };
    if i0 + nx > dims.nx || j0 + ny > dims.ny || k0 + nz > dims.nz {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "subvolume out of range"));
    }
    let mut out = Vec::with_capacity(nx * ny * nz * VALUES_PER_POINT);
    let mut row = vec![0u8; nx * RECORD_BYTES];
    for k in k0..k0 + nz {
        for j in j0..j0 + ny {
            f.seek(SeekFrom::Start(point_offset(dims, i0, j, k)))?;
            f.read_exact(&mut row)?;
            out.extend(row.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())));
        }
    }
    Ok(out)
}

/// Rebuild a [`Mesh`] from an interleaved record buffer.
pub fn mesh_from_records(dims: Dims3, h: f64, records: &[f32]) -> Mesh {
    assert_eq!(records.len(), dims.count() * VALUES_PER_POINT, "record count mismatch");
    let mut mesh = Mesh::zeroed(dims, h);
    for p in 0..dims.count() {
        let r = &records[p * VALUES_PER_POINT..(p + 1) * VALUES_PER_POINT];
        mesh.vp[p] = r[0];
        mesh.vs[p] = r[1];
        mesh.rho[p] = r[2];
        mesh.qs[p] = r[3];
        mesh.qp[p] = r[4];
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::MeshGenerator;
    use crate::model::LayeredModel;

    fn sample_mesh() -> Mesh {
        let m = LayeredModel::gradient_crust(760.0);
        MeshGenerator::new(&m, Dims3::new(6, 5, 4), 500.0).generate()
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("mesh.bin");
        let mesh = sample_mesh();
        write_mesh(&path, &mesh).unwrap();
        let back = read_mesh(&path).unwrap();
        assert_eq!(mesh, back);
    }

    #[test]
    fn header_reads_dims() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("mesh.bin");
        let mesh = sample_mesh();
        write_mesh(&path, &mesh).unwrap();
        let (dims, h) = read_header(&path).unwrap();
        assert_eq!(dims, mesh.dims);
        assert_eq!(h, mesh.h);
    }

    #[test]
    fn plane_read_matches_full() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("mesh.bin");
        let mesh = sample_mesh();
        write_mesh(&path, &mesh).unwrap();
        let k = 2;
        let plane = read_plane(&path, k).unwrap();
        assert_eq!(plane.len(), 6 * 5 * VALUES_PER_POINT);
        for j in 0..5 {
            for i in 0..6 {
                let rec = &plane[(i + 6 * j) * VALUES_PER_POINT..][..VALUES_PER_POINT];
                let s = mesh.sample(i, j, k);
                assert_eq!(rec, [s.vp, s.vs, s.rho, s.qs, s.qp]);
            }
        }
    }

    #[test]
    fn subvolume_matches_full() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("mesh.bin");
        let mesh = sample_mesh();
        write_mesh(&path, &mesh).unwrap();
        let recs = read_subvolume(&path, 1, 2, 1, 3, 2, 2).unwrap();
        let sub = mesh_from_records(Dims3::new(3, 2, 2), mesh.h, &recs);
        for k in 0..2 {
            for j in 0..2 {
                for i in 0..3 {
                    assert_eq!(sub.sample(i, j, k), mesh.sample(i + 1, j + 2, k + 1));
                }
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("junk.bin");
        std::fs::write(&path, b"NOTAMESHxxxxxxxxxxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(read_mesh(&path).is_err());
        assert!(read_header(&path).is_err());
    }

    #[test]
    fn out_of_range_plane_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("mesh.bin");
        write_mesh(&path, &sample_mesh()).unwrap();
        assert!(read_plane(&path, 99).is_err());
        assert!(read_subvolume(&path, 0, 0, 0, 7, 1, 1).is_err());
    }
}
