//! Quickstart: a point earthquake in a layered crust.
//!
//! Builds a small mesh from a layered velocity model, fires a Mw 5.5
//! strike-slip point source, runs the AWM solver, and prints station
//! seismogram summaries plus an ASCII PGV map.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use awp_odc::analysis::pgv::PgvMap;
use awp_odc::cvm::mesh::MeshGenerator;
use awp_odc::cvm::model::LayeredModel;
use awp_odc::grid::dims::{Dims3, Idx3};
use awp_odc::solver::config::{AbcKind, SolverConfig};
use awp_odc::solver::solver::Solver;
use awp_odc::solver::stations::Station;
use awp_odc::source::kinematic::KinematicSource;
use awp_odc::source::moment::{moment_of_magnitude, MomentTensor};
use awp_odc::source::stf::Stf;

fn main() {
    // 12 × 12 × 8 km at 150 m spacing.
    let dims = Dims3::new(80, 80, 54);
    let h = 150.0;
    let model = LayeredModel::gradient_crust(900.0);
    println!("generating mesh {dims:?} at h = {h} m ...");
    let mesh = MeshGenerator::new(&model, dims, h).generate();
    let stats = mesh.stats();
    let dt = stats.dt_max() * 0.9;
    println!(
        "Vs ∈ [{:.0}, {:.0}] m/s, dt = {:.4} s, resolves {:.1} Hz at 5 ppw",
        stats.vs_min,
        stats.vs_max,
        dt,
        stats.f_max(5.0)
    );

    // Mw 5.5 strike-slip point source at 4 km depth.
    let source = KinematicSource::point(
        Idx3::new(40, 40, 27),
        MomentTensor::strike_slip(0.5),
        moment_of_magnitude(5.5),
        Stf::Triangle { rise_time: 0.6 },
        dt,
    );
    println!("source: Mw {:.2}, {} subfault(s)", source.magnitude(), source.subfaults.len());

    let stations = vec![
        Station::new("epicentre", Idx3::new(40, 40, 0)),
        Station::new("5km-east", Idx3::new(73, 40, 0)),
        Station::new("7km-diag", Idx3::new(73, 73, 0)),
    ];

    let steps = (8.0 / dt) as usize;
    let cfg = SolverConfig {
        abc: AbcKind::Mpml { width: 10, pmax: 0.3 },
        free_surface: true,
        attenuation: true,
        q_band: (0.2, 4.0),
        ..SolverConfig::small(dims, h, dt, steps)
    };
    println!("running {steps} steps ({} grid cells) ...", dims.count());
    let t0 = std::time::Instant::now();
    let res = Solver::run_serial(cfg, &mesh, &source, &stations);
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "done in {wall:.1} s — {:.2} Gflop/s sustained\n",
        res.flops as f64 / wall / 1e9
    );

    println!("station          PGVH (m/s)   peak vz (m/s)");
    for s in &res.seismograms {
        let pvz = s.vz.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        println!("{:<16} {:>10.4}   {:>10.4}", s.station.name, s.pgvh_rss(), pvz);
    }

    let map = PgvMap::from_field(
        res.pgv_map.iter().map(|&v| v as f64).collect(),
        dims.nx,
        dims.ny,
        h,
    );
    println!("\nsurface PGV map (log scale, {:.3} m/s max):", map.max());
    println!("{}", map.to_ascii(64));
}
