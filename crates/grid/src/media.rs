//! Effective-media averaging at staggered points (paper §IV.B).
//!
//! The Lamé parameters are sampled at cell centres; the staggered updates
//! need them at edge/face points, where AWP-ODC uses harmonic means (the
//! `xl = 8./(Σ 1/λ)` kernel the paper shows — the arrays store *reciprocals*
//! of `mu` and `lam`, one of the single-CPU optimisations of §IV.B, so the
//! 8-point harmonic mean becomes one division). Densities are averaged
//! arithmetically at velocity points.

/// Harmonic mean of 8 positive values.
///
/// Returns 0 when any input is 0 (a void treats the effective modulus as 0).
#[inline]
pub fn harmonic_mean8(v: [f32; 8]) -> f32 {
    let mut s = 0.0f32;
    for x in v {
        if x <= 0.0 {
            return 0.0;
        }
        s += 1.0 / x;
    }
    8.0 / s
}

/// Harmonic mean of 2 positive values (edge-centred shear modulus in 2-D
/// sub-stencils and fault-plane averaging).
#[inline]
pub fn harmonic_mean2(a: f32, b: f32) -> f32 {
    if a <= 0.0 || b <= 0.0 {
        return 0.0;
    }
    2.0 * a * b / (a + b)
}

/// Harmonic mean of 4 positive values (face-centred shear modulus).
#[inline]
pub fn harmonic_mean4(v: [f32; 4]) -> f32 {
    let mut s = 0.0f32;
    for x in v {
        if x <= 0.0 {
            return 0.0;
        }
        s += 1.0 / x;
    }
    4.0 / s
}

/// Arithmetic 2-point mean (density at velocity points).
#[inline]
pub fn arithmetic_mean2(a: f32, b: f32) -> f32 {
    0.5 * (a + b)
}

/// The paper's reciprocal-storage kernel: given stored reciprocals `r[i] =
/// 1/λ_i`, the effective modulus is `8 / Σ r_i` — one division instead of
/// eight.
#[inline]
pub fn harmonic_from_reciprocals8(r: [f32; 8]) -> f32 {
    let s: f32 = r.iter().sum();
    if s <= 0.0 {
        0.0
    } else {
        8.0 / s
    }
}

/// Elastic moduli from wave speeds: `μ = ρ V_s²`, `λ = ρ (V_p² − 2 V_s²)`.
#[inline]
pub fn lame_from_speeds(rho: f32, vp: f32, vs: f32) -> (f32, f32) {
    let mu = rho * vs * vs;
    let lam = rho * (vp * vp - 2.0 * vs * vs);
    (lam, mu)
}

/// Wave speeds from moduli (inverse of [`lame_from_speeds`]).
#[inline]
pub fn speeds_from_lame(rho: f32, lam: f32, mu: f32) -> (f32, f32) {
    let vp = ((lam + 2.0 * mu) / rho).max(0.0).sqrt();
    let vs = (mu / rho).max(0.0).sqrt();
    (vp, vs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_of_equal_values_is_value() {
        assert!((harmonic_mean8([5.0; 8]) - 5.0).abs() < 1e-6);
        assert!((harmonic_mean4([3.0; 4]) - 3.0).abs() < 1e-6);
        assert!((harmonic_mean2(2.0, 2.0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn harmonic_below_arithmetic() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let h = harmonic_mean8(v);
        let a: f32 = v.iter().sum::<f32>() / 8.0;
        assert!(h < a);
        assert!(h > 0.0);
    }

    #[test]
    fn zero_input_short_circuits() {
        assert_eq!(harmonic_mean8([1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0]), 0.0);
        assert_eq!(harmonic_mean2(0.0, 5.0), 0.0);
        assert_eq!(harmonic_mean4([1.0, 0.0, 1.0, 1.0]), 0.0);
    }

    #[test]
    fn reciprocal_form_matches_direct() {
        let v = [2.0f32, 4.0, 8.0, 2.0, 4.0, 8.0, 2.0, 4.0];
        let r = v.map(|x| 1.0 / x);
        let direct = harmonic_mean8(v);
        let recip = harmonic_from_reciprocals8(r);
        assert!((direct - recip).abs() < 1e-5, "{direct} vs {recip}");
    }

    #[test]
    fn lame_round_trip() {
        let (rho, vp, vs) = (2700.0f32, 6000.0f32, 3464.0f32);
        let (lam, mu) = lame_from_speeds(rho, vp, vs);
        assert!(lam > 0.0 && mu > 0.0);
        let (vp2, vs2) = speeds_from_lame(rho, lam, mu);
        assert!((vp - vp2).abs() / vp < 1e-5);
        assert!((vs - vs2).abs() / vs < 1e-5);
    }

    #[test]
    fn poisson_solid_has_lam_eq_mu() {
        // Vp/Vs = √3 → λ = μ.
        let (lam, mu) = lame_from_speeds(1000.0, 3.0f32.sqrt(), 1.0);
        assert!((lam - mu).abs() / mu < 1e-4);
    }
}
