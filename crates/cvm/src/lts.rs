//! Depth-keyed dt-cluster construction for local time stepping.
//!
//! The solver's global step is bound by the *worldwide* Vp maximum, so in
//! velocity structures with strong depth contrast (soft basins over hard
//! basement) most of the column is stepped far below its local CFL limit.
//! This module partitions the depth axis into **rate-2ᵏ clusters**: maximal
//! z-slabs whose local CFL bound admits a step of `rate × dt`, with rates
//! constrained to powers of two and adjacent slabs to a 2× ratio so the
//! solver's cluster schedule only ever couples clusters one octave apart.
//!
//! Clustering is along depth only: the CVM's velocity contrast is
//! depth-dominated (layering, basins), the per-plane Vp profile reduces
//! across x/y-partitioned ranks by elementwise max, and z-slabs keep every
//! cluster interface a pair of horizontal planes — cheap to snapshot and
//! time-interpolate.
//!
//! All adjustments are **conservative**: a plane's assigned rate only ever
//! decreases below its CFL-derived bound, never above, so every cluster
//! step `rate × dt` is stable wherever it is applied.

use crate::mesh::Mesh;

/// One dt-cluster: the depth planes `[k0, k1)` stepped at `rate × dt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    pub k0: usize,
    pub k1: usize,
    /// Power-of-two step multiplier (1 = the global dt).
    pub rate: u32,
}

impl ClusterSpec {
    pub fn planes(&self) -> usize {
        self.k1 - self.k0
    }
}

/// Per-plane rate bound: the largest power of two `r ≤ 2^max_rate_log2`
/// with `r × dt` within plane k's own CFL limit `6h/(7√3 · vp_max(k))`.
pub fn rate_profile(vp_max_per_k: &[f64], h: f64, dt: f64, max_rate_log2: u32) -> Vec<u32> {
    let cap = 1u32 << max_rate_log2.min(16);
    vp_max_per_k
        .iter()
        .map(|&vp| {
            let dt_cfl = 6.0 * h / (7.0 * 3.0f64.sqrt() * vp.max(1e-9));
            let mut r = 1u32;
            while r < cap && f64::from(r * 2) * dt <= dt_cfl {
                r *= 2;
            }
            r
        })
        .collect()
}

/// Turn a per-plane rate profile into a cluster partition:
///
/// 1. normalise so the finest rate is 1 (a uniformly coarse profile means
///    the *caller's* dt is conservative; rates are relative, and rate 1
///    must mean "steps every global tick" so a single cluster degenerates
///    to the plain scheme);
/// 2. relax to a 2× adjacent ratio by lowering rates;
/// 3. widen slabs thinner than `min_slab` planes by stealing planes from a
///    coarser neighbour (lowering their rate), or — when no coarser
///    neighbour exists — absorbing the slab into its finest neighbour;
/// 4. merge equal-rate neighbours.
///
/// The result: consecutive clusters differ by **exactly** 2×, every
/// cluster is at least `min_slab` planes thick (unless the whole column is
/// one cluster), and no plane's rate exceeds its profile bound.
pub fn clusters_from_profile(rates: &[u32], min_slab: usize) -> Vec<ClusterSpec> {
    assert!(!rates.is_empty(), "empty rate profile");
    let min_slab = min_slab.max(1);
    let m = *rates.iter().min().unwrap();
    let mut r: Vec<u32> = rates.iter().map(|&x| (x / m).max(1)).collect();
    // 2× adjacent-ratio relaxation (pure lowering; fixed point exists
    // because rates only decrease and are bounded below by 1).
    loop {
        let mut changed = false;
        for k in 0..r.len() {
            let mut cap = r[k];
            if k > 0 {
                cap = cap.min(2 * r[k - 1]);
            }
            if k + 1 < r.len() {
                cap = cap.min(2 * r[k + 1]);
            }
            if cap < r[k] {
                r[k] = cap;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Runs of equal rate → slabs.
    let mut slabs: Vec<ClusterSpec> = Vec::new();
    for (k, &rate) in r.iter().enumerate() {
        match slabs.last_mut() {
            Some(s) if s.rate == rate => s.k1 = k + 1,
            _ => slabs.push(ClusterSpec { k0: k, k1: k + 1, rate }),
        }
    }
    // Thickness/ratio repair loop. Every action lowers some plane's rate
    // or shrinks the slab count, so the loop terminates; `fuel` guards
    // against a logic regression turning that into a hang.
    let mut fuel = 4 * rates.len().max(16);
    loop {
        fuel -= 1;
        assert!(fuel > 0, "cluster repair did not converge");
        // Merge equal neighbours first.
        let mut merged: Vec<ClusterSpec> = Vec::new();
        for s in &slabs {
            match merged.last_mut() {
                Some(p) if p.rate == s.rate => p.k1 = s.k1,
                _ => merged.push(*s),
            }
        }
        slabs = merged;
        if slabs.len() <= 1 {
            break;
        }
        // Enforce the 2× ratio (can be re-broken by an absorb below).
        if let Some(i) = (0..slabs.len() - 1)
            .find(|&i| slabs[i].rate.max(slabs[i + 1].rate) > 2 * slabs[i].rate.min(slabs[i + 1].rate))
        {
            let lo = slabs[i].rate.min(slabs[i + 1].rate);
            let hi = if slabs[i].rate > slabs[i + 1].rate { i } else { i + 1 };
            slabs[hi].rate = 2 * lo;
            continue;
        }
        // Widen or absorb a thin slab.
        if let Some(i) = (0..slabs.len()).find(|&i| slabs[i].planes() < min_slab) {
            let above = i.checked_sub(1).map(|p| slabs[p].rate);
            let below = slabs.get(i + 1).map(|n| n.rate);
            let coarser_above = above.is_some_and(|r| r > slabs[i].rate);
            let coarser_below = below.is_some_and(|r| r > slabs[i].rate);
            if coarser_above || coarser_below {
                // Steal one plane from the coarser side (prefer the
                // coarser of the two): that plane's rate drops to ours.
                let from_above = match (coarser_above, coarser_below) {
                    (true, true) => above.unwrap() >= below.unwrap(),
                    (a, _) => a,
                };
                if from_above {
                    slabs[i - 1].k1 -= 1;
                    slabs[i].k0 -= 1;
                    if slabs[i - 1].planes() == 0 {
                        slabs.remove(i - 1);
                    }
                } else {
                    slabs[i + 1].k0 += 1;
                    slabs[i].k1 += 1;
                    if slabs[i + 1].planes() == 0 {
                        slabs.remove(i + 1);
                    }
                }
            } else {
                // All neighbours are finer: fold this slab down to the
                // finest adjacent rate (conservative) and let the merge
                // pass fuse them.
                let tgt = above.into_iter().chain(below).min().unwrap();
                slabs[i].rate = tgt;
            }
            continue;
        }
        break;
    }
    slabs
}

/// Full clustering pass over a mesh: per-plane Vp profile → rate profile →
/// cluster partition.
pub fn cluster_by_depth(mesh: &Mesh, dt: f64, max_rate_log2: u32, min_slab: usize) -> Vec<ClusterSpec> {
    clusters_from_profile(&rate_profile(&mesh.vp_max_per_k(), mesh.h, dt, max_rate_log2), min_slab)
}

/// Ideal wall-clock speedup of the cluster census over global-dt stepping,
/// counting kernel plane-updates only: `nz / Σ planes_c / rate_c`.
pub fn theoretical_speedup(clusters: &[ClusterSpec]) -> f64 {
    let nz: usize = clusters.iter().map(ClusterSpec::planes).sum();
    let cost: f64 = clusters.iter().map(|c| c.planes() as f64 / f64::from(c.rate)).sum();
    if cost > 0.0 {
        nz as f64 / cost
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::MeshGenerator;
    use crate::model::{HomogeneousModel, LayeredModel};
    use awp_grid::dims::Dims3;

    fn check_invariants(specs: &[ClusterSpec], nz: usize, min_slab: usize) {
        assert_eq!(specs.first().unwrap().k0, 0);
        assert_eq!(specs.last().unwrap().k1, nz);
        for w in specs.windows(2) {
            assert_eq!(w[0].k1, w[1].k0, "contiguous");
            let (a, b) = (w[0].rate, w[1].rate);
            assert_eq!(a.max(b), 2 * a.min(b), "adjacent clusters differ by exactly 2x: {specs:?}");
        }
        for s in specs {
            assert!(s.rate.is_power_of_two());
            if specs.len() > 1 {
                assert!(s.planes() >= min_slab, "thin slab in {specs:?}");
            }
        }
        assert_eq!(specs.iter().map(|s| s.rate).min(), Some(1), "finest rate is 1");
    }

    #[test]
    fn homogeneous_collapses_to_one_cluster() {
        let mesh =
            MeshGenerator::new(&HomogeneousModel::rock(), Dims3::new(4, 4, 16), 100.0).generate();
        let dt = mesh.stats().dt_max() * 0.9;
        let specs = cluster_by_depth(&mesh, dt, 3, 4);
        assert_eq!(specs, vec![ClusterSpec { k0: 0, k1: 16, rate: 1 }]);
        // Even a uniformly *soft* medium (every plane could rate-4) is one
        // rate-1 cluster after normalisation: the caller's dt is simply
        // conservative and clustering has nothing to exploit.
        let soft = MeshGenerator::new(
            &HomogeneousModel::new(1500.0, 600.0, 2000.0),
            Dims3::new(4, 4, 16),
            100.0,
        )
        .generate();
        let specs = cluster_by_depth(&soft, dt, 3, 4);
        assert_eq!(specs, vec![ClusterSpec { k0: 0, k1: 16, rate: 1 }]);
    }

    #[test]
    fn loh1_contrast_is_below_one_octave() {
        // Vp 4000 over 6000: ratio 1.5 < 2, so no plane earns rate 2 and
        // the whole column stays a single cluster.
        let mesh = MeshGenerator::new(&LayeredModel::loh1(), Dims3::new(4, 4, 20), 100.0).generate();
        let dt = mesh.stats().dt_max() * 0.95;
        assert_eq!(cluster_by_depth(&mesh, dt, 3, 4).len(), 1);
    }

    #[test]
    fn basin_earns_transition_band() {
        // 12 soft planes (rate-4 capable) over 4 rock planes: the 2x ratio
        // rule needs a rate-2 band, widened to min_slab by stealing from
        // the rate-4 side.
        let mut prof = vec![1500.0; 12];
        prof.extend([6000.0; 4]);
        let h = 100.0;
        let dt = 6.0 * h / (7.0 * 3.0f64.sqrt() * 6000.0) * 0.999;
        let rates = rate_profile(&prof, h, dt, 3);
        assert_eq!(&rates[..12], &[4; 12]);
        assert_eq!(&rates[12..], &[1; 4]);
        let specs = clusters_from_profile(&rates, 4);
        check_invariants(&specs, 16, 4);
        assert_eq!(
            specs,
            vec![
                ClusterSpec { k0: 0, k1: 8, rate: 4 },
                ClusterSpec { k0: 8, k1: 12, rate: 2 },
                ClusterSpec { k0: 12, k1: 16, rate: 1 },
            ]
        );
        let s = theoretical_speedup(&specs);
        assert!((s - 2.0).abs() < 1e-12, "16/(2+2+4) = 2.0, got {s}");
    }

    #[test]
    fn deep_contrast_builds_octave_ladder() {
        // Rate-8-capable soft column over rock: bands 8/4/2/1, each
        // transition band at least min_slab planes.
        let mut prof = vec![700.0; 24];
        prof.extend([6000.0; 8]);
        let h = 100.0;
        let dt = 6.0 * h / (7.0 * 3.0f64.sqrt() * 6000.0) * 0.999;
        let specs = clusters_from_profile(&rate_profile(&prof, h, dt, 3), 4);
        check_invariants(&specs, 32, 4);
        let ladder: Vec<u32> = specs.iter().map(|s| s.rate).collect();
        assert_eq!(ladder, vec![8, 4, 2, 1]);
    }

    #[test]
    fn rate_cap_is_honoured() {
        let mut prof = vec![700.0; 24];
        prof.extend([6000.0; 8]);
        let h = 100.0;
        let dt = 6.0 * h / (7.0 * 3.0f64.sqrt() * 6000.0) * 0.999;
        let specs = clusters_from_profile(&rate_profile(&prof, h, dt, 1), 4);
        check_invariants(&specs, 32, 4);
        assert!(specs.iter().all(|s| s.rate <= 2));
    }

    #[test]
    fn thin_max_rate_slab_folds_down() {
        // A 2-plane rate-4 cap between rate-2 material: no coarser
        // neighbour to steal from, so it folds into the finer rate.
        let rates = [2, 2, 2, 2, 4, 4, 2, 2, 2, 2, 1, 1, 1, 1];
        let specs = clusters_from_profile(&rates, 4);
        check_invariants(&specs, 14, 4);
        assert_eq!(
            specs,
            vec![ClusterSpec { k0: 0, k1: 10, rate: 2 }, ClusterSpec { k0: 10, k1: 14, rate: 1 }]
        );
    }

    #[test]
    fn rates_never_exceed_profile() {
        // Conservativity: whatever the repair loop does, no plane may end
        // up above its CFL-derived bound (after normalisation).
        let profiles: [&[u32]; 4] = [
            &[8, 1, 8, 1, 8, 1, 8, 1],
            &[1, 2, 4, 8, 8, 4, 2, 1, 1, 1],
            &[4, 4, 4, 4, 1, 4, 4, 4, 4],
            &[2, 1, 2, 1, 2, 1],
        ];
        for prof in profiles {
            let specs = clusters_from_profile(prof, 3);
            let nz: usize = specs.iter().map(ClusterSpec::planes).sum();
            assert_eq!(nz, prof.len());
            for s in &specs {
                for k in s.k0..s.k1 {
                    assert!(s.rate <= prof[k], "plane {k} over-rated in {specs:?}");
                }
            }
        }
    }
}
