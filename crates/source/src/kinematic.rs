//! dSrcG: the kinematic source generator.
//!
//! Produces "moment rate time histories at a finite number of points
//! (sub-faults)" (paper §III.D). Includes the Haskell-style propagating
//! rupture with tapered slip used for the TeraShake-K scenario (a smooth,
//! kinematically parameterised rupture — "relatively smooth in its slip
//! distribution and rupture characteristics", §VI).

use crate::moment::MomentTensor;
use crate::stf::Stf;
use awp_grid::dims::Idx3;
use serde::{Deserialize, Serialize};

/// One subfault: a grid point releasing moment with a given mechanism and
/// moment-rate history starting at `t0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subfault {
    /// Grid cell the source couples into.
    pub idx: Idx3,
    /// Unit mechanism (scalar moment 1).
    pub tensor: MomentTensor,
    /// Total scalar moment (N·m).
    pub moment: f64,
    /// Rupture-time delay: the history starts at this time (s).
    pub t0: f64,
    /// Moment-rate samples (N·m/s) at the source sampling interval,
    /// starting at `t0`.
    pub rate: Vec<f32>,
}

impl Subfault {
    /// Moment rate at absolute time `t` (linear interpolation; zero
    /// outside the stored history).
    pub fn moment_rate_at(&self, t: f64, dt: f64) -> f64 {
        let tl = t - self.t0;
        if tl < 0.0 || self.rate.is_empty() {
            return 0.0;
        }
        let s = tl / dt;
        let i = s.floor() as usize;
        if i + 1 >= self.rate.len() {
            return if i < self.rate.len() { self.rate[i] as f64 } else { 0.0 };
        }
        let f = s - i as f64;
        self.rate[i] as f64 * (1.0 - f) + self.rate[i + 1] as f64 * f
    }

    /// Released moment (integral of the stored history).
    pub fn released_moment(&self, dt: f64) -> f64 {
        self.rate.iter().map(|&r| r as f64 * dt).sum()
    }
}

/// A complete kinematic source: subfaults sharing one sampling interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KinematicSource {
    /// Sampling interval of the moment-rate histories (s).
    pub dt: f64,
    pub subfaults: Vec<Subfault>,
}

impl KinematicSource {
    /// Single point source.
    pub fn point(
        idx: Idx3,
        tensor: MomentTensor,
        moment: f64,
        stf: Stf,
        dt: f64,
    ) -> Self {
        let n = (stf.duration() / dt).ceil() as usize + 1;
        let rate = stf.sample(moment, dt, n);
        Self { dt, subfaults: vec![Subfault { idx, tensor, moment, t0: 0.0, rate }] }
    }

    /// Total seismic moment (N·m).
    pub fn total_moment(&self) -> f64 {
        self.subfaults.iter().map(|s| s.moment).sum()
    }

    /// Moment magnitude of the whole source.
    pub fn magnitude(&self) -> f64 {
        crate::moment::moment_magnitude(self.total_moment())
    }

    /// Latest time at which any subfault is still releasing moment.
    pub fn duration(&self) -> f64 {
        self.subfaults
            .iter()
            .map(|s| s.t0 + s.rate.len() as f64 * self.dt)
            .fold(0.0, f64::max)
    }

    /// Uniformly rescale every subfault's moment (and history) by a
    /// factor.
    pub fn scale_moment(&mut self, factor: f64) {
        assert!(factor > 0.0, "scale factor must be positive");
        for sf in &mut self.subfaults {
            sf.moment *= factor;
            for r in &mut sf.rate {
                *r = (*r as f64 * factor) as f32;
            }
        }
    }

    /// Rescale the whole source to a target moment magnitude.
    pub fn scale_to_magnitude(&mut self, mw: f64) {
        let current = self.total_moment();
        assert!(current > 0.0, "cannot rescale a momentless source");
        self.scale_moment(crate::moment::moment_of_magnitude(mw) / current);
    }
}

/// Parameters of a Haskell-style kinematic rupture on a vertical planar
/// fault in the x–z plane at `j = j0`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HaskellParams {
    /// Along-strike subfault index range.
    pub i0: usize,
    pub i1: usize,
    /// Down-dip subfault index range (k is depth).
    pub k0: usize,
    pub k1: usize,
    /// Fault-normal grid index.
    pub j0: usize,
    /// Grid spacing (m).
    pub h: f64,
    /// Rigidity at the fault (Pa).
    pub mu: f64,
    /// Peak slip (m).
    pub slip_max: f64,
    /// Hypocentre (along-strike, down-dip) subfault index.
    pub hypo: (usize, usize),
    /// Rupture speed (m/s).
    pub vr: f64,
    /// Rise time (s) of the triangle STF.
    pub rise_time: f64,
    /// Strike angle (rad) for the mechanism.
    pub strike: f64,
    /// Edge-taper width in subfaults (slip tapers to 0 at the edges).
    pub taper_cells: usize,
}

/// Build a Haskell rupture: slip tapered at the fault edges, rupture time
/// = distance from hypocentre / vr, constant rise time.
pub fn haskell_rupture(p: &HaskellParams, dt: f64) -> KinematicSource {
    assert!(p.i1 > p.i0 && p.k1 > p.k0, "empty fault plane");
    assert!(p.vr > 0.0 && p.rise_time > 0.0 && p.h > 0.0);
    let stf = Stf::Triangle { rise_time: p.rise_time };
    let n = (stf.duration() / dt).ceil() as usize + 1;
    let tensor = MomentTensor::strike_slip(p.strike);
    let area = p.h * p.h;
    let taper = p.taper_cells.max(1) as f64;
    let mut subfaults = Vec::with_capacity((p.i1 - p.i0) * (p.k1 - p.k0));
    for k in p.k0..p.k1 {
        for i in p.i0..p.i1 {
            // Cosine edge taper (all four edges).
            let di = ((i - p.i0).min(p.i1 - 1 - i)) as f64;
            let dk = ((k - p.k0).min(p.k1 - 1 - k)) as f64;
            let wi = awp_signal::taper::cosine_ramp((di + 0.5) / taper);
            let wk = awp_signal::taper::cosine_ramp((dk + 0.5) / taper);
            let slip = p.slip_max * wi * wk;
            if slip <= 0.0 {
                continue;
            }
            let moment = p.mu * area * slip;
            let dx = (i as f64 - p.hypo.0 as f64) * p.h;
            let dz = (k as f64 - p.hypo.1 as f64) * p.h;
            let t0 = (dx * dx + dz * dz).sqrt() / p.vr;
            subfaults.push(Subfault {
                idx: Idx3::new(i, p.j0, k),
                tensor,
                moment,
                t0,
                rate: stf.sample(moment, dt, n),
            });
        }
    }
    KinematicSource { dt, subfaults }
}

/// Build a kinematic source from externally computed slip-rate histories
/// (the dynamic-rupture → kinematic conversion of the M8 two-step method,
/// §VII.B). `slip_rates` holds (grid index, t0, slip-rate samples in m/s);
/// moment rate = μ·A·slip-rate.
pub fn from_slip_rates(
    entries: Vec<(Idx3, f64, Vec<f32>)>,
    mu: f64,
    area: f64,
    strike: f64,
    dt: f64,
) -> KinematicSource {
    let tensor = MomentTensor::strike_slip(strike);
    let subfaults = entries
        .into_iter()
        .map(|(idx, t0, sr)| {
            let rate: Vec<f32> = sr.iter().map(|&v| (mu * area * v as f64) as f32).collect();
            let moment = rate.iter().map(|&r| r as f64 * dt).sum();
            Subfault { idx, tensor, moment, t0, rate }
        })
        .collect();
    KinematicSource { dt, subfaults }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moment::moment_of_magnitude;

    fn params() -> HaskellParams {
        HaskellParams {
            i0: 10,
            i1: 60,
            k0: 0,
            k1: 16,
            j0: 32,
            h: 1000.0,
            mu: 3.0e10,
            slip_max: 5.0,
            hypo: (15, 8),
            vr: 2800.0,
            rise_time: 2.0,
            strike: 0.0,
            taper_cells: 4,
        }
    }

    #[test]
    fn point_source_releases_full_moment() {
        let m0 = moment_of_magnitude(6.0);
        let src = KinematicSource::point(
            Idx3::new(5, 5, 5),
            MomentTensor::strike_slip(0.0),
            m0,
            Stf::Triangle { rise_time: 1.0 },
            0.01,
        );
        assert_eq!(src.subfaults.len(), 1);
        let released = src.subfaults[0].released_moment(src.dt);
        assert!((released / m0 - 1.0).abs() < 0.01, "released {released} of {m0}");
        assert!((src.magnitude() - 6.0).abs() < 0.01);
    }

    #[test]
    fn haskell_moment_consistent_with_slip() {
        let p = params();
        let src = haskell_rupture(&p, 0.05);
        // Upper bound: every subfault at peak slip.
        let n_sub = src.subfaults.len() as f64;
        let upper = p.mu * p.h * p.h * p.slip_max * n_sub;
        let m0 = src.total_moment();
        assert!(m0 > 0.2 * upper && m0 < upper, "moment {m0} vs bound {upper}");
        // Per-subfault histories integrate to their stated moment.
        for s in src.subfaults.iter().step_by(97) {
            let rel = s.released_moment(src.dt);
            assert!((rel / s.moment - 1.0).abs() < 0.02);
        }
    }

    #[test]
    fn rupture_delay_grows_with_distance() {
        let p = params();
        let src = haskell_rupture(&p, 0.05);
        let find = |i: usize, k: usize| {
            src.subfaults.iter().find(|s| s.idx.i == i && s.idx.k == k).unwrap()
        };
        let near = find(16, 8);
        let far = find(55, 8);
        assert!(near.t0 < far.t0);
        // Delay equals distance / vr.
        let want = (55.0f64 - 15.0).abs() * p.h / p.vr;
        assert!((far.t0 - want).abs() < 1e-9);
    }

    #[test]
    fn taper_reduces_edge_slip() {
        let p = params();
        let src = haskell_rupture(&p, 0.05);
        let find = |i: usize, k: usize| {
            src.subfaults.iter().find(|s| s.idx.i == i && s.idx.k == k).map(|s| s.moment)
        };
        let centre = find(35, 8).unwrap();
        let edge = find(11, 8).unwrap();
        assert!(edge < centre * 0.5, "edge {edge} centre {centre}");
    }

    #[test]
    fn moment_rate_interpolates() {
        let sf = Subfault {
            idx: Idx3::new(0, 0, 0),
            tensor: MomentTensor::strike_slip(0.0),
            moment: 1.0,
            t0: 1.0,
            rate: vec![0.0, 2.0, 0.0],
        };
        assert_eq!(sf.moment_rate_at(0.5, 0.1), 0.0, "before onset");
        assert!((sf.moment_rate_at(1.05, 0.1) - 1.0).abs() < 1e-9, "midpoint");
        assert!((sf.moment_rate_at(1.1, 0.1) - 2.0).abs() < 1e-9);
        assert_eq!(sf.moment_rate_at(5.0, 0.1), 0.0, "after history");
    }

    #[test]
    fn duration_covers_last_subfault() {
        let p = params();
        let src = haskell_rupture(&p, 0.05);
        let max_t0 = src.subfaults.iter().map(|s| s.t0).fold(0.0, f64::max);
        assert!(src.duration() >= max_t0 + p.rise_time);
    }

    #[test]
    fn scale_to_magnitude_hits_target() {
        let mut src = haskell_rupture(&params(), 0.05);
        src.scale_to_magnitude(7.7);
        assert!((src.magnitude() - 7.7).abs() < 1e-6);
        // Histories rescaled consistently.
        let sf = &src.subfaults[0];
        let rel = sf.released_moment(src.dt);
        assert!((rel / sf.moment - 1.0).abs() < 0.02);
    }

    #[test]
    fn from_slip_rates_scales_by_mu_area() {
        let entries = vec![(Idx3::new(1, 2, 3), 0.5, vec![1.0f32, 1.0, 0.0])];
        let src = from_slip_rates(entries, 3.0e10, 100.0 * 100.0, 0.0, 0.1);
        // moment = μ A ∫ ṡ dt = 3e10 * 1e4 * 0.2.
        let want = 3.0e10 * 1.0e4 * 0.2;
        assert!((src.total_moment() - want).abs() / want < 1e-6);
    }
}
