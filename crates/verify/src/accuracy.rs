//! Analytic-solution accuracy suite.
//!
//! Runs the serial solver in a homogeneous cube with **no** absorbing
//! boundaries (`AbcKind::None`, rigid walls, free surface disabled — the
//! closest realisable stand-in for a full space) and compares station
//! seismograms against the closed-form full-space solution inside a
//! *clean window*: the comparison at each receiver ends before the first
//! wall-reflected P wave can arrive (`t_reflect = (2W − d)/α` for source-
//! to-nearest-wall distance `W` and source–receiver distance `d`), so the
//! rigid walls never contaminate the scored samples. The geometry is
//! asserted, not assumed.
//!
//! Two cases: an isotropic explosion (pure P radiator) and a vertical
//! strike-slip double couple (P and S lobes, nodal planes). Each velocity
//! component at each receiver is scored with the shift-tolerant L2 and the
//! Hilbert-envelope misfit of [`crate::misfit`], against the analytic
//! trace evaluated at the component's true staggered node.

use crate::analytic::{AnalyticPoint, FullSpace};
use crate::misfit::{envelope_misfit, l2, shifted_l2};
use awp_cvm::mesh::MeshGenerator;
use awp_cvm::model::HomogeneousModel;
use awp_grid::dims::{Dims3, Idx3};
use awp_grid::stagger::Component;
use awp_solver::{AbcKind, Solver, SolverConfig, Station};
use awp_source::kinematic::KinematicSource;
use awp_source::moment::MomentTensor;
use awp_source::stf::Stf;
use serde::Serialize;

/// CFL-stable timestep bound for the 4th-order staggered scheme:
/// `dt_max = 6h / (7√3 vp)`.
pub fn cfl_dt_max(h: f64, vp: f64) -> f64 {
    6.0 * h / (7.0 * 3f64.sqrt() * vp)
}

/// Geometry and thresholds for one accuracy run.
#[derive(Debug, Clone, Serialize)]
pub struct AccuracySpec {
    /// Cube edge in cells.
    pub n: usize,
    /// Receiver offset scale in cells.
    pub d_cells: i64,
    /// Source rise time in S-wave cell crossings: `T = ppw · h / vs`
    /// (≈ grid points per dominant S wavelength).
    pub ppw: f64,
    /// Hard threshold on the worst shift-compensated L2 misfit.
    pub l2_tol: f64,
    /// Hard threshold on the worst envelope misfit.
    pub env_tol: f64,
    /// Hard threshold on the |residual time shift| in units of dt.
    pub shift_tol_dt: f64,
    /// Run the solver with clustered local time stepping armed. The
    /// homogeneous full-space medium collapses the dt-cluster plan to a
    /// single cluster, so the gate asserts the *delegation* contract: the
    /// LTS-enabled configuration must reproduce the fused path's misfits
    /// exactly, validating the whole opt-in wiring end to end.
    pub lts: bool,
}

impl AccuracySpec {
    /// CI-budget geometry (48³, receivers ~8 cells out).
    ///
    /// Thresholds are calibrated from measured misfits on this exact
    /// geometry (see DESIGN.md "Verification"): measured worsts are
    /// explosion 0.127/0.127, double-couple 0.235/0.242 (L2/envelope),
    /// residual shift ≤ 0.12 dt. The tolerances give the double-couple
    /// ~25 % headroom so FP-level jitter cannot trip the gate, while real
    /// regressions still do — the source-polarity bug this suite caught
    /// scored L2 ≈ 2.0, and kernel-coefficient edits land far above 0.3.
    pub fn smoke() -> Self {
        AccuracySpec {
            n: 48,
            d_cells: 8,
            ppw: 9.0,
            l2_tol: 0.30,
            env_tol: 0.30,
            shift_tol_dt: 1.0,
            lts: false,
        }
    }

    /// Full geometry (64³, receivers ~12 cells out, better-resolved pulse).
    /// Measured worsts: explosion 0.112/0.113, double-couple 0.188/0.184,
    /// shift ≤ 0.07 dt — the finer grid earns the tighter gate.
    pub fn full() -> Self {
        AccuracySpec {
            n: 64,
            d_cells: 12,
            ppw: 12.0,
            l2_tol: 0.24,
            env_tol: 0.24,
            shift_tol_dt: 1.0,
            lts: false,
        }
    }
}

/// Misfit scores for one velocity component at one receiver.
#[derive(Debug, Clone, Serialize)]
pub struct ComponentScore {
    pub component: String,
    /// Shift-compensated normalised L2.
    pub l2: f64,
    /// Envelope misfit (phase-blind).
    pub envelope: f64,
    /// Residual shift in units of dt.
    pub shift_dt: f64,
    /// True when the analytic amplitude is near-nodal for this component
    /// (scored against the station scale instead of its own energy).
    pub nodal: bool,
}

/// Scores for one receiver.
#[derive(Debug, Clone, Serialize)]
pub struct ReceiverScore {
    pub station: String,
    pub offset: [i64; 3],
    pub distance_m: f64,
    pub components: Vec<ComponentScore>,
}

/// One source mechanism's full scorecard.
#[derive(Debug, Clone, Serialize)]
pub struct AccuracyCase {
    pub case: String,
    pub n: usize,
    pub h: f64,
    pub dt: f64,
    pub steps: usize,
    pub rise_time: f64,
    pub worst_l2: f64,
    pub worst_envelope: f64,
    pub worst_shift_dt: f64,
    pub l2_tol: f64,
    pub env_tol: f64,
    pub shift_tol_dt: f64,
    pub passed: bool,
    pub receivers: Vec<ReceiverScore>,
}

enum CaseKind {
    Explosion,
    DoubleCouple,
}

impl CaseKind {
    fn name(&self) -> &'static str {
        match self {
            CaseKind::Explosion => "explosion",
            CaseKind::DoubleCouple => "double-couple",
        }
    }

    fn tensor(&self) -> MomentTensor {
        match self {
            CaseKind::Explosion => MomentTensor::explosion(),
            CaseKind::DoubleCouple => MomentTensor::strike_slip(0.0), // pure Mxy
        }
    }

    /// The staggered component the dominant tensor entry couples into —
    /// the physical point the analytic source must sit at.
    fn source_component(&self) -> Component {
        match self {
            CaseKind::Explosion => Component::Sxx, // normal stresses: cell node
            CaseKind::DoubleCouple => Component::Sxy, // xy-edge midpoint
        }
    }

    /// Slowest wave that carries signal (sets the comparison window).
    fn window_speed(&self, med: &FullSpace) -> f64 {
        match self {
            CaseKind::Explosion => med.vp, // pure P radiator
            CaseKind::DoubleCouple => med.vs,
        }
    }

    fn receiver_offsets(&self, d: i64) -> Vec<[i64; 3]> {
        let d7 = ((d as f64) / 2f64.sqrt()).round() as i64; // ~d along diagonals
        let d3 = ((d as f64) / 3f64.sqrt()).round() as i64;
        match self {
            CaseKind::Explosion => vec![
                [d, 0, 0],
                [0, d, 0],
                [0, 0, d],
                [d7, d7, 0],
                [d3, d3, d3],
            ],
            // Mxy radiation: z-axis is a total node (skipped); cover the
            // S-max axes, the P-max diagonal, and an out-of-plane path.
            CaseKind::DoubleCouple => vec![
                [d, 0, 0],
                [0, d, 0],
                [d7, d7, 0],
                [d7, -d7, 0],
                [d7, 0, d7],
            ],
        }
    }
}

/// Run one mechanism and score every receiver/component.
fn run_case(spec: &AccuracySpec, kind: &CaseKind) -> AccuracyCase {
    let med = FullSpace::rock();
    let h = 100.0;
    let dt = 0.8 * cfl_dt_max(h, med.vp);
    let rise = spec.ppw * h / med.vs;
    let n = spec.n;
    let c = (n / 2) as i64;
    let src_idx = Idx3::new(c as usize, c as usize, c as usize);

    let src_station = Station::new("src", src_idx);
    let src_pos = src_station.component_position(kind.source_component(), h);
    let moment = 1e15;
    let analytic = AnalyticPoint { pos: src_pos, tensor: kind.tensor(), moment, stf: Stf::Cosine { rise_time: rise } };

    // Clean-window geometry: the scored window at every receiver must end
    // before the earliest wall-reflected P arrival.
    let wall_cells = (0..3).map(|_| c.min(n as i64 - 1 - c)).min().unwrap() as f64;
    let offsets = kind.receiver_offsets(spec.d_cells);
    let stations: Vec<Station> = offsets
        .iter()
        .enumerate()
        .map(|(i, o)| {
            Station::new(
                format!("r{i}"),
                Idx3::new((c + o[0]) as usize, (c + o[1]) as usize, (c + o[2]) as usize),
            )
        })
        .collect();

    let window_end = |dist_m: f64| dist_m / kind.window_speed(&med) + 1.15 * rise;
    let mut t_max = 0.0f64;
    for o in &offsets {
        let dist = ((o[0] * o[0] + o[1] * o[1] + o[2] * o[2]) as f64).sqrt() * h;
        let t_end = window_end(dist);
        let t_reflect = (2.0 * wall_cells * h - dist) / med.vp;
        assert!(
            t_end < 0.97 * t_reflect,
            "{}: receiver {o:?} window {t_end:.3}s reaches the reflected P at {t_reflect:.3}s — \
             grow the box or shorten the pulse",
            kind.name()
        );
        t_max = t_max.max(t_end);
    }
    let steps = (t_max / dt).ceil() as usize + 2;

    let mut cfg = SolverConfig::small(Dims3::new(n, n, n), h, dt, steps);
    cfg.abc = AbcKind::None;
    cfg.free_surface = false; // rigid box: the full-space stand-in
    cfg.attenuation = false;
    if spec.lts {
        cfg.opts.lts = Some(awp_solver::LtsOpts::new());
    }

    let model = HomogeneousModel::new(med.vp as f32, med.vs as f32, med.rho as f32);
    let mesh = MeshGenerator::new(&model, cfg.dims, h).generate();
    let source = KinematicSource::point(src_idx, kind.tensor(), moment, analytic.stf, dt);
    let result = Solver::run_serial(cfg.clone(), &mesh, &source, &stations);

    let mut receivers = Vec::new();
    let (mut worst_l2, mut worst_env, mut worst_shift) = (0.0f64, 0.0f64, 0.0f64);
    for (o, st) in offsets.iter().zip(&stations) {
        let seis = result
            .seismograms
            .iter()
            .find(|s| s.station.name == st.name)
            .expect("every station is inside the serial domain");
        let dist = ((o[0] * o[0] + o[1] * o[1] + o[2] * o[2]) as f64).sqrt() * h;
        let nwin = ((window_end(dist) / dt).floor() as usize + 1).min(seis.len());
        let pos = [
            st.component_position(Component::Vx, h),
            st.component_position(Component::Vy, h),
            st.component_position(Component::Vz, h),
        ];
        let refr = analytic.velocity_trace(&med, pos, dt, nwin);
        let sims = [&seis.vx[..nwin], &seis.vy[..nwin], &seis.vz[..nwin]];
        let norms: Vec<f64> = refr.iter().map(|r| l2(r)).collect();
        let station_scale = norms.iter().cloned().fold(0.0, f64::max);
        assert!(station_scale > 0.0, "analytic reference is silent at {o:?}");

        let mut components = Vec::new();
        for (ci, comp) in ["vx", "vy", "vz"].iter().enumerate() {
            // Near-nodal components carry no meaningful relative scale of
            // their own; score them against the station's loudest
            // component so "small absolute garbage on a nodal trace"
            // cannot fail the gate while real leakage still would.
            let nodal = norms[ci] < 0.05 * station_scale;
            let denom = if nodal { station_scale } else { norms[ci] };
            let s = shifted_l2(sims[ci], &refr[ci], dt, 2.0 * dt, denom);
            let e = envelope_misfit(sims[ci], &refr[ci], denom);
            worst_l2 = worst_l2.max(s.misfit);
            worst_env = worst_env.max(e);
            if !nodal {
                // A residual-shift bound is only meaningful where there is
                // a waveform to align.
                worst_shift = worst_shift.max((s.shift / dt).abs());
            }
            components.push(ComponentScore {
                component: comp.to_string(),
                l2: s.misfit,
                envelope: e,
                shift_dt: s.shift / dt,
                nodal,
            });
        }
        receivers.push(ReceiverScore {
            station: st.name.clone(),
            offset: *o,
            distance_m: dist,
            components,
        });
    }

    let passed =
        worst_l2 <= spec.l2_tol && worst_env <= spec.env_tol && worst_shift <= spec.shift_tol_dt;
    AccuracyCase {
        case: kind.name().to_string(),
        n,
        h,
        dt,
        steps,
        rise_time: rise,
        worst_l2,
        worst_envelope: worst_env,
        worst_shift_dt: worst_shift,
        l2_tol: spec.l2_tol,
        env_tol: spec.env_tol,
        shift_tol_dt: spec.shift_tol_dt,
        passed,
        receivers,
    }
}

/// Run both mechanisms.
pub fn run_accuracy(spec: &AccuracySpec) -> Vec<AccuracyCase> {
    [CaseKind::Explosion, CaseKind::DoubleCouple].iter().map(|k| run_case(spec, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-build-sized end-to-end check: a 32³ explosion must land within
    /// a loose bound (the release-mode `awp verify` run asserts the tight
    /// calibrated thresholds on the bigger geometry).
    #[test]
    fn small_explosion_matches_analytic() {
        let spec = AccuracySpec {
            n: 32,
            d_cells: 7,
            ppw: 6.0,
            l2_tol: 0.35,
            env_tol: 0.35,
            shift_tol_dt: 2.0,
            lts: false,
        };
        let case = run_case(&spec, &CaseKind::Explosion);
        assert!(case.worst_l2.is_finite() && case.worst_l2 > 0.0);
        assert!(
            case.passed,
            "32³ explosion vs analytic: worst_l2 {:.4}, worst_env {:.4}, shift {:.2} dt",
            case.worst_l2, case.worst_envelope, case.worst_shift_dt
        );
        // The radial component must be the meaningful (non-nodal) one. The
        // transverse ones are *not* nodal: their staggered nodes sit half a
        // cell off the x-axis, so the analytic reference there carries a
        // genuine ~0.5/d ≈ 7% radial projection — and the solver must
        // reproduce it (it is scored against its own energy like any
        // non-nodal trace; `case.passed` above already covers it).
        let r0 = &case.receivers[0]; // (d, 0, 0)
        assert!(!r0.components[0].nodal, "vx on the x-axis carries the P pulse");
        for c in &r0.components[1..] {
            assert!(c.l2.is_finite() && c.envelope.is_finite(), "{}: {c:?}", r0.station);
        }
    }

    /// Calibration probe (not a gate): run both mechanisms on the `full()`
    /// geometry and print the measured worsts so the thresholds can be set
    /// from data. `cargo test -p awp-verify --release -- --ignored diag_
    /// --nocapture`.
    #[test]
    #[ignore]
    fn diag_full_geometry() {
        for case in run_accuracy(&AccuracySpec::full()) {
            println!(
                "{:<14} n={} worst_l2={:.4} worst_env={:.4} worst_shift={:.3}dt",
                case.case, case.n, case.worst_l2, case.worst_envelope, case.worst_shift_dt
            );
        }
    }

    #[test]
    #[should_panic(expected = "reflected P")]
    fn contaminated_window_is_rejected() {
        // A pulse too long for the box: the clean-window assertion must
        // refuse to score it rather than quietly comparing reflections.
        let spec = AccuracySpec {
            n: 24,
            d_cells: 8,
            ppw: 14.0,
            l2_tol: 1.0,
            env_tol: 1.0,
            shift_tol_dt: 10.0,
            lts: false,
        };
        run_case(&spec, &CaseKind::DoubleCouple);
    }
}
