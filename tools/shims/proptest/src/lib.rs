//! Offline dev shim for `proptest`: a functional random-testing core that
//! supports the strategy surface this workspace uses (ranges, tuples,
//! `any`, `collection::vec`, `prop_map`, `prop_oneof`, `Just`) without
//! shrinking. Deterministic per test-fn name. Never shipped.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 — the shim's only entropy source.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub trait Strategy {
    type Value;

    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("proptest shim: filter rejected 1000 consecutive samples");
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample_value(rng)
    }
}

#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*
    };
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*
    };
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 0);
tuple_strategy!(S0 0, S1 1);
tuple_strategy!(S0 0, S1 1, S2 2);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4);
tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Raw bit patterns: exercises NaN/inf payloads like real proptest.
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by `vec`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    pub struct VecStrategy<S, R> {
        elem: S,
        len: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.sample_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, R: SizeRange>(elem: S, len: R) -> VecStrategy<S, R> {
        VecStrategy { elem, len }
    }
}

pub mod strategy {
    pub use super::{Just, Strategy};
}

pub mod test_runner {
    /// Subset of proptest's `Config`.
    ///
    /// The `PROPTEST_CASES` environment variable (as in real proptest)
    /// overrides the default case count; here it additionally *caps*
    /// explicit `with_cases` requests so CI can bound the whole prop
    /// suite's runtime with one knob.
    #[derive(Clone, Copy)]
    pub struct Config {
        pub cases: u32,
    }

    fn env_cases() -> Option<u32> {
        std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            match env_cases() {
                Some(cap) => Config { cases: cases.min(cap) },
                None => Config { cases },
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: env_cases().unwrap_or(64) }
        }
    }
}

pub mod prelude {
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Reject a sample: the expansion site is inside the per-case loop, so a
/// plain `continue` moves on to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: Vec<Box<dyn $crate::Strategy<Value = _>>> = vec![
            $(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+
        ];
        $crate::OneOf(arms)
    }};
}

pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() as usize) % self.0.len();
        self.0[i].sample_value(rng)
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample_value(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest_fns!(($cfg) $($rest)*);
    };
}
