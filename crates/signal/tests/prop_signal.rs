//! Property-based tests for the signal substrate.

use awp_signal::fft::{fft, ifft, Complex};
use awp_signal::filter::Butterworth;
use awp_signal::series::{integrate_trapezoid, l2_misfit, peak_abs, resample_linear};
use proptest::prelude::*;

proptest! {
    /// FFT followed by IFFT recovers the signal for any power-of-two size.
    #[test]
    fn fft_round_trip(log_n in 1u32..9, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let orig: Vec<Complex> = (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(seed | 1);
                Complex::new((x % 1000) as f64 / 500.0 - 1.0, ((x >> 10) % 1000) as f64 / 500.0 - 1.0)
            })
            .collect();
        let mut d = orig.clone();
        fft(&mut d);
        ifft(&mut d);
        for (a, b) in d.iter().zip(&orig) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    /// Parseval's theorem for arbitrary signals.
    #[test]
    fn parseval(log_n in 2u32..9, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let sig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((((i as u64).wrapping_mul(seed | 1) % 997) as f64) / 997.0, 0.0))
            .collect();
        let te: f64 = sig.iter().map(|v| v.norm_sq()).sum();
        let mut d = sig;
        fft(&mut d);
        let fe: f64 = d.iter().map(|v| v.norm_sq()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() <= 1e-8 * te.max(1.0));
    }

    /// A stable low-pass filter never blows up on bounded input.
    #[test]
    fn butterworth_bibo_stable(fc_frac in 0.05f64..0.45, seed in any::<u64>()) {
        let fs = 100.0;
        let filt = Butterworth::lowpass(4, fc_frac * fs, fs);
        let x: Vec<f64> = (0..512)
            .map(|i| ((((i as u64).wrapping_mul(seed | 1)) % 2001) as f64) / 1000.0 - 1.0)
            .collect();
        let y = filt.filter(&x);
        prop_assert!(peak_abs(&y) < 10.0, "unstable output {}", peak_abs(&y));
        prop_assert!(y.iter().all(|v| v.is_finite()));
    }

    /// Trapezoid integration of a non-negative signal is non-decreasing.
    #[test]
    fn integral_monotone_for_nonneg(vals in proptest::collection::vec(0.0f64..10.0, 2..200)) {
        let y = integrate_trapezoid(&vals, 0.01);
        for w in y.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
    }

    /// Misfit is symmetric in magnitude ordering and zero on identity.
    #[test]
    fn misfit_identity(vals in proptest::collection::vec(-10.0f64..10.0, 1..100)) {
        prop_assert_eq!(l2_misfit(&vals, &vals), 0.0);
    }

    /// Resampling at the same rate reproduces the samples it covers.
    #[test]
    fn resample_same_rate_identity(vals in proptest::collection::vec(-5.0f64..5.0, 2..50)) {
        let y = resample_linear(&vals, 0.2, 0.2, vals.len());
        for (a, b) in vals.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
