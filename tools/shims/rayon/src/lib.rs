//! Offline dev shim for `rayon`: the "parallel" iterators are the plain
//! sequential std iterators, which keeps results identical (the real crate
//! only changes scheduling). Never shipped — dev-container only.

pub mod prelude {
    /// `par_iter` → sequential `iter`.
    pub trait ShimParIter {
        type Iter;
        fn par_iter(self) -> Self::Iter;
    }

    impl<'a, T: 'a> ShimParIter for &'a [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> ShimParIter for &'a Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(self) -> Self::Iter {
            self.iter()
        }
    }

    /// `par_iter_mut` → sequential `iter_mut`.
    pub trait ShimParIterMut {
        type Iter;
        fn par_iter_mut(self) -> Self::Iter;
    }

    impl<'a, T: 'a> ShimParIterMut for &'a mut [T] {
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a> ShimParIterMut for &'a mut Vec<T> {
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `into_par_iter` → `into_iter`.
    pub trait ShimIntoParIter: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> ShimIntoParIter for T {}

    /// `par_chunks` / `par_chunks_mut` → sequential chunking.
    pub trait ShimParChunks {
        type Chunks;
        type ChunksMut;
        fn par_chunks(self) -> Self::Chunks
        where
            Self: Sized;
    }

    pub trait ShimParChunksSlice<'a, T> {
        fn par_chunks(self, size: usize) -> std::slice::Chunks<'a, T>;
    }

    impl<'a, T> ShimParChunksSlice<'a, T> for &'a [T] {
        fn par_chunks(self, size: usize) -> std::slice::Chunks<'a, T> {
            self.chunks(size)
        }
    }

    pub trait ShimParChunksMutSlice<'a, T> {
        fn par_chunks_mut(self, size: usize) -> std::slice::ChunksMut<'a, T>;
    }

    impl<'a, T> ShimParChunksMutSlice<'a, T> for &'a mut [T] {
        fn par_chunks_mut(self, size: usize) -> std::slice::ChunksMut<'a, T> {
            self.chunks_mut(size)
        }
    }
}
