//! Property-based tests for the grid foundations.

use awp_grid::{
    array3::Array3,
    blocking::{for_each_blocked, BlockSpec},
    decomp::Decomp3,
    dims::{Dims3, Idx3},
    face::{extract_face, face_len, inject_halo, Face},
};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Dims3> {
    (1usize..8, 1usize..8, 1usize..8).prop_map(|(x, y, z)| Dims3::new(x, y, z))
}

proptest! {
    #[test]
    fn linear_delinear_roundtrip(d in small_dims(), lin in 0usize..512) {
        let lin = lin % d.count();
        prop_assert_eq!(d.linear(d.delinear(lin)), lin);
    }

    #[test]
    fn interior_vec_roundtrip(d in small_dims(), seed in any::<u64>()) {
        let mut a = Array3::new(d, 2);
        let src: Vec<f32> = (0..d.count())
            .map(|i| ((i as u64).wrapping_mul(seed | 1) % 1000) as f32)
            .collect();
        a.interior_from_slice(&src);
        prop_assert_eq!(a.interior_to_vec(), src);
    }

    /// extract → inject on the opposite side reproduces the source layers.
    #[test]
    fn face_roundtrip_through_neighbor(d in small_dims(), face_id in 0usize..6) {
        let face = Face::ALL[face_id];
        let w = d.axis(face.axis().index()).min(2);
        let mut src = Array3::new(d, 2);
        let vals: Vec<f32> = (0..d.count()).map(|i| i as f32 + 0.5).collect();
        src.interior_from_slice(&vals);
        let mut dst = Array3::new(d, 2);

        let mut buf = Vec::new();
        extract_face(&src, face, w, &mut buf);
        prop_assert_eq!(buf.len(), face_len(&src, face, w));
        // Receive it on the opposite face of dst; halo cells there must equal
        // src's boundary-adjacent interior layers (order preserved).
        inject_halo(&mut dst, face.opposite(), w, &buf);
        // Spot-check one layer: re-extract what we injected by reading halos.
        let axis = face.axis().index();
        let n = d.axis(axis) as isize;
        for l in 0..w as isize {
            // src interior layer coordinate.
            let ls = if face.is_low() { l } else { n - w as isize + l };
            // dst halo coordinate on the opposite side.
            let ld = if face.opposite().is_low() { l - w as isize } else { n + l };
            // compare along the tangential diagonal.
            let t0 = 0isize;
            let mut sc = [t0, t0, t0];
            sc[axis] = ls;
            let mut dc = [t0, t0, t0];
            dc[axis] = ld;
            prop_assert_eq!(src.get(sc[0], sc[1], sc[2]), dst.get(dc[0], dc[1], dc[2]));
        }
    }

    #[test]
    fn decomp_covers_global(d in small_dims(), px in 1usize..4, py in 1usize..4, pz in 1usize..4) {
        let parts = [px.min(d.nx), py.min(d.ny), pz.min(d.nz)];
        let dec = Decomp3::new(d, parts);
        let mut owned = vec![0u32; d.count()];
        for r in 0..dec.rank_count() {
            let s = dec.subdomain(r);
            for k in 0..s.dims.nz {
                for j in 0..s.dims.ny {
                    for i in 0..s.dims.nx {
                        let g = s.local_to_global(Idx3::new(i, j, k));
                        owned[d.linear(g)] += 1;
                    }
                }
            }
        }
        prop_assert!(owned.iter().all(|&c| c == 1));
    }

    #[test]
    fn blocked_visits_all(nj in 1usize..40, nk in 1usize..40, kb in 1usize..20, jb in 1usize..20) {
        let mut count = 0usize;
        let mut sum = 0usize;
        for_each_blocked(nj, nk, BlockSpec::new(kb, jb), |j, k| {
            count += 1;
            sum += j + nj * k;
        });
        prop_assert_eq!(count, nj * nk);
        // Sum over all (j,k) of j + nj*k is invariant to visit order.
        let expect: usize = (0..nj * nk).sum();
        prop_assert_eq!(sum, expect);
    }
}
