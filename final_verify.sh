#!/bin/bash
# Final verification sequence (run from /root/repo).
set -x
cd /root/repo
# Cap property-based suites so the run stays fast and deterministic on the
# 1-core CI host; the shim honours PROPTEST_CASES like real proptest does
# (and additionally treats it as a hard cap on explicit configs). See README.
export PROPTEST_CASES="${PROPTEST_CASES:-16}"
cargo build --workspace --release 2>&1 | grep -E "^(error|warning)" | head -20
echo "=== BUILD DONE ==="
cargo clippy --workspace -- -D warnings 2>&1 | grep -E "^(error|warning)" | head -20
echo "clippy exit ${PIPESTATUS[0]}"
echo "=== CLIPPY DONE ==="
cargo test --workspace 2>&1 | tee results/logs/test_output.log | grep -E "test result|FAILED|error\[" | tail -60
echo "=== TESTS DONE ==="
# Smoke-run the examples and CLI.
timeout 600 ./target/release/examples/quickstart > results/logs/example_quickstart.log 2>&1; echo "quickstart exit $?"
timeout 900 ./target/release/examples/cluster_scaling > results/logs/example_cluster_scaling.log 2>&1; echo "cluster_scaling exit $?"
timeout 1800 ./target/release/examples/m8_dynamic > results/logs/example_m8_dynamic.log 2>&1; echo "m8_dynamic exit $?"
timeout 1800 ./target/release/examples/shakeout_scenario > results/logs/example_shakeout.log 2>&1; echo "shakeout exit $?"
./target/release/awp scenarios > results/logs/cli_scenarios.log 2>&1; echo "cli exit $?"
./target/release/awp efficiency >> results/logs/cli_scenarios.log 2>&1; echo "cli2 exit $?"
# Fixed-seed chaos soak: injected faults + epoch-fallback restart must
# reproduce the clean run bit-for-bit (nonzero exit on any mismatch).
timeout 900 ./target/release/awp chaos --chaos-seed 3405691582 > results/logs/cli_chaos.log 2>&1; echo "chaos exit $?"
# Recovery drills: a seeded rank crash and a seeded rank stall must each be
# absorbed *in flight* (supervisor rollback-rejoin: recovery counters > 0,
# zero whole-run restarts, no degradation) and stay bit-identical to the
# clean run. The awp binary enforces the gate and exits nonzero otherwise.
timeout 900 ./target/release/awp chaos --recover --fault crash --chaos-seed 3405691582 > results/logs/cli_recover_crash.log 2>&1; echo "recover_crash exit $?"
timeout 900 ./target/release/awp chaos --recover --fault stall --chaos-seed 3405691582 > results/logs/cli_recover_stall.log 2>&1; echo "recover_stall exit $?"
grep -q "in-flight recoveries: [1-9]" results/logs/cli_recover_crash.log; echo "recover_crash_counted exit $?"
grep -q "whole-run restarts: 0" results/logs/cli_recover_crash.log; echo "recover_crash_inflight exit $?"
grep -q "in-flight recoveries: [1-9]" results/logs/cli_recover_stall.log; echo "recover_stall_counted exit $?"
grep -q "whole-run restarts: 0" results/logs/cli_recover_stall.log; echo "recover_stall_inflight exit $?"
timeout 600 ./target/release/s7b_memory > results/logs/s7b_memory.log 2>&1; echo "s7b exit $?"
timeout 600 ./target/release/s7c_resilience > results/logs/s7c_resilience.log 2>&1; echo "s7c exit $?"
echo "=== EXAMPLES DONE ==="
# Overlap smoke: the shell/interior split timestep must stay bit-exact to
# the fused path across decompositions/backends (property + cluster tests).
cargo test --release -p awp-solver --test shell_overlap 2>&1 | grep -E "test result|FAILED"; echo "overlap_smoke exit ${PIPESTATUS[0]}"
echo "=== OVERLAP SMOKE DONE ==="
# Perf regression gate: nonzero exit if the SIMD kernels are slower than
# scalar, the steady-state exchange path allocates (arena ledger), the
# overlap run loses to the plain run on the multi-rank config, enabling
# telemetry costs more than the hardware-aware tolerance vs disabled, or
# the work-stealing scheduler loses to the unscheduled run on the skewed
# decomposition (>=1.05x required multi-core, no-regression on 1 core).
timeout 900 ./target/release/bench_kernels --smoke --gate > results/logs/bench_kernels.log 2>&1; echo "bench_gate exit $?"
echo "=== BENCH GATE DONE ==="
# Telemetry smoke: a profiled workflow must print nonzero phase totals and
# a load-imbalance ratio, and the Chrome trace must be well-formed (the awp
# binary parses it back and exits nonzero on schema violations; disabled-
# overhead is gated inside bench_kernels above).
timeout 900 ./target/release/awp workflow shakeout-k 24 12 --profile --trace-out results/logs/profile_trace.json.tmp > results/logs/cli_profile.log 2>&1; echo "profile exit $?"
grep -q "chrome trace" results/logs/cli_profile.log; echo "trace_written exit $?"
grep -q "load imbalance" results/logs/cli_profile.log; echo "imbalance_printed exit $?"
grep -Eq "velocity_shell +[1-9]" results/logs/cli_profile.log; echo "phase_nonzero exit $?"
grep -q '"traceEvents"' results/logs/profile_trace.json.tmp; echo "trace_json exit $?"
echo "=== TELEMETRY SMOKE DONE ==="
# Live stats endpoint smoke: `awp stats --smoke` runs a scheduler-armed
# workflow with the streaming endpoint bound to an ephemeral TCP port, a
# concurrent client reads the stream, and the binary exits nonzero unless
# the hello line negotiates awp-stats v1 and >=2 snapshots pass the full
# schema check (monotonic seq, per-rank cells matching the advertised
# rank count, finite imbalance/hidden-comm).
timeout 900 ./target/release/awp stats --smoke > results/logs/cli_stats.log 2>&1; echo "stats_smoke exit $?"
grep -q "stats smoke passed" results/logs/cli_stats.log; echo "stats_valid exit $?"
# Scheduler drills: a scheduler-armed workflow must stay bit-identical to
# the clean unscheduled archive (the --sched chaos drill composes stealing
# with a seeded in-flight crash recovery on top).
timeout 900 ./target/release/awp workflow shakeout-k 24 12 --sched > results/logs/cli_sched.log 2>&1; echo "sched_workflow exit $?"
grep -q "archive verified: true" results/logs/cli_sched.log; echo "sched_bitexact exit $?"
timeout 900 ./target/release/awp chaos --recover --fault crash --sched --chaos-seed 3405691582 > results/logs/cli_recover_sched.log 2>&1; echo "recover_sched exit $?"
grep -q "in-flight recoveries: [1-9]" results/logs/cli_recover_sched.log; echo "recover_sched_counted exit $?"
echo "=== SCHEDULER SMOKE DONE ==="
# Verification subsystem: analytic-accuracy + convergence-order + schedule
# fuzzer. The unit suite runs in release (the accuracy cases propagate real
# wavefields), then the CLI smoke gate must pass its own thresholds and emit
# a schema-valid results/verify.json (awp exits nonzero on either failure).
# Timeout is sized for the 1-core host (~3 min typical, 6x headroom).
cargo test --release -p awp-verify 2>&1 | grep -E "test result|FAILED"; echo "verify_tests exit ${PIPESTATUS[0]}"
timeout 1200 ./target/release/awp verify --smoke > results/logs/cli_verify.log 2>&1; echo "verify_smoke exit $?"
# Local time stepping: the same accuracy/convergence gates with opts.lts
# armed (the homogeneous analytic media collapse the cluster ladder to one
# cluster, so this asserts LTS's bit-exact delegation contract end to end),
# plus the LTS solver suite (multi-rate bit-exactness across decomps, the
# schedule fuzzer, accuracy vs global dt) and the workflow composition
# tests (cluster-aligned checkpoints, restart, in-flight recovery).
timeout 1200 ./target/release/awp verify --smoke --lts > results/logs/cli_verify_lts.log 2>&1; echo "verify_lts_smoke exit $?"
cargo test --release -p awp-solver --test lts 2>&1 | grep -E "test result|FAILED"; echo "lts_tests exit ${PIPESTATUS[0]}"
cargo test --release -p awp-odc --test lts_workflow 2>&1 | grep -E "test result|FAILED"; echo "lts_workflow_tests exit ${PIPESTATUS[0]}"
# BENCH_lts.json gate: the committed full-mode artifact must exist, carry a
# multi-rate ladder, and record the acceptance speedup (≥1.5× measured,
# census ratio reported alongside). The smoke bench gate above re-measures
# on this host; this check pins the recorded trajectory point.
python3 - <<'EOF'; echo "bench_lts_artifact exit $?"
import json, sys
r = json.load(open("BENCH_lts.json"))
assert r["mode"] == "full", r["mode"]
assert len(r["clusters"]) >= 2, r["clusters"]
assert r["measured_speedup"] >= 1.5, r["measured_speedup"]
assert r["theoretical_speedup"] > 1.0, r["theoretical_speedup"]
assert r["gate"]["passed"] is True
print(f"BENCH_lts.json: {r['measured_speedup']:.2f}x measured, "
      f"{r['theoretical_speedup']:.2f}x census")
EOF
# BENCH_sched.json gate: the committed full-mode artifact must record the
# skewed-decomposition scheduler row with a passing hardware-aware gate
# (>=1.05x where the recording host had a second core for the thief; the
# gate degrades to no-regression on a 1-core recorder, mirroring the live
# smoke gate above).
python3 - <<'EOF'; echo "bench_sched_artifact exit $?"
import json
r = json.load(open("BENCH_sched.json"))
assert r["mode"] == "full", r["mode"]
assert r["parts"] == [2, 1, 1], r["parts"]
assert r["skew_columns"] > 0, r["skew_columns"]
assert r["off_wall_secs"] > 0 and r["sched_wall_secs"] > 0
assert r["off_imbalance"] >= 1.0, r["off_imbalance"]
assert r["gate"]["passed"] is True
if r["gate"]["cores"] >= 2:
    assert r["measured_speedup"] >= 1.05, r["measured_speedup"]
print(f"BENCH_sched.json: {r['measured_speedup']:.2f}x measured on "
      f"{r['gate']['cores']} cores, {r['tiles_stolen']} tiles stolen")
EOF
echo "=== VERIFY DONE ==="
# Causal analyzer smoke: trace an 8-rank --lts workflow in process, parse
# the trace back into the cross-rank causal DAG, and require the critical
# path to cover >=90% of the wall clock (awp exits nonzero otherwise); the
# emitted results/analyze.json must be schema-valid and carry a covering
# path and a non-empty DAG.
timeout 900 ./target/release/awp analyze --smoke > results/logs/cli_analyze.log 2>&1; echo "analyze_smoke exit $?"
grep -q "analyze smoke passed" results/logs/cli_analyze.log; echo "analyze_gate exit $?"
python3 - <<'EOF'; echo "analyze_artifact exit $?"
import json
r = json.load(open("results/analyze.json"))
assert r["v"] == 1 and r["kind"] == "analyze", (r.get("v"), r.get("kind"))
assert r["edges"] > 0 and r["spans"] > 0, (r["edges"], r["spans"])
assert r["hops"] > 0 and r["wall_ns"] > 0
assert r["coverage"] >= 0.90, r["coverage"]
assert len(r["ranks"]) == 8, len(r["ranks"])
assert r["phases"], "empty phase attribution"
print(f"analyze.json: {r['hops']} hops, {r['edges']} edges, "
      f"coverage {r['coverage']*100:.1f}%")
EOF
# Flight-recorder drill: a seeded rank-1 crash with the black box armed
# must dump results/flightrec-1.json before quarantine; the dump must
# parse and carry envelope lineage (clock-stamped sends/recvs) and span
# tails for the crashed rank.
rm -f results/flightrec-*.json
timeout 900 ./target/release/awp chaos --recover --fault crash --flight-dir results --chaos-seed 3405691582 > results/logs/cli_flightrec.log 2>&1; echo "flightrec_drill exit $?"
python3 - <<'EOF'; echo "flightrec_artifact exit $?"
import json
r = json.load(open("results/flightrec-1.json"))
assert r["v"] == 1 and r["kind"] == "flightrec", (r.get("v"), r.get("kind"))
assert r["rank"] == 1, r["rank"]
assert "Crash" in r["reason"], r["reason"]
assert r["total_envelopes"] > 0 and len(r["envelopes"]) > 0
assert len(r["spans"]) > 0
env = r["envelopes"][-1]
for key in ("dir", "peer", "tag", "bytes", "clock", "step", "t_us"):
    assert key in env, key
assert env["clock"] > 0, env
print(f"flightrec-1.json: {r['total_envelopes']} envelopes "
      f"({len(r['envelopes'])} retained), reason: {r['reason']}")
EOF
rm -f results/flightrec-*.json
echo "=== CAUSAL TRACING DONE ==="
# Ensemble/serve smoke: in-process awp-serve v1 server + client. The gate
# requires a seeded 8-event catalog to drain through the persistent job
# queue, a repeated site query to be a cache hit against the content-
# addressed store, and a cold-store replay of the same catalog to
# reproduce every stored artifact bit-exact (manifest MD5 comparison plus
# re-verification from the bytes); awp exits nonzero otherwise.
timeout 900 ./target/release/awp serve --smoke > results/logs/cli_serve.log 2>&1; echo "serve_smoke exit $?"
grep -q "serve smoke passed" results/logs/cli_serve.log; echo "serve_valid exit $?"
grep -q "cold replay bit-exact" results/logs/cli_serve.log; echo "serve_replay exit $?"
echo "=== SERVE SMOKE DONE ==="
# Hygiene gate: a clean run must leave no untracked scratch files behind
# (everything a smoke run writes is either tracked under results/ or
# covered by .gitignore). Nonzero exit lists the strays.
stray="$(git ls-files --others --exclude-standard)"
if [ -n "$stray" ]; then echo "untracked scratch files: $stray"; fi
test -z "$stray"; echo "scratch_clean exit $?"
# Empty directories are invisible to `git ls-files --others` (git does not
# track directories), so an `examples_tmp/`-style stray survives the check
# above. Catch those too, pruning build output and the git store.
straydirs="$(find . -type d -empty \
  -not -path './.git/*' -not -path './target/*' \
  -not -path './tools/shims/*/target/*' -not -path '*/.git' | sort)"
if [ -n "$straydirs" ]; then echo "untracked empty directories: $straydirs"; fi
test -z "$straydirs"; echo "emptydir_clean exit $?"
echo "=== HYGIENE DONE ==="
