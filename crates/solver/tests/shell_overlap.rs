//! Shell/interior split timestep (§IV.C) — equivalence and steady-state
//! properties.
//!
//! The overlap path exists only because the split is *bit-exact* against
//! the fused kernels: the velocity pass reads only stresses and the stress
//! pass reads only velocities, so per-cell updates are window-order
//! invariant. These tests pin that claim across backends, grid shapes and
//! rank decompositions, and pin the operational guarantees around it
//! (allocation-free steady state, construction-time config validation).

use awp_cvm::mesh::{Mesh, MeshGenerator};
use awp_cvm::model::LayeredModel;
use awp_grid::blocking::BlockSpec;
use awp_grid::decomp::Decomp3;
use awp_grid::dims::{Dims3, Idx3};
use awp_grid::stagger::Component;
use awp_solver::config::CommModeOpt;
use awp_solver::kernels::{update_stress, update_stress_win, update_velocity, update_velocity_win};
use awp_solver::simd::{
    update_stress_simd, update_stress_simd_win, update_velocity_simd, update_velocity_simd_win,
};
use awp_solver::solver::partition_mesh_direct;
use awp_solver::state::MemoryVars;
use awp_solver::{
    run_parallel, try_run_parallel, AbcKind, ConfigError, Medium, ShellPlan, Solver, SolverConfig,
    Station, WaveState, Win,
};
use awp_source::kinematic::KinematicSource;
use awp_source::moment::MomentTensor;
use awp_source::stf::Stf;

/// Random-field fixture: LOH.1 layered medium + xorshift-filled wavefield.
fn setup(d: Dims3, seed: u64) -> (Medium, WaveState) {
    let m = LayeredModel::loh1();
    let mesh = MeshGenerator::new(&m, d, 150.0).generate();
    let mut med = Medium::from_mesh(&mesh);
    med.precompute();
    let mut st = WaveState::new(d, false);
    let mut x = seed | 1;
    for c in Component::ALL {
        let f = st.field_mut(c);
        for v in f.as_mut_slice() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *v = ((x % 2000) as f32 / 1000.0 - 1.0) * 1e4;
        }
    }
    (med, st)
}

fn assert_bits_equal(a: &WaveState, b: &WaveState, what: &str) {
    for c in Component::ALL {
        for (i, (x, y)) in a.field(c).as_slice().iter().zip(b.field(c).as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: {c:?}[{i}] {x:e} vs {y:e}");
        }
    }
}

/// Grid shapes covering full-vector rows, ragged SIMD tails, rows narrower
/// than any vector width, and degenerate one-cell planes.
const DIMS: [(usize, usize, usize); 8] = [
    (16, 12, 10),
    (13, 11, 9),
    (8, 8, 8),
    (7, 5, 4),
    (5, 3, 3),
    (3, 2, 2),
    (9, 1, 1),
    (33, 4, 3),
];

/// Width patterns emulating different neighbour layouts (which faces have
/// a rank across them): all faces, one axis only, asymmetric, none.
const WIDTHS: [[usize; 6]; 5] = [
    [2, 2, 2, 2, 2, 2],
    [2, 2, 0, 0, 0, 0],
    [0, 0, 2, 2, 2, 0],
    [2, 0, 0, 2, 0, 2],
    [0, 0, 0, 0, 0, 0],
];

fn run_windows<F: FnMut(&mut WaveState, Win)>(plan: &ShellPlan, st: &mut WaveState, mut f: F) {
    for w in plan.shells {
        f(st, w);
    }
    f(st, plan.interior);
}

#[test]
fn shell_interior_union_matches_fused_scalar() {
    let block = BlockSpec::JAGUAR;
    for (i, &(nx, ny, nz)) in DIMS.iter().enumerate() {
        let d = Dims3::new(nx, ny, nz);
        for (j, &widths) in WIDTHS.iter().enumerate() {
            let plan = ShellPlan::from_widths(d, widths, false);
            assert_eq!(
                plan.shell_cells() + plan.interior.count(),
                d.count(),
                "windows must partition {d:?} under {widths:?}"
            );
            let (med, st) = setup(d, 0xa5a5_0000 + (i * 16 + j) as u64);
            let mut fused = st.clone();
            let mut split = st;
            fused.mem = Some(MemoryVars::new(d));
            split.mem = fused.mem.clone();
            let at = awp_solver::attenuation::Attenuation::new(
                &med,
                1e-3,
                0.1,
                3.0,
                Idx3::new(0, 0, 0),
            );
            update_velocity(&mut fused, &med, 0.01, block, true);
            update_stress(&mut fused, &med, Some(&at), 0.01, 1e-3, block, true);
            run_windows(&plan, &mut split, |s, w| {
                update_velocity_win(s, &med, 0.01, block, w);
            });
            run_windows(&plan, &mut split, |s, w| {
                update_stress_win(s, &med, Some(&at), 0.01, 1e-3, block, w);
            });
            assert_bits_equal(&fused, &split, &format!("scalar {d:?} widths {widths:?}"));
        }
    }
}

#[test]
fn shell_interior_union_matches_fused_simd() {
    let block = BlockSpec::JAGUAR;
    for (i, &(nx, ny, nz)) in DIMS.iter().enumerate() {
        let d = Dims3::new(nx, ny, nz);
        for (j, &widths) in WIDTHS.iter().enumerate() {
            let plan = ShellPlan::from_widths(d, widths, false);
            let (med, st) = setup(d, 0x5a5a_0000 + (i * 16 + j) as u64);
            let mut fused = st.clone();
            let mut split = st;
            update_velocity_simd(&mut fused, &med, 0.01, block);
            update_stress_simd(&mut fused, &med, None, 0.01, 1e-3, block);
            run_windows(&plan, &mut split, |s, w| {
                update_velocity_simd_win(s, &med, 0.01, block, w);
            });
            run_windows(&plan, &mut split, |s, w| {
                update_stress_simd_win(s, &med, None, 0.01, 1e-3, block, w);
            });
            assert_bits_equal(&fused, &split, &format!("simd {d:?} widths {widths:?}"));
        }
    }
}

fn overlap_fixture(d: Dims3, steps: usize) -> (Mesh, KinematicSource, [Station; 1], SolverConfig) {
    let h = 150.0;
    let dt = 0.009;
    let m = LayeredModel::loh1();
    let mesh = MeshGenerator::new(&m, d, h).generate();
    let src = KinematicSource::point(
        Idx3::new(d.nx / 2, d.ny / 2, d.nz / 2),
        MomentTensor::strike_slip(0.3),
        5.0e16,
        Stf::Brune { tau: 0.1 },
        dt,
    );
    let stations = [Station::new("a", Idx3::new(3, 3, 0))];
    let mut cfg = SolverConfig::small(d, h, dt, steps);
    // All the features the old overlap path had to exclude, together:
    // M-PML absorbing boundaries, free surface, attenuation.
    cfg.abc = AbcKind::Mpml { width: 4, pmax: 0.2 };
    cfg.attenuation = true;
    (mesh, src, stations, cfg)
}

fn rank_fields(results: &[awp_solver::RankResult]) -> Vec<(usize, Vec<f32>, Vec<f64>)> {
    let mut v: Vec<_> = results
        .iter()
        .map(|r| {
            let seis = r
                .seismograms
                .first()
                .map(|s| s.vx.clone())
                .unwrap_or_default();
            (r.rank, r.surface.clone().unwrap_or_default(), seis)
        })
        .collect();
    v.sort_by_key(|(r, _, _)| *r);
    v
}

#[test]
fn overlap_matches_plain_across_decompositions_with_all_features() {
    let d = Dims3::new(20, 18, 14);
    let (mesh, src, stations, mut cfg) = overlap_fixture(d, 24);
    for parts in [[1, 1, 1], [2, 1, 1], [2, 2, 1], [2, 2, 2]] {
        let decomp = Decomp3::new(d, parts);
        let meshes = partition_mesh_direct(&mesh, &decomp);
        cfg.opts.overlap = false;
        let plain = run_parallel(&cfg, parts, &meshes, &src, &stations);
        cfg.opts.overlap = true;
        let overlapped = run_parallel(&cfg, parts, &meshes, &src, &stations);
        assert_eq!(
            rank_fields(&plain),
            rank_fields(&overlapped),
            "shell/interior overlap must be bit-exact for {parts:?}"
        );
    }
}

#[test]
fn hybrid_overlap_matches_scalar_plain() {
    // The split schedule with a Rayon interior (pinned 2-thread pool) and
    // SIMD shell must still equal the fused single-threaded path.
    let d = Dims3::new(20, 18, 14);
    let (mesh, src, stations, mut cfg) = overlap_fixture(d, 24);
    let parts = [2, 2, 1];
    let decomp = Decomp3::new(d, parts);
    let meshes = partition_mesh_direct(&mesh, &decomp);
    cfg.opts.overlap = false;
    cfg.opts.hybrid = false;
    let plain = run_parallel(&cfg, parts, &meshes, &src, &stations);
    cfg.opts.overlap = true;
    cfg.opts.hybrid = true;
    cfg.opts.threads = 2;
    let hybrid = run_parallel(&cfg, parts, &meshes, &src, &stations);
    assert_eq!(rank_fields(&plain), rank_fields(&hybrid));
}

#[test]
fn overlap_steady_state_is_allocation_free() {
    // After warmup has sized the pooled halo buffers, the split timestep's
    // send-early/recv-late pipeline must never touch the heap again.
    let d = Dims3::new(16, 14, 12);
    let (mesh, src, stations, cfg) = overlap_fixture(d, 1);
    let parts = [2, 2, 1];
    let decomp = Decomp3::new(d, parts);
    let meshes = partition_mesh_direct(&mesh, &decomp);
    let sources = awp_source::partition::partition_spatial(&src, &decomp);
    let cluster = awp_vcluster::Cluster::new(4, awp_vcluster::CommMode::Asynchronous);
    let flat: Vec<bool> = cluster.run(|ctx| {
        let sub = decomp.subdomain(ctx.rank());
        let mut solver = Solver::new(
            cfg.clone(),
            sub,
            &meshes[ctx.rank()],
            &sources[ctx.rank()],
            &stations,
        );
        for _ in 0..4 {
            solver.step_parallel(ctx);
        }
        ctx.barrier();
        let warm = solver.arena_allocations();
        for _ in 0..12 {
            solver.step_parallel(ctx);
        }
        ctx.barrier();
        solver.arena_allocations() == warm
    });
    assert!(flat.iter().all(|&f| f), "overlap path allocated in steady state: {flat:?}");
}

#[test]
fn overlap_on_sync_engine_is_rejected_at_construction() {
    let d = Dims3::new(12, 10, 8);
    let (mesh, src, stations, mut cfg) = overlap_fixture(d, 4);
    cfg.opts.comm_mode = CommModeOpt::Synchronous; // overlap left on
    let decomp = Decomp3::new(d, [1, 1, 1]);
    let err = Solver::try_new(cfg.clone(), decomp.subdomain(0), &mesh, &src, &stations)
        .err()
        .expect("overlap + synchronous engine must be rejected");
    assert_eq!(err, ConfigError::OverlapNeedsAsyncEngine);
    let parts = [2, 1, 1];
    let meshes = partition_mesh_direct(&mesh, &Decomp3::new(d, parts));
    let err = try_run_parallel(&cfg, parts, &meshes, &src, &stations)
        .expect_err("try_run_parallel must validate before spawning ranks");
    assert_eq!(err, ConfigError::OverlapNeedsAsyncEngine);
    // The same options become valid by flipping either knob.
    cfg.opts.overlap = false;
    assert!(cfg.validate().is_ok());
    cfg.opts.overlap = true;
    cfg.opts.comm_mode = CommModeOpt::Asynchronous;
    assert!(cfg.validate().is_ok());
}

#[test]
fn overlap_records_exchange_phase_timing() {
    // The per-phase breakdown the bench reads must be populated: a
    // multi-rank overlap run with telemetry attached records send, wait,
    // inject and the four split compute phases on every rank.
    use awp_solver::telemetry::{Counter, Phase, Registry};
    let d = Dims3::new(16, 14, 12);
    let (mesh, src, stations, cfg) = overlap_fixture(d, 10);
    let parts = [2, 1, 1];
    let meshes = partition_mesh_direct(&mesh, &Decomp3::new(d, parts));
    let reg = Registry::new(2);
    let results =
        awp_solver::run_parallel_with(&cfg, parts, &meshes, &src, &stations, Some(reg.clone()));
    for r in &results {
        let tel = &r.telemetry;
        assert!(tel.enabled, "rank {} has no telemetry", r.rank);
        assert!(tel.phase_ns(Phase::Send) > 0, "rank {} recorded no send time", r.rank);
        assert!(tel.phase_ns(Phase::Inject) > 0, "rank {} recorded no inject time", r.rank);
        assert!(tel.phase_ns(Phase::VelocityShell) > 0, "rank {} missing shell spans", r.rank);
        assert!(tel.phase_ns(Phase::VelocityInterior) > 0, "rank {} missing interior", r.rank);
        assert!(tel.phase_ns(Phase::StressShell) > 0, "rank {}", r.rank);
        assert!(tel.phase_ns(Phase::StressInterior) > 0, "rank {}", r.rank);
        assert!(tel.counter(Counter::MsgsSent) > 0, "rank {} counted no sends", r.rank);
    }
    // Cross-rank report exists and carries the headline ratios.
    let rep = reg.report();
    assert_eq!(rep.ranks, 2);
    assert!(rep.load_imbalance >= 1.0);
    assert!((0.0..=1.0).contains(&rep.hidden_comm_fraction));
    // Without a registry the same run keeps telemetry disabled end-to-end.
    let plain = run_parallel(&cfg, parts, &meshes, &src, &stations);
    for r in &plain {
        assert!(!r.telemetry.enabled);
        assert_eq!(r.telemetry.phase_ns(Phase::Send), 0);
    }
}
