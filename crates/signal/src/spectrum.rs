//! Amplitude spectra and spectral peak analysis.
//!
//! The paper's M8 analysis identifies that San Bernardino's large PGVHs
//! "correspond to periods of 2-4 s" via spectral analysis (§VII.C); this
//! module provides that measurement for synthetic seismograms.

use crate::fft::{next_pow2, rfft};
use crate::taper::hann;

/// One-sided amplitude spectrum of a real signal.
///
/// Returns `(frequencies_hz, amplitudes)` with `n/2 + 1` bins; amplitudes
/// are scaled so a unit sine at a bin frequency yields amplitude ≈ 1.
pub fn amplitude_spectrum(signal: &[f64], dt: f64) -> (Vec<f64>, Vec<f64>) {
    assert!(dt > 0.0);
    let n_sig = signal.len();
    if n_sig == 0 {
        return (Vec::new(), Vec::new());
    }
    // Hann window to control leakage; compensate by the window's coherent
    // gain (mean of the window = 0.5).
    let w = hann(n_sig);
    let windowed: Vec<f64> = signal.iter().zip(&w).map(|(s, w)| s * w).collect();
    let spec = rfft(&windowed);
    let n = spec.len();
    let half = n / 2 + 1;
    let fs = 1.0 / dt;
    let freqs: Vec<f64> = (0..half).map(|i| i as f64 * fs / n as f64).collect();
    let gain = 2.0 / (0.5 * n_sig as f64);
    let amps: Vec<f64> = spec[..half].iter().map(|c| c.norm() * gain).collect();
    (freqs, amps)
}

/// Frequency (Hz) of the largest spectral amplitude above `fmin`.
pub fn dominant_frequency(signal: &[f64], dt: f64, fmin: f64) -> Option<f64> {
    let (freqs, amps) = amplitude_spectrum(signal, dt);
    freqs
        .iter()
        .zip(&amps)
        .filter(|(f, _)| **f >= fmin)
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(f, _)| *f)
}

/// Dominant period (s) above `fmin`; `None` for empty/DC-only signals.
pub fn dominant_period(signal: &[f64], dt: f64, fmin: f64) -> Option<f64> {
    dominant_frequency(signal, dt, fmin).filter(|f| *f > 0.0).map(|f| 1.0 / f)
}

/// Fraction of total spectral energy within a frequency band — used to
/// check the paper's claim that near-fault pulses carry "a significant
/// amount of energy between 1 and 2 Hz".
pub fn band_energy_fraction(signal: &[f64], dt: f64, f_lo: f64, f_hi: f64) -> f64 {
    let (freqs, amps) = amplitude_spectrum(signal, dt);
    let total: f64 = amps.iter().map(|a| a * a).sum();
    if total == 0.0 {
        return 0.0;
    }
    let band: f64 = freqs
        .iter()
        .zip(&amps)
        .filter(|(f, _)| **f >= f_lo && **f <= f_hi)
        .map(|(_, a)| a * a)
        .sum();
    band / total
}

/// Padded FFT length used for a signal of this many samples.
pub fn padded_len(n: usize) -> usize {
    next_pow2(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(f: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin()).collect()
    }

    #[test]
    fn tone_peaks_at_its_frequency() {
        let fs = 100.0;
        let sig = sine(5.0, fs, 1024);
        let f = dominant_frequency(&sig, 1.0 / fs, 0.5).unwrap();
        assert!((f - 5.0).abs() < 0.2, "dominant {f}");
    }

    #[test]
    fn tone_amplitude_near_unity() {
        let fs = 128.0;
        let sig = sine(8.0, fs, 1024);
        let (freqs, amps) = amplitude_spectrum(&sig, 1.0 / fs);
        let (i, _) = freqs
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1 - 8.0).abs().total_cmp(&(b.1 - 8.0).abs()))
            .unwrap();
        assert!((amps[i] - 1.0).abs() < 0.15, "amp {}", amps[i]);
    }

    #[test]
    fn dominant_period_inverse_of_frequency() {
        let fs = 50.0;
        let sig = sine(0.4, fs, 2048); // 2.5 s period
        let p = dominant_period(&sig, 1.0 / fs, 0.05).unwrap();
        assert!((p - 2.5).abs() < 0.3, "period {p}");
    }

    #[test]
    fn band_energy_concentrated_for_tone() {
        let fs = 100.0;
        let sig = sine(1.5, fs, 2048);
        let inside = band_energy_fraction(&sig, 1.0 / fs, 1.0, 2.0);
        let outside = band_energy_fraction(&sig, 1.0 / fs, 5.0, 10.0);
        assert!(inside > 0.9, "inside {inside}");
        assert!(outside < 0.01, "outside {outside}");
    }

    #[test]
    fn empty_signal_yields_empty_spectrum() {
        let (f, a) = amplitude_spectrum(&[], 0.1);
        assert!(f.is_empty() && a.is_empty());
        assert!(dominant_frequency(&[], 0.1, 0.0).is_none());
    }

    #[test]
    fn two_tone_picks_larger() {
        let fs = 100.0;
        let n = 2048;
        let sig: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                0.3 * (2.0 * std::f64::consts::PI * 3.0 * t).sin()
                    + 1.0 * (2.0 * std::f64::consts::PI * 9.0 * t).sin()
            })
            .collect();
        let f = dominant_frequency(&sig, 1.0 / fs, 0.5).unwrap();
        assert!((f - 9.0).abs() < 0.3);
    }
}
