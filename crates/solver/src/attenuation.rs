//! Coarse-grained memory-variable attenuation (paper §II.A; Day 1998;
//! Day & Bradley 2001).
//!
//! Each cell carries a single standard-linear-solid relaxation mechanism;
//! eight distinct relaxation times are distributed on a 2×2×2 spatial
//! pattern ("a large number of relaxation times (eight in our
//! calculations)"), so a propagating wave — which averages over
//! neighbouring cells — sees a composite, approximately
//! frequency-independent Q across the simulation band.
//!
//! Per stress component S with elastic increment ΔS over one step:
//!
//! ```text
//! ζ⁺ = a ζ + (1 − a) c (ΔS / Δt)        a = (2τ − Δt)/(2τ + Δt)
//! S ← S + ΔS − Δt ζ⁺                    c = κ / Q   (cell-dependent)
//! ```
//!
//! A single mechanism gives Q⁻¹(ω) ≈ c ωτ/(1 + ω²τ²); the global strength
//! κ is calibrated numerically at setup so the eight-mechanism composite
//! averages to the target 1/Q over the configured band.

use crate::medium::Medium;
use awp_grid::array3::Array3;
use awp_grid::dims::Idx3;
use awp_grid::HALO;

/// Number of coarse-grained relaxation mechanisms.
pub const N_MECH: usize = 8;

/// Precomputed per-cell attenuation coefficients.
#[derive(Debug, Clone)]
pub struct Attenuation {
    /// Memory-variable decay factor `a` per cell.
    pub decay: Array3,
    /// Anelastic strength `c = κ/Qs` for shear components.
    pub cs: Array3,
    /// Anelastic strength `c = κ/Qp` for normal components.
    pub cp: Array3,
}

impl Attenuation {
    /// Eight relaxation times spanning the band (log-spaced so the
    /// composite absorption is flat in log-frequency).
    pub fn relaxation_times(f_lo: f64, f_hi: f64) -> [f64; N_MECH] {
        assert!(f_lo > 0.0 && f_hi > f_lo, "need 0 < f_lo < f_hi");
        let t_hi = 1.0 / (2.0 * std::f64::consts::PI * f_lo);
        let t_lo = 1.0 / (2.0 * std::f64::consts::PI * f_hi);
        let mut taus = [0.0; N_MECH];
        for (m, t) in taus.iter_mut().enumerate() {
            let f = m as f64 / (N_MECH - 1) as f64;
            *t = t_lo * (t_hi / t_lo).powf(f);
        }
        taus
    }

    /// Composite single-cell absorption response `R(ω) = (1/8) Σ_m
    /// g_m(ω)`, `g = ωτ/(1+ω²τ²)`; κ scales this to 1/Q.
    fn band_response(taus: &[f64; N_MECH], omega: f64) -> f64 {
        taus.iter().map(|&t| omega * t / (1.0 + omega * omega * t * t)).sum::<f64>()
            / N_MECH as f64
    }

    /// Least-squares κ such that `κ · R(ω) ≈ 1` across the band.
    pub fn calibrate_kappa(f_lo: f64, f_hi: f64) -> f64 {
        let taus = Self::relaxation_times(f_lo, f_hi);
        let mut num = 0.0;
        let mut den = 0.0;
        for s in 0..32 {
            let f = f_lo * (f_hi / f_lo).powf(s as f64 / 31.0);
            let r = Self::band_response(&taus, 2.0 * std::f64::consts::PI * f);
            num += r;
            den += r * r;
        }
        num / den
    }

    /// Build the per-cell coefficient arrays. `origin` is the rank's
    /// global cell origin — mechanism assignment uses *global* parity so
    /// decomposed runs match serial ones bit for bit.
    pub fn new(med: &Medium, dt: f64, f_lo: f64, f_hi: f64, origin: Idx3) -> Self {
        let taus = Self::relaxation_times(f_lo, f_hi);
        let kappa = Self::calibrate_kappa(f_lo, f_hi);
        let d = med.dims;
        let mut decay = Array3::new(d, HALO);
        let mut cs = Array3::new(d, HALO);
        let mut cp = Array3::new(d, HALO);
        for k in 0..d.nz {
            for j in 0..d.ny {
                for i in 0..d.nx {
                    let (gi, gj, gk) = (origin.i + i, origin.j + j, origin.k + k);
                    let m = (gi % 2) + 2 * (gj % 2) + 4 * (gk % 2);
                    let tau = taus[m];
                    let a = ((2.0 * tau - dt) / (2.0 * tau + dt)) as f32;
                    let (ii, jj, kk) = (i as isize, j as isize, k as isize);
                    decay.set(ii, jj, kk, a);
                    let qs = med.qs.get(ii, jj, kk).max(1.0) as f64;
                    let qp = med.qp.get(ii, jj, kk).max(1.0) as f64;
                    cs.set(ii, jj, kk, (kappa / qs) as f32);
                    cp.set(ii, jj, kk, (kappa / qp) as f32);
                }
            }
        }
        Self { decay, cs, cp }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awp_cvm::mesh::MeshGenerator;
    use awp_cvm::model::HomogeneousModel;
    use awp_grid::dims::Dims3;

    #[test]
    fn relaxation_times_span_band() {
        let taus = Attenuation::relaxation_times(0.1, 2.0);
        let w = 2.0 * std::f64::consts::PI;
        assert!((taus[0] - 1.0 / (w * 2.0)).abs() < 1e-12);
        assert!((taus[7] - 1.0 / (w * 0.1)).abs() < 1e-12);
        for p in taus.windows(2) {
            assert!(p[1] > p[0], "log-spaced ascending");
        }
    }

    #[test]
    fn calibrated_response_is_flat_over_band() {
        let (f_lo, f_hi) = (0.1, 2.0);
        let kappa = Attenuation::calibrate_kappa(f_lo, f_hi);
        let taus = Attenuation::relaxation_times(f_lo, f_hi);
        for s in 0..16 {
            let f = f_lo * (f_hi / f_lo).powf(s as f64 / 15.0);
            let r = kappa * Attenuation::band_response(&taus, 2.0 * std::f64::consts::PI * f);
            assert!((r - 1.0).abs() < 0.25, "f={f}: response {r} not ~1");
        }
    }

    #[test]
    fn coefficients_scale_with_q() {
        let model = HomogeneousModel::new(4000.0, 2000.0, 2500.0);
        let mesh = MeshGenerator::new(&model, Dims3::new(4, 4, 4), 100.0).generate();
        let med = Medium::from_mesh(&mesh);
        let at = Attenuation::new(&med, 1e-3, 0.1, 2.0, Idx3::new(0, 0, 0));
        // Qs = 50·2 = 100, Qp = 200 → cs = 2 cp.
        let cs = at.cs.get(1, 1, 1);
        let cp = at.cp.get(1, 1, 1);
        assert!((cs / cp - 2.0).abs() < 1e-4, "cs {cs} cp {cp}");
        assert!(cs > 0.0 && cs < 1.0);
    }

    #[test]
    fn decay_in_unit_interval() {
        let model = HomogeneousModel::rock();
        let mesh = MeshGenerator::new(&model, Dims3::new(4, 4, 4), 100.0).generate();
        let med = Medium::from_mesh(&mesh);
        let at = Attenuation::new(&med, 1e-3, 0.1, 2.0, Idx3::new(0, 0, 0));
        for k in 0..4 {
            for j in 0..4 {
                for i in 0..4 {
                    let a = at.decay.get(i, j, k);
                    assert!(a > -1.0 && a < 1.0, "a={a}");
                }
            }
        }
    }

    #[test]
    fn mechanism_pattern_uses_global_parity() {
        let model = HomogeneousModel::rock();
        let mesh = MeshGenerator::new(&model, Dims3::new(4, 4, 4), 100.0).generate();
        let med = Medium::from_mesh(&mesh);
        let a0 = Attenuation::new(&med, 1e-3, 0.1, 2.0, Idx3::new(0, 0, 0));
        let a1 = Attenuation::new(&med, 1e-3, 0.1, 2.0, Idx3::new(1, 0, 0));
        // Shifting the origin by one flips the x-parity: local cell 0 in the
        // shifted rank must match local cell 1 in the unshifted one.
        assert_eq!(a1.decay.get(0, 0, 0), a0.decay.get(1, 0, 0));
        assert_ne!(a1.decay.get(0, 0, 0), a0.decay.get(0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "f_lo < f_hi")]
    fn bad_band_rejected() {
        Attenuation::relaxation_times(2.0, 0.1);
    }
}
