//! Ablation benches over the solver's design choices: each DESIGN.md
//! optimisation toggled independently on a full solver step, plus the
//! physics options (attenuation, ABC kind, hybrid threading).

use awp_cvm::mesh::MeshGenerator;
use awp_cvm::model::LayeredModel;
use awp_grid::dims::{Dims3, Idx3};
use awp_solver::config::{AbcKind, SolverConfig};
use awp_solver::solver::Solver;
use awp_solver::stations::Station;
use awp_source::kinematic::KinematicSource;
use awp_source::moment::MomentTensor;
use awp_source::stf::Stf;
use awp_vcluster::TimeLedger;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn build(cfg: SolverConfig) -> Solver {
    let mesh = MeshGenerator::new(&LayeredModel::gradient_crust(900.0), cfg.dims, cfg.h).generate();
    let decomp = awp_grid::decomp::Decomp3::new(cfg.dims, [1, 1, 1]);
    let source = KinematicSource::point(
        Idx3::new(cfg.dims.nx / 2, cfg.dims.ny / 2, cfg.dims.nz / 2),
        MomentTensor::strike_slip(0.0),
        1e17,
        Stf::Triangle { rise_time: 0.5 },
        cfg.dt,
    );
    Solver::new(
        cfg.clone(),
        decomp.subdomain(0),
        &mesh,
        &source,
        &[Station::new("s", Idx3::new(2, 2, 0))],
    )
}

fn base_cfg(d: Dims3) -> SolverConfig {
    let h = 200.0;
    // Safe dt for the gradient crust (Vp < 8 km/s).
    let dt = 6.0 * h / (7.0 * 3f64.sqrt() * 8000.0) * 0.9;
    SolverConfig::small(d, h, dt, 1)
}

fn bench_step_ablation(c: &mut Criterion) {
    let d = Dims3::new(56, 56, 48);
    let mut group = c.benchmark_group("solver_step_ablation");
    group.sample_size(15);
    type Variant<'a> = (&'a str, Box<dyn Fn(&mut SolverConfig)>);
    let variants: Vec<Variant> = vec![
        ("v72_baseline", Box::new(|_c: &mut SolverConfig| {})),
        ("no_reciprocal_media", Box::new(|c| c.opts.reciprocal_media = false)),
        ("no_cache_blocking", Box::new(|c| c.opts.block = awp_grid::blocking::BlockSpec::UNBLOCKED)),
        ("hybrid_threads", Box::new(|c| c.opts.hybrid = true)),
        ("anelastic", Box::new(|c| c.attenuation = true)),
        ("mpml_abc", Box::new(|c| c.abc = AbcKind::Mpml { width: 10, pmax: 0.3 })),
        ("no_abc", Box::new(|c| c.abc = AbcKind::None)),
    ];
    for (name, tweak) in variants {
        let mut cfg = base_cfg(d);
        tweak(&mut cfg);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut solver = build(cfg.clone());
            let mut ledger = TimeLedger::new();
            b.iter(|| solver.step_serial(&mut ledger));
        });
    }
    group.finish();
}

fn bench_rupture_step(c: &mut Criterion) {
    use awp_rupture::prestress::{FaultPrestress, PrestressConfig};
    use awp_rupture::sgsn::{DepthModel, RuptureConfig, RuptureSolver};
    let h = 500.0;
    let dims = Dims3::new(64, 20, 20);
    let model = DepthModel::uniform(dims.nz, 2700.0, 6000.0, 3464.0);
    let pc = PrestressConfig::m8_like(48, 14, h, 7);
    let prestress = FaultPrestress::build(&pc);
    let cfg = RuptureConfig {
        dims,
        h,
        dt: 0.02,
        steps: 1,
        j0: 10,
        i_range: (8, 56),
        k_range: (0, 14),
        sponge_width: 5,
        rupture_threshold: 1e-3,
        record_decimation: 4,
    };
    let mut group = c.benchmark_group("rupture_step");
    group.sample_size(15);
    group.bench_function("dfr_step_25k_cells", |b| {
        let mut solver = RuptureSolver::new(cfg.clone(), model.clone(), prestress.clone());
        b.iter(|| solver.step());
    });
    group.finish();
}

criterion_group!(benches, bench_step_ablation, bench_rupture_step);
criterion_main!(benches);
