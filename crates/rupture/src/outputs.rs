//! Rupture products: slip, peak slip rate, rupture time, slip-rate
//! histories, moment accounting, and conversion to the kinematic source
//! format (the first step of the M8 two-step method, §VII.B).

use awp_grid::dims::{Dims3, Idx3};
use awp_source::kinematic::{from_slip_rates, KinematicSource};
use serde::{Deserialize, Serialize};

/// Results of a spontaneous-rupture run. Fault-plane fields are x-fastest
/// over `nx × nz` nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuptureResult {
    pub nx: usize,
    pub nz: usize,
    /// Node spacing (m).
    pub h: f64,
    /// Sampling interval of the recorded slip-rate histories (s).
    pub dt_rec: f64,
    pub slip: Vec<f64>,
    pub peak_sliprate: Vec<f64>,
    pub rupture_time: Vec<f64>,
    histories: Vec<Vec<f32>>,
    /// Depth-wise rigidity used for moment accounting (Pa).
    mu_profile: Vec<f64>,
}

impl RuptureResult {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        nx: usize,
        nz: usize,
        h: f64,
        dt_rec: f64,
        slip: Vec<f64>,
        peak_sliprate: Vec<f64>,
        rupture_time: Vec<f64>,
        histories: Vec<Vec<f32>>,
        mu_profile: &[f64],
    ) -> Self {
        assert_eq!(slip.len(), nx * nz);
        assert_eq!(mu_profile.len(), nz);
        Self {
            nx,
            nz,
            h,
            dt_rec,
            slip,
            peak_sliprate,
            rupture_time,
            histories,
            mu_profile: mu_profile.to_vec(),
        }
    }

    #[inline]
    fn idx(&self, i: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && k < self.nz);
        i + self.nx * k
    }

    pub fn slip(&self, i: usize, k: usize) -> f64 {
        self.slip[self.idx(i, k)]
    }

    pub fn peak_sliprate(&self, i: usize, k: usize) -> f64 {
        self.peak_sliprate[self.idx(i, k)]
    }

    pub fn rupture_time(&self, i: usize, k: usize) -> f64 {
        self.rupture_time[self.idx(i, k)]
    }

    pub fn history(&self, i: usize, k: usize) -> &[f32] {
        &self.histories[self.idx(i, k)]
    }

    pub fn max_slip(&self) -> f64 {
        self.slip.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean slip over ruptured nodes (0 if none ruptured).
    pub fn mean_slip(&self) -> f64 {
        let ruptured: Vec<f64> = self
            .slip
            .iter()
            .zip(&self.rupture_time)
            .filter(|(_, t)| t.is_finite())
            .map(|(s, _)| *s)
            .collect();
        if ruptured.is_empty() {
            0.0
        } else {
            ruptured.iter().sum::<f64>() / ruptured.len() as f64
        }
    }

    /// Surface slip: mean over the top node row.
    pub fn surface_slip_max(&self) -> f64 {
        (0..self.nx).map(|i| self.slip(i, 0)).fold(0.0, f64::max)
    }

    /// Seismic moment `M0 = Σ μ(k) A D(i,k)` (N·m).
    pub fn moment(&self) -> f64 {
        let a = self.h * self.h;
        let mut m0 = 0.0;
        for k in 0..self.nz {
            let mu = self.mu_profile[k];
            for i in 0..self.nx {
                m0 += mu * a * self.slip(i, k);
            }
        }
        m0
    }

    pub fn magnitude(&self) -> f64 {
        awp_source::moment::moment_magnitude(self.moment().max(1.0))
    }

    /// Rupture duration (time of the last rupturing node).
    pub fn duration(&self) -> f64 {
        self.rupture_time.iter().cloned().filter(|t| t.is_finite()).fold(0.0, f64::max)
    }

    /// Fraction of the fault that ruptured.
    pub fn ruptured_fraction(&self) -> f64 {
        let n = self.rupture_time.iter().filter(|t| t.is_finite()).count();
        n as f64 / self.rupture_time.len() as f64
    }

    /// Convert to a kinematic moment-rate source on a planar fault in a
    /// target grid: subfault (i, k) lands at grid cell
    /// `(i_origin + i·sub, j0, k_origin + k·sub)`, subsampled by `sub`
    /// nodes in each fault direction (each carrying the slip of its
    /// sub-patch via the area factor). Histories are kept at `dt_rec`.
    pub fn to_kinematic(
        &self,
        grid: Dims3,
        i_origin: usize,
        j0: usize,
        k_origin: usize,
        sub: usize,
        strike: f64,
    ) -> KinematicSource {
        let sub = sub.max(1);
        let area = (self.h * sub as f64) * (self.h * sub as f64);
        let mut entries = Vec::new();
        for k in (0..self.nz).step_by(sub) {
            for i in (0..self.nx).step_by(sub) {
                let hist = self.history(i, k);
                if hist.iter().all(|&v| v == 0.0) {
                    continue;
                }
                let gi = i_origin + i / sub;
                let gk = k_origin + k / sub;
                if gi >= grid.nx || gk >= grid.nz || j0 >= grid.ny {
                    continue;
                }
                entries.push((Idx3::new(gi, j0, gk), 0.0, hist.to_vec()));
            }
        }
        // μ taken at each subfault's depth; from_slip_rates needs a single
        // μ — use the depth-weighted mean of ruptured rows.
        let mu_mean = {
            let mut wsum = 0.0;
            let mut w = 0.0;
            for k in 0..self.nz {
                let rowslip: f64 = (0..self.nx).map(|i| self.slip(i, k)).sum();
                wsum += self.mu_profile[k] * rowslip;
                w += rowslip;
            }
            if w > 0.0 {
                wsum / w
            } else {
                self.mu_profile[0]
            }
        };
        from_slip_rates(entries, mu_mean, area, strike, self.dt_rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> RuptureResult {
        // 4 × 2 fault: uniform slip 2 m, all ruptured.
        RuptureResult::assemble(
            4,
            2,
            100.0,
            0.1,
            vec![2.0; 8],
            vec![1.0; 8],
            vec![0.5; 8],
            vec![vec![1.0, 1.0, 0.0]; 8],
            &[3.0e10, 3.0e10],
        )
    }

    #[test]
    fn moment_of_uniform_slip() {
        let r = toy();
        // M0 = μ A D × n = 3e10 · 1e4 · 2 · 8 = 4.8e15.
        assert!((r.moment() - 4.8e15).abs() / 4.8e15 < 1e-12);
        assert!(r.magnitude() > 4.0 && r.magnitude() < 5.0);
        assert_eq!(r.mean_slip(), 2.0);
        assert_eq!(r.ruptured_fraction(), 1.0);
        assert_eq!(r.duration(), 0.5);
    }

    #[test]
    fn kinematic_conversion_conserves_moment_approximately() {
        let r = toy();
        let src = r.to_kinematic(Dims3::new(16, 8, 8), 2, 3, 0, 1, 0.0);
        assert_eq!(src.subfaults.len(), 8);
        // Moment from histories: μ A ∫ṡ dt = 3e10·1e4·(1.0·0.1·2) = 6e13
        // per subfault… integral of [1,1,0] at dt 0.1 = 0.2 m < slip 2 m
        // (the toy history is truncated), so just check consistency of the
        // conversion itself.
        let per = src.subfaults[0].moment;
        assert!((per - 3.0e10 * 1.0e4 * 0.2).abs() / per < 1e-6);
        // Indices mapped onto the target plane.
        assert!(src.subfaults.iter().all(|s| s.idx.j == 3));
    }

    #[test]
    fn subsampling_scales_area() {
        let r = toy();
        let full = r.to_kinematic(Dims3::new(16, 8, 8), 0, 3, 0, 1, 0.0);
        let half = r.to_kinematic(Dims3::new(16, 8, 8), 0, 3, 0, 2, 0.0);
        assert!(half.subfaults.len() < full.subfaults.len());
        // Total moment approximately preserved (uniform field: exact).
        let mf = full.total_moment();
        let mh = half.total_moment();
        assert!((mf - mh).abs() / mf < 1e-6, "{mf} vs {mh}");
    }

    #[test]
    fn silent_nodes_skipped() {
        let mut r = toy();
        r.histories[0] = vec![0.0, 0.0, 0.0];
        let src = r.to_kinematic(Dims3::new(16, 8, 8), 0, 3, 0, 1, 0.0);
        assert_eq!(src.subfaults.len(), 7);
    }
}
