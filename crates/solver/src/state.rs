//! Wavefield state: the nine staggered components plus anelastic memory
//! variables.

use awp_grid::array3::Array3;
use awp_grid::dims::Dims3;
use awp_grid::stagger::Component;
use awp_grid::HALO;

/// Anelastic memory variables: one per stress component (the
/// coarse-grained scheme needs a single mechanism per cell — "without
/// sacrificing computational or memory efficiency", paper §II.A).
#[derive(Debug, Clone)]
pub struct MemoryVars {
    pub xx: Array3,
    pub yy: Array3,
    pub zz: Array3,
    pub xy: Array3,
    pub xz: Array3,
    pub yz: Array3,
}

impl MemoryVars {
    pub fn new(dims: Dims3) -> Self {
        Self {
            xx: Array3::new(dims, HALO),
            yy: Array3::new(dims, HALO),
            zz: Array3::new(dims, HALO),
            xy: Array3::new(dims, HALO),
            xz: Array3::new(dims, HALO),
            yz: Array3::new(dims, HALO),
        }
    }
}

/// The full wavefield on one rank's subdomain.
#[derive(Debug, Clone)]
pub struct WaveState {
    pub dims: Dims3,
    pub vx: Array3,
    pub vy: Array3,
    pub vz: Array3,
    pub sxx: Array3,
    pub syy: Array3,
    pub szz: Array3,
    pub sxy: Array3,
    pub sxz: Array3,
    pub syz: Array3,
    /// Present when attenuation is enabled.
    pub mem: Option<MemoryVars>,
}

impl WaveState {
    pub fn new(dims: Dims3, attenuation: bool) -> Self {
        Self {
            dims,
            vx: Array3::new(dims, HALO),
            vy: Array3::new(dims, HALO),
            vz: Array3::new(dims, HALO),
            sxx: Array3::new(dims, HALO),
            syy: Array3::new(dims, HALO),
            szz: Array3::new(dims, HALO),
            sxy: Array3::new(dims, HALO),
            sxz: Array3::new(dims, HALO),
            syz: Array3::new(dims, HALO),
            mem: attenuation.then(|| MemoryVars::new(dims)),
        }
    }

    /// Shared immutable access to a component array.
    pub fn field(&self, c: Component) -> &Array3 {
        match c {
            Component::Vx => &self.vx,
            Component::Vy => &self.vy,
            Component::Vz => &self.vz,
            Component::Sxx => &self.sxx,
            Component::Syy => &self.syy,
            Component::Szz => &self.szz,
            Component::Sxy => &self.sxy,
            Component::Sxz => &self.sxz,
            Component::Syz => &self.syz,
        }
    }

    pub fn field_mut(&mut self, c: Component) -> &mut Array3 {
        match c {
            Component::Vx => &mut self.vx,
            Component::Vy => &mut self.vy,
            Component::Vz => &mut self.vz,
            Component::Sxx => &mut self.sxx,
            Component::Syy => &mut self.syy,
            Component::Szz => &mut self.szz,
            Component::Sxy => &mut self.sxy,
            Component::Sxz => &mut self.sxz,
            Component::Syz => &mut self.syz,
        }
    }

    /// Peak particle speed magnitude over the interior (∞-norm proxy used
    /// by stability checks).
    pub fn max_velocity(&self) -> f32 {
        self.vx.max_abs().max(self.vy.max_abs()).max(self.vz.max_abs())
    }

    /// Crude kinetic-energy proxy: Σ v² over the interior (mass omitted).
    pub fn kinetic_energy(&self) -> f64 {
        self.vx.sumsq() + self.vy.sumsq() + self.vz.sumsq()
    }

    /// True if any component holds a non-finite value (blow-up detector).
    pub fn has_nan(&self) -> bool {
        Component::ALL.iter().any(|&c| self.field(c).as_slice().iter().any(|v| !v.is_finite()))
    }

    /// Named state fields for checkpointing. Full padded arrays (halos
    /// included) are stored: the halo layers carry boundary images and
    /// neighbour data that the next update reads, so restart would not be
    /// bit-exact without them.
    pub fn checkpoint_fields(&self) -> Vec<(String, Vec<f32>)> {
        let mut out: Vec<(String, Vec<f32>)> = Component::ALL
            .iter()
            .map(|&c| (format!("{c:?}").to_lowercase(), self.field(c).as_slice().to_vec()))
            .collect();
        if let Some(mem) = &self.mem {
            for (name, arr) in [
                ("mem_xx", &mem.xx),
                ("mem_yy", &mem.yy),
                ("mem_zz", &mem.zz),
                ("mem_xy", &mem.xy),
                ("mem_xz", &mem.xz),
                ("mem_yz", &mem.yz),
            ] {
                out.push((name.to_string(), arr.as_slice().to_vec()));
            }
        }
        out
    }

    /// Restore from checkpoint fields (inverse of
    /// [`WaveState::checkpoint_fields`]).
    pub fn restore_fields(&mut self, fields: &[(String, Vec<f32>)]) {
        for (name, data) in fields {
            let target: Option<&mut Array3> = match name.as_str() {
                "vx" => Some(&mut self.vx),
                "vy" => Some(&mut self.vy),
                "vz" => Some(&mut self.vz),
                "sxx" => Some(&mut self.sxx),
                "syy" => Some(&mut self.syy),
                "szz" => Some(&mut self.szz),
                "sxy" => Some(&mut self.sxy),
                "sxz" => Some(&mut self.sxz),
                "syz" => Some(&mut self.syz),
                _ => match (&mut self.mem, name.as_str()) {
                    (Some(m), "mem_xx") => Some(&mut m.xx),
                    (Some(m), "mem_yy") => Some(&mut m.yy),
                    (Some(m), "mem_zz") => Some(&mut m.zz),
                    (Some(m), "mem_xy") => Some(&mut m.xy),
                    (Some(m), "mem_xz") => Some(&mut m.xz),
                    (Some(m), "mem_yz") => Some(&mut m.yz),
                    _ => None,
                },
            };
            if let Some(arr) = target {
                arr.as_mut_slice().copy_from_slice(data);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_state_is_quiescent() {
        let s = WaveState::new(Dims3::new(4, 4, 4), false);
        assert_eq!(s.max_velocity(), 0.0);
        assert_eq!(s.kinetic_energy(), 0.0);
        assert!(!s.has_nan());
        assert!(s.mem.is_none());
    }

    #[test]
    fn attenuation_allocates_memory_vars() {
        let s = WaveState::new(Dims3::new(2, 2, 2), true);
        assert!(s.mem.is_some());
        assert_eq!(s.checkpoint_fields().len(), 15);
    }

    #[test]
    fn field_accessors_cover_components() {
        let mut s = WaveState::new(Dims3::new(2, 2, 2), false);
        for c in Component::ALL {
            s.field_mut(c).set(0, 0, 0, c.id() as f32 + 1.0);
        }
        for c in Component::ALL {
            assert_eq!(s.field(c).get(0, 0, 0), c.id() as f32 + 1.0);
        }
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut s = WaveState::new(Dims3::new(3, 2, 2), true);
        s.vx.set(1, 1, 1, 5.0);
        s.syz.set(2, 0, 1, -3.0);
        s.mem.as_mut().unwrap().xy.set(0, 0, 0, 0.25);
        let fields = s.checkpoint_fields();
        let mut restored = WaveState::new(Dims3::new(3, 2, 2), true);
        restored.restore_fields(&fields);
        assert_eq!(restored.vx.get(1, 1, 1), 5.0);
        assert_eq!(restored.syz.get(2, 0, 1), -3.0);
        assert_eq!(restored.mem.as_ref().unwrap().xy.get(0, 0, 0), 0.25);
    }

    #[test]
    fn nan_detector_fires() {
        let mut s = WaveState::new(Dims3::new(2, 2, 2), false);
        assert!(!s.has_nan());
        s.szz.set(1, 1, 1, f32::NAN);
        assert!(s.has_nan());
    }
}

/// Elastic-energy diagnostics (physics sanity tooling): kinetic energy
/// `½ρv²` plus strain energy `½σ:ε` summed over the interior. Uses the
/// isotropic compliance to turn stresses into strains:
/// `ε_kk-part = (σ_kk − λ/(3λ+2μ)·tr σ)/2μ` etc. Units: Joules per unit
/// cell volume × h³ applied by the caller.
pub fn elastic_energy(state: &WaveState, med: &crate::medium::Medium) -> f64 {
    let d = state.dims;
    let mut e = 0.0f64;
    for k in 0..d.nz as isize {
        for j in 0..d.ny as isize {
            for i in 0..d.nx as isize {
                let rho = med.rho.get(i, j, k) as f64;
                let lam = med.lam.get(i, j, k) as f64;
                let mu = med.mu.get(i, j, k) as f64;
                let (vx, vy, vz) = (
                    state.vx.get(i, j, k) as f64,
                    state.vy.get(i, j, k) as f64,
                    state.vz.get(i, j, k) as f64,
                );
                e += 0.5 * rho * (vx * vx + vy * vy + vz * vz);
                let (sxx, syy, szz) = (
                    state.sxx.get(i, j, k) as f64,
                    state.syy.get(i, j, k) as f64,
                    state.szz.get(i, j, k) as f64,
                );
                let (sxy, sxz, syz) = (
                    state.sxy.get(i, j, k) as f64,
                    state.sxz.get(i, j, k) as f64,
                    state.syz.get(i, j, k) as f64,
                );
                if mu > 0.0 {
                    let tr = sxx + syy + szz;
                    let bulk = lam + 2.0 * mu / 3.0;
                    // Volumetric part: tr²/(18K); deviatoric: s:s/(4μ).
                    let dev_xx = sxx - tr / 3.0;
                    let dev_yy = syy - tr / 3.0;
                    let dev_zz = szz - tr / 3.0;
                    let dev2 = dev_xx * dev_xx
                        + dev_yy * dev_yy
                        + dev_zz * dev_zz
                        + 2.0 * (sxy * sxy + sxz * sxz + syz * syz);
                    e += tr * tr / (18.0 * bulk) + dev2 / (4.0 * mu);
                }
            }
        }
    }
    e
}

#[cfg(test)]
mod energy_tests {
    use super::*;
    use awp_cvm::mesh::MeshGenerator;
    use awp_cvm::model::HomogeneousModel;

    fn med(d: Dims3) -> crate::medium::Medium {
        let mesh = MeshGenerator::new(&HomogeneousModel::rock(), d, 100.0).generate();
        crate::medium::Medium::from_mesh(&mesh)
    }

    #[test]
    fn quiescent_state_has_zero_energy() {
        let d = Dims3::new(4, 4, 4);
        assert_eq!(elastic_energy(&WaveState::new(d, false), &med(d)), 0.0);
    }

    #[test]
    fn kinetic_part_matches_half_rho_v_squared() {
        let d = Dims3::new(3, 3, 3);
        let m = med(d);
        let mut s = WaveState::new(d, false);
        s.vx.set(1, 1, 1, 2.0);
        let want = 0.5 * 2700.0 * 4.0;
        assert!((elastic_energy(&s, &m) - want).abs() < 1e-6);
    }

    #[test]
    fn pure_shear_strain_energy() {
        let d = Dims3::new(2, 2, 2);
        let m = med(d);
        let mut s = WaveState::new(d, false);
        // σxy = τ everywhere: energy density τ²/(2μ) per cell.
        let tau = 1.0e6f32;
        s.sxy.map_interior(|_, _| tau);
        let mu = 2700.0 * 3464.0f64 * 3464.0;
        let want = (tau as f64 * tau as f64) / (2.0 * mu) * d.count() as f64;
        let got = elastic_energy(&s, &m);
        assert!((got / want - 1.0).abs() < 1e-4, "{got} vs {want}");
    }

    #[test]
    fn energy_is_positive_definite() {
        let d = Dims3::new(3, 3, 3);
        let m = med(d);
        let mut s = WaveState::new(d, false);
        s.szz.set(0, 0, 0, -5.0e5);
        s.vy.set(2, 2, 2, -1.0);
        assert!(elastic_energy(&s, &m) > 0.0);
    }
}
