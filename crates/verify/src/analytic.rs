//! Closed-form full-space point-source solution (Aki & Richards 2002,
//! eq. 4.29), differentiated to particle *velocity* — the quantity the
//! solver records.
//!
//! For a moment-tensor point source `M_pq(t) = M₀ T_pq s(t)` in a
//! homogeneous, unbounded, isotropic elastic medium the velocity at
//! receiver offset `r γ` is
//!
//! ```text
//! v_n = 1/(4πρ) [ AN_n/r⁴ · ∫_{r/α}^{r/β} τ g(t−τ) dτ
//!               + AIP_n/(α²r²) · g(t−r/α)  −  AIS_n/(β²r²) · g(t−r/β)
//!               + AFP_n/(α³r)  · ġ(t−r/α)  −  AFS_n/(β³r)  · ġ(t−r/β) ]
//! ```
//!
//! where `g(t) = M₀ ṡ(t)` is the moment *rate* (the displacement formula
//! carries `M(t)`; one time derivative turns every occurrence into its
//! rate). With `q = γ·Tγ`, `tr = T_pp` and `(Tγ)_n = T_np γ_p`, the
//! radiation-pattern contractions are
//!
//! ```text
//! AN_n  = 15 q γ_n − 3 tr γ_n − 6 (Tγ)_n        (near field)
//! AIP_n =  6 q γ_n −   tr γ_n − 2 (Tγ)_n        (intermediate P)
//! AIS_n =  6 q γ_n −   tr γ_n − 3 (Tγ)_n        (intermediate S)
//! AFP_n =    q γ_n                              (far P, longitudinal)
//! AFS_n =    q γ_n −            (Tγ)_n          (far S, transverse)
//! ```
//!
//! Sanity limit baked into the tests: for an isotropic explosion
//! (`T = δ`) every S and near-field coefficient vanishes and
//! `AIP = AFP = γ` — a pure radial P radiator.

use awp_source::moment::MomentTensor;
use awp_source::stf::Stf;

/// Homogeneous unbounded medium.
#[derive(Debug, Clone, Copy)]
pub struct FullSpace {
    /// P velocity α (m/s).
    pub vp: f64,
    /// S velocity β (m/s).
    pub vs: f64,
    /// Density ρ (kg/m³).
    pub rho: f64,
}

impl FullSpace {
    /// The verification medium: Poisson solid rock (α/β = √3) matching
    /// `HomogeneousModel::new(6000, 6000/√3, 2700)`.
    pub fn rock() -> Self {
        FullSpace { vp: 6000.0, vs: 6000.0 / 3f64.sqrt(), rho: 2700.0 }
    }
}

/// A moment-tensor point source with an analytic source-time function.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticPoint {
    /// Physical source position (m) — the staggered node the solver
    /// actually injects into (cell corner for normal stresses, edge
    /// midpoints for shear components).
    pub pos: [f64; 3],
    /// Unit mechanism tensor `T`.
    pub tensor: MomentTensor,
    /// Scalar moment M₀ (N·m).
    pub moment: f64,
    /// Slip-rate shape `ṡ(t)` (unit time-integral).
    pub stf: Stf,
}

/// `T γ` for the symmetric mechanism tensor.
fn t_gamma(t: &MomentTensor, g: [f64; 3]) -> [f64; 3] {
    [
        t.mxx * g[0] + t.mxy * g[1] + t.mxz * g[2],
        t.mxy * g[0] + t.myy * g[1] + t.myz * g[2],
        t.mxz * g[0] + t.myz * g[1] + t.mzz * g[2],
    ]
}

/// Composite-Simpson quadrature of `f` over `[a, b]` with `n` intervals
/// (`n` rounded up to even).
fn simpson(a: f64, b: f64, n: usize, f: impl Fn(f64) -> f64) -> f64 {
    let n = (n.max(2) + 1) & !1; // even, ≥ 2
    let h = (b - a) / n as f64;
    let mut s = f(a) + f(b);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        s += w * f(a + i as f64 * h);
    }
    s * h / 3.0
}

impl AnalyticPoint {
    fn g(&self, t: f64) -> f64 {
        self.moment * self.stf.rate(t)
    }

    fn g_dot(&self, t: f64) -> f64 {
        self.moment * self.stf.rate_dot(t)
    }

    /// Particle velocity at receiver position `x` (m) and time `t` (s).
    pub fn velocity(&self, med: &FullSpace, x: [f64; 3], t: f64) -> [f64; 3] {
        let d = [x[0] - self.pos[0], x[1] - self.pos[1], x[2] - self.pos[2]];
        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
        assert!(r > 0.0, "receiver coincides with the source");
        let gam = [d[0] / r, d[1] / r, d[2] / r];
        let (a, b, rho) = (med.vp, med.vs, med.rho);
        let (ta, tb) = (r / a, r / b);
        if t <= ta {
            return [0.0; 3]; // causality: nothing before the P arrival
        }

        let tg = t_gamma(&self.tensor, gam);
        let q = gam[0] * tg[0] + gam[1] * tg[1] + gam[2] * tg[2];
        let tr = self.tensor.mxx + self.tensor.myy + self.tensor.mzz;

        // Near-field integral ∫ τ g(t−τ) dτ over the P→S window, resolved
        // well below the source-pulse timescale (Simpson is exact through
        // cubics; the residual is O((T/n)²) of an already-small term).
        let n = (200.0 * (tb - ta) / self.stf.duration()).ceil() as usize + 8;
        let near = simpson(ta, tb, n, |tau| tau * self.g(t - tau));

        let (gp, gs) = (self.g(t - ta), self.g(t - tb));
        let (gdp, gds) = (self.g_dot(t - ta), self.g_dot(t - tb));
        let c = 1.0 / (4.0 * std::f64::consts::PI * rho);
        let mut v = [0.0; 3];
        for i in 0..3 {
            let an = 15.0 * q * gam[i] - 3.0 * tr * gam[i] - 6.0 * tg[i];
            let aip = 6.0 * q * gam[i] - tr * gam[i] - 2.0 * tg[i];
            let ais = 6.0 * q * gam[i] - tr * gam[i] - 3.0 * tg[i];
            let afp = q * gam[i];
            let afs = q * gam[i] - tg[i];
            v[i] = c
                * (an / r.powi(4) * near + aip / (a * a * r * r) * gp
                    - ais / (b * b * r * r) * gs
                    + afp / (a * a * a * r) * gdp
                    - afs / (b * b * b * r) * gds);
        }
        v
    }

    /// Three-component velocity trace at per-component receiver positions
    /// (the staggered grid puts `vx`, `vy`, `vz` at different physical
    /// nodes): `n` samples at spacing `dt`, sample `s` at time `s·dt`.
    pub fn velocity_trace(
        &self,
        med: &FullSpace,
        pos: [[f64; 3]; 3],
        dt: f64,
        n: usize,
    ) -> [Vec<f64>; 3] {
        let mut out = [Vec::with_capacity(n), Vec::with_capacity(n), Vec::with_capacity(n)];
        for s in 0..n {
            let t = s as f64 * dt;
            for c in 0..3 {
                out[c].push(self.velocity(med, pos[c], t)[c]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explosion(moment: f64, rise: f64) -> AnalyticPoint {
        AnalyticPoint {
            pos: [0.0; 3],
            tensor: MomentTensor::explosion(),
            moment,
            stf: Stf::Cosine { rise_time: rise },
        }
    }

    #[test]
    fn simpson_is_exact_for_cubics() {
        let v = simpson(1.0, 3.0, 7, |x| 2.0 * x * x * x - x + 5.0);
        let exact = 0.5 * (3f64.powi(4) - 1.0) - 0.5 * (9.0 - 1.0) + 5.0 * 2.0;
        assert!((v - exact).abs() < 1e-10, "{v} vs {exact}");
    }

    #[test]
    fn explosion_is_pure_radial_p() {
        let med = FullSpace::rock();
        let src = explosion(1e15, 0.4);
        let x = [900.0, 1200.0, 2000.0]; // r = 2500
        let r = 2500.0;
        let gam = [x[0] / r, x[1] / r, x[2] / r];
        let (ta, tb) = (r / med.vp, r / med.vs);
        let amp = |v: [f64; 3]| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        let mut peak = 0.0f64;
        for s in 0..400 {
            let t = s as f64 * 0.005;
            let v = src.velocity(&med, x, t);
            // Longitudinal polarisation: v ∥ γ at every instant.
            let vr = v[0] * gam[0] + v[1] * gam[1] + v[2] * gam[2];
            for i in 0..3 {
                assert!((v[i] - vr * gam[i]).abs() <= 1e-12 * (1.0 + vr.abs()), "t={t}");
            }
            // Confined to the P window [ta, ta + rise]: no S, no coda.
            // (Only up-to-rounding zero outside: q = |γ|² carries an ulp,
            // so the vanishing AN/AIS/AFS contractions leave ~1e-16·term.)
            if t < ta - 1e-9 || (t > ta + 0.4 + 1e-9 && t < tb - 1e-9) || t > tb + 0.4 + 1e-9 {
                assert!(amp(v) < 1e-10, "t={t} outside the P window: {v:?}");
            }
            peak = peak.max(amp(v));
        }
        assert!(peak > 1e-6, "the P pulse must actually arrive (peak {peak})");
    }

    #[test]
    fn causality_before_p_arrival() {
        let med = FullSpace::rock();
        let src = AnalyticPoint {
            pos: [100.0, -50.0, 30.0],
            tensor: MomentTensor::strike_slip(0.7),
            moment: 1e16,
            stf: Stf::Cosine { rise_time: 0.3 },
        };
        let x = [2100.0, 1450.0, 30.0];
        let r = (2000.0f64 * 2000.0 + 1500.0 * 1500.0).sqrt();
        for s in 0..50 {
            let t = s as f64 * (r / med.vp) / 50.0;
            assert_eq!(src.velocity(&med, x, t * 0.999), [0.0; 3]);
        }
    }

    #[test]
    fn strike_slip_nodal_and_max_directions() {
        // Pure Mxy double couple: on the +x axis P is nodal (q = 2γxγy = 0)
        // and S is maximal and y-polarised; on the 45° diagonal P is
        // maximal and the far-field S vanishes (AFS = qγ − Tγ = 0 there).
        let med = FullSpace::rock();
        let src = AnalyticPoint {
            pos: [0.0; 3],
            tensor: MomentTensor::strike_slip(0.0),
            moment: 1e16,
            stf: Stf::Cosine { rise_time: 0.25 },
        };
        let r = 40_000.0; // far field: 1/r² terms down by ~g·β/(ġ·r) ≈ 1%
        let on_axis = [r, 0.0, 0.0];
        // Probe at quarter-pulse: ġ peaks there (it crosses zero at T/2,
        // where the far-field terms would vanish and bury the contrast).
        let ts = r / med.vs + 0.0625;
        let v = src.velocity(&med, on_axis, ts);
        assert!(v[1].abs() > 1e3 * v[0].abs().max(v[2].abs()), "S on axis is y-polarised: {v:?}");
        let tp = r / med.vp + 0.0625;
        let vp_axis = src.velocity(&med, on_axis, tp);
        let diag = [r / 2f64.sqrt(), r / 2f64.sqrt(), 0.0];
        let vp_diag = src.velocity(&med, diag, tp);
        let amp = |v: [f64; 3]| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
        // The far-field P is nodal on the axis; what survives there is the
        // intermediate 1/r² term, so the contrast is large but not ∞.
        assert!(amp(vp_diag) > 20.0 * amp(vp_axis), "P lobe on the diagonal, node on axis");
        let vs_diag = src.velocity(&med, diag, ts);
        assert!(amp(vs_diag) < 0.05 * amp(v), "far-field S is nodal on the diagonal");
    }

    #[test]
    fn far_field_scales_as_one_over_r() {
        let med = FullSpace::rock();
        let src = explosion(1e15, 0.2);
        let (r1, r2) = (30_000.0, 60_000.0);
        // Quarter-pulse probe: ġ is maximal there, while at mid-pulse
        // (T/2) it is zero and only the 1/r² near terms would survive.
        let t1 = r1 / med.vp + 0.05;
        let t2 = t1 + (r2 - r1) / med.vp; // same retarded time
        let v1 = src.velocity(&med, [r1, 0.0, 0.0], t1)[0];
        let v2 = src.velocity(&med, [r2, 0.0, 0.0], t2)[0];
        assert!(v1.abs() > 0.0);
        assert!((v1 * r1 / (v2 * r2) - 1.0).abs() < 2e-2, "{} vs {}", v1 * r1, v2 * r2);
    }

    #[test]
    fn explosion_axes_are_symmetric() {
        let med = FullSpace::rock();
        let src = explosion(2e15, 0.3);
        for s in 0..200 {
            let t = s as f64 * 0.004;
            let vx = src.velocity(&med, [1500.0, 0.0, 0.0], t)[0];
            let vy = src.velocity(&med, [0.0, 1500.0, 0.0], t)[1];
            let vz = src.velocity(&med, [0.0, 0.0, 1500.0], t)[2];
            assert!((vx - vy).abs() <= 1e-12 * (1.0 + vx.abs()));
            assert!((vx - vz).abs() <= 1e-12 * (1.0 + vx.abs()));
        }
    }

    #[test]
    fn trace_matches_pointwise_eval() {
        let med = FullSpace::rock();
        let src = explosion(1e15, 0.3);
        let pos = [[1000.0, 50.0, 0.0], [950.0, 100.0, 0.0], [950.0, 50.0, 50.0]];
        let tr = src.velocity_trace(&med, pos, 0.01, 80);
        for s in [0usize, 17, 40, 79] {
            for c in 0..3 {
                assert_eq!(tr[c][s], src.velocity(&med, pos[c], s as f64 * 0.01)[c]);
            }
        }
    }
}
