//! Staggered-grid conventions for the velocity–stress system.
//!
//! The nine wavefield components live at staggered positions within a cell
//! (Graves 1996; paper §II.B). Normal stresses sit at cell centres, each
//! velocity component is offset half a cell along its own axis, and each
//! shear stress is offset half a cell along both of its index axes.

use serde::{Deserialize, Serialize};

/// Half-cell offsets of a field location: `true` means +h/2 on that axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StaggerLoc {
    pub x_half: bool,
    pub y_half: bool,
    pub z_half: bool,
}

impl StaggerLoc {
    pub const CELL: StaggerLoc = StaggerLoc { x_half: false, y_half: false, z_half: false };

    /// Physical coordinate (in units of h) of index `idx` for this location.
    pub fn coord(&self, idx: (usize, usize, usize)) -> (f64, f64, f64) {
        (
            idx.0 as f64 + if self.x_half { 0.5 } else { 0.0 },
            idx.1 as f64 + if self.y_half { 0.5 } else { 0.0 },
            idx.2 as f64 + if self.z_half { 0.5 } else { 0.0 },
        )
    }
}

/// One of the nine wavefield components updated each time step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    Vx,
    Vy,
    Vz,
    Sxx,
    Syy,
    Szz,
    Sxy,
    Sxz,
    Syz,
}

impl Component {
    pub const ALL: [Component; 9] = [
        Component::Vx,
        Component::Vy,
        Component::Vz,
        Component::Sxx,
        Component::Syy,
        Component::Szz,
        Component::Sxy,
        Component::Sxz,
        Component::Syz,
    ];

    pub const VELOCITIES: [Component; 3] = [Component::Vx, Component::Vy, Component::Vz];

    pub const STRESSES: [Component; 6] = [
        Component::Sxx,
        Component::Syy,
        Component::Szz,
        Component::Sxy,
        Component::Sxz,
        Component::Syz,
    ];

    pub const fn is_velocity(self) -> bool {
        matches!(self, Component::Vx | Component::Vy | Component::Vz)
    }

    /// Stable small integer id, used in message tags and field tables.
    pub const fn id(self) -> usize {
        match self {
            Component::Vx => 0,
            Component::Vy => 1,
            Component::Vz => 2,
            Component::Sxx => 3,
            Component::Syy => 4,
            Component::Szz => 5,
            Component::Sxy => 6,
            Component::Sxz => 7,
            Component::Syz => 8,
        }
    }

    /// Staggered location of this component within the cell.
    pub const fn loc(self) -> StaggerLoc {
        match self {
            Component::Vx => StaggerLoc { x_half: true, y_half: false, z_half: false },
            Component::Vy => StaggerLoc { x_half: false, y_half: true, z_half: false },
            Component::Vz => StaggerLoc { x_half: false, y_half: false, z_half: true },
            Component::Sxx | Component::Syy | Component::Szz => StaggerLoc::CELL,
            Component::Sxy => StaggerLoc { x_half: true, y_half: true, z_half: false },
            Component::Sxz => StaggerLoc { x_half: true, y_half: false, z_half: true },
            Component::Syz => StaggerLoc { x_half: false, y_half: true, z_half: true },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_and_dense() {
        let mut seen = [false; 9];
        for c in Component::ALL {
            assert!(!seen[c.id()]);
            seen[c.id()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn velocities_offset_along_own_axis_only() {
        assert_eq!(Component::Vx.loc(), StaggerLoc { x_half: true, y_half: false, z_half: false });
        assert_eq!(Component::Vy.loc(), StaggerLoc { x_half: false, y_half: true, z_half: false });
        assert_eq!(Component::Vz.loc(), StaggerLoc { x_half: false, y_half: false, z_half: true });
    }

    #[test]
    fn normal_stresses_at_cell_centre() {
        for c in [Component::Sxx, Component::Syy, Component::Szz] {
            assert_eq!(c.loc(), StaggerLoc::CELL);
            assert!(!c.is_velocity());
        }
    }

    #[test]
    fn shear_stresses_offset_on_both_index_axes() {
        let l = Component::Sxy.loc();
        assert!(l.x_half && l.y_half && !l.z_half);
        let l = Component::Sxz.loc();
        assert!(l.x_half && !l.y_half && l.z_half);
        let l = Component::Syz.loc();
        assert!(!l.x_half && l.y_half && l.z_half);
    }

    #[test]
    fn coord_applies_half_offsets() {
        let l = Component::Vx.loc();
        assert_eq!(l.coord((2, 3, 4)), (2.5, 3.0, 4.0));
        assert_eq!(StaggerLoc::CELL.coord((1, 1, 1)), (1.0, 1.0, 1.0));
    }

    #[test]
    fn partitions_of_all() {
        assert_eq!(Component::VELOCITIES.len() + Component::STRESSES.len(), Component::ALL.len());
        for c in Component::VELOCITIES {
            assert!(c.is_velocity());
        }
        for c in Component::STRESSES {
            assert!(!c.is_velocity());
        }
    }
}
