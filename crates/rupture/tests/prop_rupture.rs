//! Property-based tests for the rupture substrate.

use awp_rupture::friction::SlipWeakening;
use awp_rupture::prestress::{FaultPrestress, PrestressConfig};
use proptest::prelude::*;

fn law() -> impl Strategy<Value = SlipWeakening> {
    (0.5f64..0.9, 0.1f64..0.5, 0.05f64..2.0, 0.0f64..5.0e6).prop_map(
        |(mu_s, mu_d, dc, cohesion)| SlipWeakening { mu_s, mu_d, dc, cohesion },
    )
}

proptest! {
    /// Friction interpolates monotonically between µs and µd, and the
    /// strength respects the same bounds for any compressive load.
    #[test]
    fn friction_bounds(f in law(), slip in 0.0f64..10.0, sn in 0.0f64..2.0e8) {
        let mu = f.mu(slip);
        prop_assert!(mu <= f.mu_s + 1e-12 && mu >= f.mu_d - 1e-12);
        let tau = f.strength(slip, sn);
        prop_assert!(tau >= f.residual_strength(sn) - 1e-6);
        prop_assert!(tau <= f.static_strength(sn) + 1e-6);
        prop_assert!(tau >= f.cohesion - 1e-9, "cohesion floor");
    }

    /// Weakening is non-increasing in slip.
    #[test]
    fn weakening_monotone(f in law(), s1 in 0.0f64..5.0, ds in 0.0f64..5.0) {
        prop_assert!(f.mu(s1 + ds) <= f.mu(s1) + 1e-12);
    }

    /// Fracture energy is non-negative and scales linearly with d_c.
    #[test]
    fn fracture_energy_scaling(f in law(), sn in 1.0e6f64..1.0e8) {
        let g = f.fracture_energy(sn);
        prop_assert!(g >= 0.0);
        let mut doubled = f;
        doubled.dc *= 2.0;
        prop_assert!((doubled.fracture_energy(sn) - 2.0 * g).abs() <= 1e-6 * g.max(1.0));
    }

    /// Prestress fields are admissible for any seed: τ0 within
    /// [0, failure], σn within [0, cap], dc positive, and the nucleation
    /// patch overstressed.
    #[test]
    fn prestress_admissible(seed in any::<u64>(), reload in 0.1f64..0.9, amp in 0.0f64..0.6) {
        let mut cfg = PrestressConfig::m8_like(48, 12, 1_000.0, seed);
        cfg.reload_mean = reload;
        cfg.reload_amp = amp;
        let ps = FaultPrestress::build(&cfg);
        for k in 0..12 {
            for i in 0..48 {
                let p = ps.idx(i, k);
                prop_assert!(ps.sigma_n[p] >= 0.0 && ps.sigma_n[p] <= cfg.sigma_n_max + 1.0);
                prop_assert!(ps.dc[p] > 0.0);
                let fail = ps.cohesion + ps.mu_s[p] * ps.sigma_n[p];
                // Outside the nucleation patch τ0 never exceeds failure.
                let dx = (i as f64 - cfg.hypo.0 as f64) * cfg.h;
                let dz = (k as f64 - cfg.hypo.1 as f64) * cfg.h;
                if (dx * dx + dz * dz).sqrt() > cfg.nucleation_radius {
                    prop_assert!(ps.tau0[p] <= fail + 1.0, "τ0 {} > fail {fail}", ps.tau0[p]);
                }
                prop_assert!(ps.tau0[p] >= 0.0);
            }
        }
        prop_assert!(ps.strength_excess(cfg.hypo.0, cfg.hypo.1) < 0.0);
    }
}
