//! Seismogram recording and surface-velocity capture.

use crate::state::WaveState;
use awp_grid::decomp::Subdomain;
use awp_grid::dims::Idx3;
use awp_grid::stagger::Component;
use serde::{Deserialize, Serialize};

/// A named recording site at a global grid cell (usually on the surface,
/// k = 0).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Station {
    pub name: String,
    pub idx: Idx3,
}

impl Station {
    pub fn new(name: impl Into<String>, idx: Idx3) -> Self {
        Self { name: name.into(), idx }
    }

    /// Physical position (metres) of the staggered node a recorded
    /// velocity component actually lives at. On the staggered grid the
    /// three velocities of "cell (i,j,k)" sit at three *different* points
    /// — `vx` at `((i+½)h, jh, kh)`, `vy` at `(ih, (j+½)h, kh)`, `vz` at
    /// `(ih, jh, (k+½)h)` — and a quantitative comparison against an
    /// analytic solution must evaluate the reference at the component's
    /// true node, not at the cell corner (the half-cell offset is a
    /// first-order position error otherwise, swamping a fourth-order
    /// scheme). Used by the `awp-verify` misfit extraction.
    pub fn component_position(&self, comp: Component, h: f64) -> [f64; 3] {
        let (x, y, z) = comp.loc().coord((self.idx.i, self.idx.j, self.idx.k));
        [x * h, y * h, z * h]
    }
}

/// A recorded three-component seismogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Seismogram {
    pub station: Station,
    pub dt: f64,
    pub vx: Vec<f64>,
    pub vy: Vec<f64>,
    pub vz: Vec<f64>,
}

impl Seismogram {
    /// Peak horizontal ground velocity, root-sum-of-squares measure (the
    /// paper's Fig. 21 PGVH).
    pub fn pgvh_rss(&self) -> f64 {
        self.vx
            .iter()
            .zip(&self.vy)
            .map(|(x, y)| x.hypot(*y))
            .fold(0.0, f64::max)
    }

    /// Geometric-mean PGVH (the Fig. 23 NGA measure).
    pub fn pgvh_geomean(&self) -> f64 {
        let px = self.vx.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let py = self.vy.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        (px * py).sqrt()
    }

    /// Physical time of sample `s` on the leapfrog-staggered axis.
    ///
    /// Sample `s` is recorded after step `s` completes, so it holds the
    /// half-step velocity `v^{s+½}` at `(s+½)·dt`. The injector, however,
    /// evaluates the moment-rate at `step·dt` when forming the stress
    /// increment centred at `(step+½)·dt` — the source history the scheme
    /// integrates runs `dt/2` behind the nominal one, delaying the whole
    /// field by `dt/2`. The two half-step offsets cancel: sample `s`
    /// corresponds to source-clock time `s·dt`. The `awp-verify` accuracy
    /// suite measures the exact residual offset with a sub-dt shift
    /// search; this helper provides the nominal axis.
    pub fn sample_time(&self, s: usize) -> f64 {
        s as f64 * self.dt
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.vx.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.vx.is_empty()
    }

    /// Horizontal component rotated to azimuth `theta` (radians from +x) —
    /// the paper plots N50W / N46E components.
    pub fn horizontal_component(&self, theta: f64) -> Vec<f64> {
        self.vx
            .iter()
            .zip(&self.vy)
            .map(|(x, y)| x * theta.cos() + y * theta.sin())
            .collect()
    }
}

/// Per-rank recorder: keeps only the stations inside this rank's
/// subdomain and appends one sample per step.
/// (station, local index, vx/vy/vz traces).
type StationSlot = (Station, Idx3, Vec<f64>, Vec<f64>, Vec<f64>);

#[derive(Debug, Clone)]
pub struct StationRecorder {
    dt: f64,
    slots: Vec<StationSlot>,
}

impl StationRecorder {
    pub fn new(stations: &[Station], sub: &Subdomain, dt: f64) -> Self {
        let slots = stations
            .iter()
            .filter_map(|st| sub.global_to_local(st.idx).map(|l| (st.clone(), l, vec![], vec![], vec![])))
            .collect();
        Self { dt, slots }
    }

    pub fn station_count(&self) -> usize {
        self.slots.len()
    }

    /// Sample the wavefield at every local station.
    pub fn record(&mut self, state: &WaveState) {
        for (_, l, vx, vy, vz) in &mut self.slots {
            let (i, j, k) = (l.i as isize, l.j as isize, l.k as isize);
            vx.push(state.vx.get(i, j, k) as f64);
            vy.push(state.vy.get(i, j, k) as f64);
            vz.push(state.vz.get(i, j, k) as f64);
        }
    }

    /// Finish and return the seismograms.
    pub fn into_seismograms(self) -> Vec<Seismogram> {
        self.slots
            .into_iter()
            .map(|(station, _, vx, vy, vz)| Seismogram { station, dt: self.dt, vx, vy, vz })
            .collect()
    }
}

/// Extract the decimated surface (k = 0) velocity field of a rank:
/// `(vx, vy, vz)` per surface cell, x-fastest, every `stride`-th cell —
/// M8 "saved the ground velocity vector … on an 80 m by 80 m grid" from a
/// 40 m mesh, i.e. stride 2.
pub fn surface_velocities(state: &WaveState, stride: usize) -> Vec<f32> {
    let d = state.dims;
    let stride = stride.max(1);
    let mut out = Vec::with_capacity(3 * d.nx.div_ceil(stride) * d.ny.div_ceil(stride));
    for j in (0..d.ny).step_by(stride) {
        for i in (0..d.nx).step_by(stride) {
            out.push(state.vx.get(i as isize, j as isize, 0));
            out.push(state.vy.get(i as isize, j as isize, 0));
            out.push(state.vz.get(i as isize, j as isize, 0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use awp_grid::decomp::Decomp3;
    use awp_grid::dims::Dims3;

    #[test]
    fn recorder_keeps_only_local_stations() {
        let dec = Decomp3::new(Dims3::new(8, 8, 4), [2, 1, 1]);
        let stations = vec![
            Station::new("west", Idx3::new(1, 1, 0)),
            Station::new("east", Idx3::new(6, 1, 0)),
        ];
        let r0 = StationRecorder::new(&stations, &dec.subdomain(0), 0.01);
        let r1 = StationRecorder::new(&stations, &dec.subdomain(1), 0.01);
        assert_eq!(r0.station_count(), 1);
        assert_eq!(r1.station_count(), 1);
    }

    #[test]
    fn record_appends_samples() {
        let dec = Decomp3::new(Dims3::new(4, 4, 4), [1, 1, 1]);
        let mut rec = StationRecorder::new(
            &[Station::new("s", Idx3::new(2, 2, 0))],
            &dec.subdomain(0),
            0.01,
        );
        let mut st = WaveState::new(Dims3::new(4, 4, 4), false);
        st.vx.set(2, 2, 0, 1.5);
        rec.record(&st);
        st.vx.set(2, 2, 0, -2.5);
        rec.record(&st);
        let seis = rec.into_seismograms();
        assert_eq!(seis[0].vx, vec![1.5, -2.5]);
        assert_eq!(seis[0].vy, vec![0.0, 0.0]);
    }

    #[test]
    fn pgvh_measures() {
        let s = Seismogram {
            station: Station::new("x", Idx3::new(0, 0, 0)),
            dt: 0.1,
            vx: vec![3.0, 0.0],
            vy: vec![4.0, 1.0],
            vz: vec![0.0, 0.0],
        };
        assert_eq!(s.pgvh_rss(), 5.0);
        assert!((s.pgvh_geomean() - (3.0f64 * 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rotated_component() {
        let s = Seismogram {
            station: Station::new("x", Idx3::new(0, 0, 0)),
            dt: 0.1,
            vx: vec![1.0],
            vy: vec![1.0],
            vz: vec![0.0],
        };
        let c45 = s.horizontal_component(std::f64::consts::FRAC_PI_4);
        assert!((c45[0] - 2.0f64.sqrt()).abs() < 1e-12);
        let c90 = s.horizontal_component(std::f64::consts::FRAC_PI_2);
        assert!((c90[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn component_positions_carry_staggered_offsets() {
        let st = Station::new("s", Idx3::new(2, 3, 4));
        let h = 10.0;
        assert_eq!(st.component_position(Component::Vx, h), [25.0, 30.0, 40.0]);
        assert_eq!(st.component_position(Component::Vy, h), [20.0, 35.0, 40.0]);
        assert_eq!(st.component_position(Component::Vz, h), [20.0, 30.0, 45.0]);
        // Normal stresses sit at the cell corner the index names.
        assert_eq!(st.component_position(Component::Sxx, h), [20.0, 30.0, 40.0]);
    }

    #[test]
    fn sample_time_axis() {
        let s = Seismogram {
            station: Station::new("x", Idx3::new(0, 0, 0)),
            dt: 0.25,
            vx: vec![0.0; 3],
            vy: vec![0.0; 3],
            vz: vec![0.0; 3],
        };
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.sample_time(0), 0.0);
        assert_eq!(s.sample_time(4), 1.0);
    }

    #[test]
    fn surface_capture_strides() {
        let d = Dims3::new(4, 4, 3);
        let mut st = WaveState::new(d, false);
        st.vx.set(0, 0, 0, 7.0);
        st.vx.set(2, 2, 0, 9.0);
        let full = surface_velocities(&st, 1);
        assert_eq!(full.len(), 3 * 16);
        assert_eq!(full[0], 7.0);
        let dec = surface_velocities(&st, 2);
        assert_eq!(dec.len(), 3 * 4);
        // (2,2) is the 4th strided cell → offset 3*3 = 9.
        assert_eq!(dec[9], 9.0);
    }
}
