//! `awp` — command-line front door to the AWP-ODC reproduction.
//!
//! ```text
//! awp scenarios                         list the milestone catalogue
//! awp run <name> [nx] [seconds]         run a scenario serially, print PGVs
//! awp workflow [name] [nx] [seconds]    run the full E2E workflow (4 ranks)
//! awp efficiency                        print the Eq. (8) M8 numbers
//! awp machines                          print the Table-1 registry
//! awp chaos --chaos-seed <n> [name]     seeded fault-injection soak: the
//!                                       chaos run must reproduce the clean
//!                                       run bit-for-bit or exit nonzero
//! awp analyze <trace.json>              causal critical-path profile of a
//!                                       Chrome trace written by --trace-out
//! awp serve [--smoke]                   ensemble hazard-query server
//!                                       (catalogs, cached scenario runs)
//! ```
//!
//! Telemetry flags (workflow runs; `awp --profile` alone runs a small
//! default workflow):
//!
//! ```text
//! --profile            print the cross-rank TelemetryReport after the solve
//! --trace-out FILE     write a Chrome trace-event JSON (open in Perfetto);
//!                      the trace is parsed back and validated before exit
//! ```

use awp_odc::perfmodel::machines::Machine;
use awp_odc::perfmodel::speedup::{efficiency, m8_mesh, m8_parts, speedup, ModelInput, PAPER_C};
use awp_odc::scenario::{RuptureDirection, Scenario};
use awp_odc::stats::{read_stream, validate_stream, StatsAddr, StatsServer};
use awp_odc::telemetry::{LiveStats, Registry};
use awp_odc::vcluster::fault::{FaultPlan, WatchdogConfig};
use awp_odc::vcluster::RetryPolicy;
use awp_odc::workflow::{scratch_dir, E2EWorkflow};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  awp scenarios\n  awp run <name> [nx] [seconds] [--lts]\n  awp workflow [name] [nx] [seconds] [--lts] [--sched] [--stats-addr A]\n               [--profile] [--trace-out FILE] [--health-every N]\n  awp verify [--smoke] [--lts] [--seeds N] [--base-seed S] [--out FILE]\n  awp stats --smoke | (<addr> | --stats-addr A) [--snapshots N]\n            connect to a live run's stats endpoint (TCP host:port or\n            unix:<path>), read the versioned hello + N snapshot lines,\n            schema-check them, and print the stream; --smoke self-tests\n            against an in-process scheduled workflow\n  awp analyze <trace.json> [--top N] [--json FILE]\n            reconstruct the cross-rank causal DAG from a Chrome trace\n            (written by --trace-out), walk the critical path, and print\n            the wall-clock attribution; --json writes a schema-checked\n            analyze.json artifact\n  awp serve [--addr A] [--root DIR]\n            run the ensemble hazard-query server (protocol awp-serve v1,\n            newline-delimited versioned JSON over TCP or unix:<path>):\n            catalog runs, cached scenario queries, hazard curves\n  awp serve --smoke\n            end-to-end self-test: in-process server + client, seeded\n            8-event catalog through the job queue, cache-hit check on a\n            repeated query, cold-store replay verified bit-exact\n  awp analyze --smoke [--json FILE]\n            self-test: trace an in-process 8-rank --lts workflow, analyze\n            it, and require the critical path to cover ≥ 90% of the wall\n            clock\n  awp efficiency\n  awp machines\n  awp chaos --chaos-seed <n> [name] [nx] [seconds]\n  awp chaos --recover [--fault crash|stall|both] [--chaos-seed <n>]\n            seeded rank-failure drill: the run must complete via in-flight\n            supervisor recovery (rollback-rejoin, no whole-run restart) and\n            stay bit-identical to the clean run, or exit nonzero\n  awp --profile [--trace-out FILE]      profiled default workflow\n\n--sched arms the work-stealing tile scheduler (workflow and chaos runs);\n--stats-addr serves live per-rank telemetry at A while the run is in\nflight (newline-delimited versioned JSON, protocol awp-stats v1);\n--health-every N scans the shell slabs for NaN/Inf every N steps and\naborts on the first non-finite velocity (0 = off, the default);\n--flight-dir DIR arms the crash flight recorder: on a rank fault or\ndegradation the supervisor dumps DIR/flightrec-<rank>.json with the last\nenvelopes and span tails for each rank\n\nscenario names: terashake-k | terashake-d | shakeout-k | shakeout-d |\n                wall-to-wall | m8 | pnw"
    );
    std::process::exit(2);
}

/// Validate a Chrome trace-event JSON string: it must parse, carry a
/// non-empty `traceEvents` array, and every event must have the fields
/// Perfetto needs (`name`/`ph`/`pid`, plus `ts`/`dur` on complete events).
/// Returns the number of complete ("X") span events.
fn validate_chrome_trace(trace: &str) -> Result<usize, String> {
    let v: serde_json::Value =
        serde_json::from_str(trace).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = v["traceEvents"]
        .as_array()
        .ok_or("traceEvents missing or not an array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev["ph"].as_str().ok_or(format!("event {i}: missing ph"))?;
        ev["name"].as_str().ok_or(format!("event {i}: missing name"))?;
        ev["pid"].as_f64().ok_or(format!("event {i}: missing pid"))?;
        if ph == "X" {
            ev["ts"].as_f64().ok_or(format!("event {i}: X event missing ts"))?;
            let dur = ev["dur"].as_f64().ok_or(format!("event {i}: X event missing dur"))?;
            if dur < 0.0 {
                return Err(format!("event {i}: negative dur"));
            }
            spans += 1;
        }
    }
    if spans == 0 {
        return Err("trace has metadata but no span events".into());
    }
    Ok(spans)
}

fn build_scenario(name: &str, nx: usize) -> Scenario {
    match name {
        "terashake-k" => Scenario::terashake_k(nx, RuptureDirection::SeToNw),
        "terashake-d" => Scenario::terashake_d(nx, 1992),
        "shakeout-k" => Scenario::shakeout_k(nx, 0.3),
        "shakeout-d" => Scenario::shakeout_d(nx, 7),
        "wall-to-wall" => Scenario::wall_to_wall(nx),
        "m8" => Scenario::m8(nx, 2010),
        "pnw" => Scenario::pacific_northwest(nx, 9.0),
        other => {
            eprintln!("unknown scenario '{other}'");
            usage()
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Telemetry flags may appear anywhere; strip them before the
    // subcommand dispatch so positional parsing stays simple.
    let mut profile = false;
    let mut trace_out: Option<PathBuf> = None;
    if let Some(i) = args.iter().position(|a| a == "--profile") {
        profile = true;
        args.remove(i);
    }
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        let path = args.get(i + 1).cloned().unwrap_or_else(|| usage());
        trace_out = Some(PathBuf::from(path));
        args.drain(i..=i + 1);
    }
    // Clustered local time stepping: valid on run/workflow (arms
    // `opts.lts`, a no-op ladder on media without ≥2 dt octaves) and on
    // verify (delegation-contract gate).
    let mut lts = false;
    if let Some(i) = args.iter().position(|a| a == "--lts") {
        lts = true;
        args.remove(i);
    }
    // Work-stealing tile scheduler (workflow/chaos solve passes) and the
    // live streaming-stats endpoint address.
    let mut sched = false;
    if let Some(i) = args.iter().position(|a| a == "--sched") {
        sched = true;
        args.remove(i);
    }
    let mut stats_addr: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--stats-addr") {
        let addr = args.get(i + 1).cloned().unwrap_or_else(|| usage());
        stats_addr = Some(addr);
        args.drain(i..=i + 1);
    }
    // Simulation-health sentinel cadence (0 = off) and the crash flight
    // recorder dump directory.
    let mut health_every: u64 = 0;
    if let Some(i) = args.iter().position(|a| a == "--health-every") {
        health_every = args
            .get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage());
        args.drain(i..=i + 1);
    }
    let mut flight_dir: Option<PathBuf> = None;
    if let Some(i) = args.iter().position(|a| a == "--flight-dir") {
        let dir = args.get(i + 1).cloned().unwrap_or_else(|| usage());
        flight_dir = Some(PathBuf::from(dir));
        args.drain(i..=i + 1);
    }
    let profiling = profile || trace_out.is_some();
    if args.is_empty() && profiling {
        // Bare `awp --profile [--trace-out f]`: profile a small default
        // workflow rather than erroring out.
        args = vec!["workflow".into(), "shakeout-k".into(), "24".into(), "15".into()];
    }
    match args.first().map(String::as_str) {
        Some("scenarios") => {
            println!("{:<14} {:>8} {:>10} {:>8}  description", "name", "box (km)", "fault (km)", "source");
            for name in
                ["terashake-k", "terashake-d", "shakeout-k", "shakeout-d", "wall-to-wall", "m8", "pnw"]
            {
                let sc = build_scenario(name, 48);
                println!(
                    "{:<14} {:>4.0}x{:<4.0} {:>10.0} {:>8}  {}",
                    name,
                    sc.length / 1e3,
                    sc.width / 1e3,
                    sc.trace().length() / 1e3,
                    match sc.source {
                        awp_odc::scenario::SourceSpec::Kinematic { .. } => "kinem.",
                        awp_odc::scenario::SourceSpec::Dynamic { .. } => "dynam.",
                    },
                    sc.description
                );
            }
        }
        Some("run") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let nx: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(96);
            let secs: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(60.0);
            let sc = build_scenario(name, nx).with_duration(secs);
            println!("{} — {}", sc.name, sc.description);
            let mut run = sc.prepare();
            if lts {
                run.cfg.opts.lts = Some(awp_solver::LtsOpts::new());
            }
            println!(
                "grid {:?} (h = {:.1} km), {} steps, source Mw {:.2}",
                run.cfg.dims,
                sc.h() / 1e3,
                run.cfg.steps,
                run.source.magnitude()
            );
            let rep = run.run_serial();
            println!(
                "done in {:.1} s ({:.2} Gflop/s); PGV max {:.2} m/s",
                rep.elapsed_s,
                rep.sustained_flops() / 1e9,
                rep.pgv.max()
            );
            println!("\ncity PGVH (m/s):");
            for s in &rep.seismograms {
                println!("  {:<18} {:>7.3}", s.station.name, s.pgvh_rss());
            }
            println!("\n{}", rep.pgv.to_ascii(90));
        }
        Some("workflow") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let nx: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(48);
            let secs: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(30.0);
            let sc = build_scenario(name, nx).with_duration(secs);
            let dir = scratch_dir("awp-cli");
            println!("{} → E2E workflow on 4 ranks (workdir {dir:?})", sc.name);
            let registry = profiling.then(|| Registry::new(4));
            let mut run = sc.prepare();
            if lts {
                run.cfg.opts.lts = Some(awp_solver::LtsOpts::new());
            }
            if sched {
                run.cfg.opts.sched = Some(awp_solver::SchedOpts::new());
            }
            run.cfg.opts.health_every = health_every;
            let mut wf = E2EWorkflow::new(run, [2, 2, 1], &dir);
            if let Some(fdir) = &flight_dir {
                wf = wf.with_flight_recorder(fdir.clone());
            }
            if let Some(reg) = &registry {
                wf = wf.with_telemetry(Arc::clone(reg));
                // A profiled run should show the checkpoint phase on every
                // rank's track. Epochs save when `done % every == 0 && done <
                // steps`, so a cadence of 4 still fires on the short smoke
                // runs (8 steps) used by final_verify.sh.
                wf.session.checkpoint_every = Some(4);
            }
            // Live streaming stats: serve the endpoint for the whole run;
            // clients connect with `awp stats --stats-addr <A>`.
            let live_srv = stats_addr.as_ref().map(|a| {
                let live = LiveStats::new(4);
                let srv = StatsServer::serve(
                    &StatsAddr::parse(a),
                    Arc::clone(&live),
                    Duration::from_millis(250),
                )
                .expect("stats endpoint bind failed");
                println!("live stats endpoint at {}", srv.local_addr());
                (live, srv)
            });
            if let Some((live, _)) = &live_srv {
                wf = wf.with_live_stats(Arc::clone(live));
            }
            let rep = wf.execute().expect("workflow failed");
            if let Some((_, srv)) = live_srv {
                srv.stop();
            }
            println!("{:<20} {:>9} {:>10} {:>9}", "stage", "seconds", "MB", "MB/s");
            for s in &rep.stages {
                println!(
                    "{:<20} {:>9.2} {:>10.2} {:>9.1}",
                    s.stage,
                    s.seconds,
                    s.bytes as f64 / 1e6,
                    s.mb_per_s()
                );
            }
            println!(
                "archive verified: {}; collection MD5 {}",
                rep.archive_verified, rep.collection_checksum
            );
            if let Some(reg) = &registry {
                if profile {
                    println!("\n{}", reg.report());
                }
                if let Some(path) = &trace_out {
                    let trace = reg.chrome_trace();
                    std::fs::write(path, &trace)
                        .unwrap_or_else(|e| panic!("writing {path:?} failed: {e}"));
                    // Self-validate: parse the emitted trace back before
                    // claiming success, so a malformed trace is a CLI
                    // failure, not a surprise inside Perfetto.
                    match validate_chrome_trace(&trace) {
                        Ok(spans) => println!("chrome trace → {} ({spans} span events)", path.display()),
                        Err(why) => {
                            eprintln!("INVALID chrome trace {}: {why}", path.display());
                            std::process::exit(1);
                        }
                    }
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
        Some("verify") => {
            let rest = &args[1..];
            let smoke = rest.iter().any(|a| a == "--smoke");
            let seeds = rest
                .iter()
                .position(|a| a == "--seeds")
                .map(|i| rest.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            let base_seed = rest
                .iter()
                .position(|a| a == "--base-seed")
                .map(|i| rest.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            let out = rest
                .iter()
                .position(|a| a == "--out")
                .map(|i| rest.get(i + 1).map(PathBuf::from).unwrap_or_else(|| usage()))
                .unwrap_or_else(|| PathBuf::from("results/verify.json"));
            let mode = if smoke { "smoke" } else { "full" };
            let lts_note = if lts { ", lts armed" } else { "" };
            println!("quantitative verification ({mode} mode{lts_note})\n");
            let report = awp_odc::verify::run(&awp_odc::verify::VerifySpec {
                smoke,
                seeds,
                base_seed,
                lts,
            });

            println!("{:<16} {:>10} {:>10} {:>10}  gate", "accuracy case", "worst L2", "worst env", "shift/dt");
            for c in &report.accuracy {
                println!(
                    "{:<16} {:>10.4} {:>10.4} {:>10.2}  {} (L2 ≤ {}, env ≤ {})",
                    c.case,
                    c.worst_l2,
                    c.worst_envelope,
                    c.worst_shift_dt,
                    if c.passed { "pass" } else { "FAIL" },
                    c.l2_tol,
                    c.env_tol,
                );
            }
            let conv = &report.convergence;
            let errs: Vec<String> =
                conv.levels.iter().map(|l| format!("{}³→{:.2e}", l.n, l.error)).collect();
            println!(
                "\nconvergence: order {:.2} in [{}, {}] → {}  ({})",
                conv.observed_order,
                conv.order_lo,
                conv.order_hi,
                if conv.passed { "pass" } else { "FAIL" },
                errs.join(", "),
            );
            let fz = &report.fuzz;
            println!(
                "schedule fuzz: {} seeds × {} ranks × {} steps, baseline {} → {}",
                fz.runs,
                fz.ranks,
                fz.steps,
                fz.baseline_fingerprint,
                if fz.passed {
                    "bit-exact".to_string()
                } else {
                    format!("MISMATCH at seeds {:?}", fz.mismatched_seeds)
                },
            );

            report.write(&out).unwrap_or_else(|e| panic!("writing {out:?} failed: {e}"));
            // Self-validate the emitted artifact, same discipline as the
            // Chrome-trace path: a malformed report is a CLI failure.
            let text = std::fs::read_to_string(&out)
                .unwrap_or_else(|e| panic!("reading back {out:?} failed: {e}"));
            match awp_odc::verify::report::validate_json(&text) {
                Ok(cases) => println!("\nreport → {} ({cases} accuracy cases)", out.display()),
                Err(why) => {
                    eprintln!("INVALID verify report {}: {why}", out.display());
                    std::process::exit(1);
                }
            }
            if !report.passed {
                eprintln!("\nVERIFICATION FAILED");
                std::process::exit(1);
            }
            println!("verification passed");
        }
        Some("stats") => {
            let rest = &args[1..];
            let smoke = rest.iter().any(|a| a == "--smoke");
            let snapshots: usize = rest
                .iter()
                .position(|a| a == "--snapshots")
                .map(|i| rest.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
                .unwrap_or(3);
            if smoke {
                // Self-test: serve an ephemeral endpoint, run a scheduled
                // workflow against it, and play the client ourselves — the
                // stream must carry ≥ 2 schema-valid versioned snapshots.
                let sc = build_scenario("shakeout-k", 24).with_duration(15.0);
                let mut run = sc.prepare();
                run.cfg.opts.sched = Some(awp_solver::SchedOpts::new());
                let live = LiveStats::new(4);
                let srv = StatsServer::serve(
                    &StatsAddr::parse("127.0.0.1:0"),
                    Arc::clone(&live),
                    Duration::from_millis(50),
                )
                .expect("stats endpoint bind failed");
                let addr = srv.local_addr().clone();
                println!("stats smoke: endpoint {addr}, scheduled shakeout-k workflow");
                let want = snapshots.max(2);
                let reader = std::thread::spawn(move || {
                    read_stream(&addr, want, Duration::from_secs(30))
                });
                let dir = scratch_dir("awp-stats-smoke");
                let wf = E2EWorkflow::new(run, [2, 2, 1], &dir)
                    .with_live_stats(Arc::clone(&live));
                let rep = wf.execute().expect("stats smoke workflow failed");
                let lines = reader
                    .join()
                    .expect("stats client thread panicked")
                    .expect("stats client read failed");
                srv.stop();
                let _ = std::fs::remove_dir_all(&dir);
                match validate_stream(&lines) {
                    Ok((ranks, snaps)) if snaps >= 2 => println!(
                        "stats smoke passed: {ranks} ranks, {snaps} schema-valid snapshots \
                         (archive verified: {})",
                        rep.archive_verified
                    ),
                    Ok((_, snaps)) => {
                        eprintln!("STATS SMOKE FAILED: only {snaps} snapshots streamed");
                        std::process::exit(1);
                    }
                    Err(why) => {
                        eprintln!("STATS SMOKE FAILED: {why}");
                        std::process::exit(1);
                    }
                }
            } else {
                let addr = stats_addr
                    .clone()
                    .or_else(|| {
                        rest.iter().find(|a| !a.starts_with("--")).cloned()
                    })
                    .unwrap_or_else(|| usage());
                let addr = StatsAddr::parse(&addr);
                let lines = read_stream(&addr, snapshots, Duration::from_secs(10))
                    .unwrap_or_else(|e| {
                        eprintln!("connecting to {addr} failed: {e}");
                        std::process::exit(1);
                    });
                match validate_stream(&lines) {
                    Ok((ranks, snaps)) => {
                        println!("# {addr}: {ranks} ranks, {snaps} snapshots (awp-stats v1)");
                        for l in &lines {
                            println!("{l}");
                        }
                    }
                    Err(why) => {
                        eprintln!("INVALID stats stream from {addr}: {why}");
                        std::process::exit(1);
                    }
                }
            }
        }
        Some("serve") => {
            // Ensemble engine + hazard-query server (protocol awp-serve v1,
            // same newline-JSON discipline as awp-stats).
            let rest = &args[1..];
            if rest.iter().any(|a| a == "--smoke") {
                if let Err(why) = awp_ensemble::serve::smoke() {
                    eprintln!("SERVE SMOKE FAILED: {why}");
                    std::process::exit(1);
                }
            } else {
                let root = rest
                    .iter()
                    .position(|a| a == "--root")
                    .map(|i| rest.get(i + 1).cloned().unwrap_or_else(|| usage()))
                    .unwrap_or_else(|| "awp-ensemble".to_string());
                let addr = rest
                    .iter()
                    .position(|a| a == "--addr")
                    .map(|i| rest.get(i + 1).cloned().unwrap_or_else(|| usage()))
                    .unwrap_or_else(|| "127.0.0.1:7075".to_string());
                let engine = awp_ensemble::EnsembleEngine::open(&root, [2, 2, 1])
                    .expect("ensemble root open failed");
                let srv =
                    awp_ensemble::ServeServer::serve(&StatsAddr::parse(&addr), engine)
                        .expect("serve endpoint bind failed");
                println!(
                    "awp-serve v1 listening at {} (results root {root}); Ctrl-C to stop",
                    srv.local_addr()
                );
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
        }
        Some("analyze") => {
            use awp_odc::analyze::{parse_trace, render, to_json, validate_json};
            let rest = &args[1..];
            let smoke = rest.iter().any(|a| a == "--smoke");
            let top: usize = rest
                .iter()
                .position(|a| a == "--top")
                .map(|i| rest.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()))
                .unwrap_or(5);
            let json_out = rest
                .iter()
                .position(|a| a == "--json")
                .map(|i| rest.get(i + 1).map(PathBuf::from).unwrap_or_else(|| usage()));
            let trace = if smoke {
                // Self-test: trace an in-process 8-rank clustered-LTS
                // workflow and analyze our own artifact — the causal DAG
                // gate (≥ 90% wall-clock coverage) runs below.
                let sc = build_scenario("shakeout-k", 24).with_duration(15.0);
                let mut run = sc.prepare();
                run.cfg.opts.lts = Some(awp_solver::LtsOpts::new());
                run.cfg.opts.health_every = health_every;
                println!("analyze smoke: 8-rank --lts {} workflow, tracing armed", sc.name);
                let registry = Registry::new(8);
                let dir = scratch_dir("awp-analyze-smoke");
                // LTS clusters are z-slabs, so the 8-rank decomposition
                // keeps a single z part.
                let mut wf = E2EWorkflow::new(run, [4, 2, 1], &dir)
                    .with_telemetry(Arc::clone(&registry));
                wf.session.checkpoint_every = Some(4);
                let rep = wf.execute().expect("analyze smoke workflow failed");
                let _ = std::fs::remove_dir_all(&dir);
                println!("workflow done (archive verified: {})", rep.archive_verified);
                registry.chrome_trace()
            } else {
                let path = rest
                    .iter()
                    .find(|a| !a.starts_with("--"))
                    .map(PathBuf::from)
                    .unwrap_or_else(|| usage());
                std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("reading {path:?} failed: {e}"))
            };
            let graph = parse_trace(&trace).unwrap_or_else(|why| {
                eprintln!("INVALID trace: {why}");
                std::process::exit(1);
            });
            let path = graph.critical_path();
            println!("{}", render(&graph, &path, top));
            let json_out = json_out
                .or_else(|| smoke.then(|| PathBuf::from("results/analyze.json")));
            if let Some(out) = json_out {
                if let Some(parent) = out.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                let doc = to_json(&graph, &path);
                std::fs::write(&out, &doc)
                    .unwrap_or_else(|e| panic!("writing {out:?} failed: {e}"));
                // Self-validate before claiming success, same discipline
                // as the verify-report and Chrome-trace paths.
                match validate_json(&doc) {
                    Ok(()) => println!("analysis → {}", out.display()),
                    Err(why) => {
                        eprintln!("INVALID analyze report {}: {why}", out.display());
                        std::process::exit(1);
                    }
                }
            }
            if smoke {
                let cov = path.coverage();
                if cov < 0.90 {
                    eprintln!(
                        "ANALYZE SMOKE FAILED: critical path covers {:.1}% of wall clock (< 90%)",
                        cov * 100.0
                    );
                    std::process::exit(1);
                }
                println!(
                    "analyze smoke passed: {} hops cover {:.1}% of wall clock \
                     ({} edges, {} unmatched recvs)",
                    path.hops.len(),
                    cov * 100.0,
                    graph.edges.len(),
                    graph.unmatched_recvs
                );
            }
        }
        Some("efficiency") => {
            let inp = ModelInput {
                n: m8_mesh(),
                parts: m8_parts(),
                machine: Machine::Jaguar.profile(),
                c: PAPER_C,
            };
            println!(
                "M8 on 223,074 Jaguar cores (Eq. 8): speedup {:.4e}, efficiency {:.1}%",
                speedup(&inp),
                efficiency(&inp) * 100.0
            );
            println!("paper §V.A: 2.20e5 / 98.6%");
        }
        Some("chaos") => {
            // Flag-style seed so the verify script reads naturally:
            // `awp chaos --chaos-seed 3405691582 shakeout-k`.
            let mut rest: Vec<&str> = args[1..].iter().map(String::as_str).collect();
            let mut seed: u64 = 0xC4A0_5EED;
            if let Some(i) = rest.iter().position(|a| *a == "--chaos-seed") {
                seed = rest
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                rest.drain(i..=i + 1);
            }
            let mut recover = false;
            if let Some(i) = rest.iter().position(|a| *a == "--recover") {
                recover = true;
                rest.remove(i);
            }
            let mut fault_mode = "crash";
            if let Some(i) = rest.iter().position(|a| *a == "--fault") {
                fault_mode = rest.get(i + 1).copied().unwrap_or_else(|| usage());
                if !matches!(fault_mode, "crash" | "stall" | "both") {
                    usage();
                }
                rest.drain(i..=i + 1);
            }
            let name = rest.first().copied().unwrap_or("shakeout-k");
            let nx: usize = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
            let secs: f64 = rest.get(2).and_then(|s| s.parse().ok()).unwrap_or(20.0);
            let sc = build_scenario(name, nx).with_duration(secs);

            let clean_dir = scratch_dir("awp-chaos-clean");
            let rep_clean = E2EWorkflow::new(sc.prepare(), [2, 1, 1], &clean_dir)
                .execute()
                .expect("clean reference run failed");

            if recover {
                // Recovery drill: a directed single-rank failure must be
                // absorbed *in flight* — supervisor rollback to the last
                // MD5-consistent epoch and respawn, costing one epoch of
                // rework — with zero whole-run restarts and a bit-exact
                // surface. Crash step 5 / stall step 6 sit just past the
                // first checkpoint epoch (cadence 4), so a rollback line
                // always exists.
                let mut run = sc.prepare();
                if sched {
                    // The drill run steals tiles; the clean reference does
                    // not — the bit-exact gate below covers both axes.
                    run.cfg.opts.sched = Some(awp_solver::SchedOpts::new());
                }
                run.cfg.opts.health_every = health_every;
                let mut plan = FaultPlan::new(seed);
                if matches!(fault_mode, "crash" | "both") {
                    plan = plan.with_crash(1, 5);
                }
                if matches!(fault_mode, "stall" | "both") {
                    plan = plan.with_stall(0, 6, 3600.0);
                }
                let plan = Arc::new(plan);
                println!(
                    "{} → recovery drill ({fault_mode}), seed {seed:#x}, schedule: {}",
                    sc.name,
                    plan.schedule_digest()
                );
                let drill_dir = scratch_dir("awp-chaos-recover");
                let registry = profiling.then(|| Registry::new(2));
                let mut wf = E2EWorkflow::new(run, [2, 1, 1], &drill_dir);
                if let Some(fdir) = &flight_dir {
                    wf = wf.with_flight_recorder(fdir.clone());
                }
                wf.session.checkpoint_every = Some(4);
                wf = wf
                    .with_chaos(
                        plan,
                        WatchdogConfig {
                            timeout: Duration::from_secs(2),
                            poll: Duration::from_millis(50),
                        },
                    )
                    .with_recovery(RetryPolicy::new(3).with_jitter(0.25, seed));
                if let Some(reg) = &registry {
                    wf = wf.with_telemetry(Arc::clone(reg));
                }
                let rep = wf.execute().expect("recovery drill failed to converge");
                for f in &rep.faults {
                    println!("  recovered: {f}");
                }
                println!(
                    "  in-flight recoveries: {}; whole-run restarts: {}; degraded: {}; \
                     dead letters: {} drained / {} retained",
                    rep.in_flight_recoveries,
                    rep.restarts,
                    rep.recovery_degraded,
                    rep.dead_letters.total,
                    rep.dead_letters.retained,
                );
                if let Some(reg) = &registry {
                    if profile {
                        println!("\n{}", reg.report());
                    }
                }
                let clean_md5 = awp_odc::pario::Md5::digest_hex(
                    &std::fs::read(&rep_clean.surface_file).unwrap(),
                );
                let drill_md5 =
                    awp_odc::pario::Md5::digest_hex(&std::fs::read(&rep.surface_file).unwrap());
                let pgv_ok = rep_clean.pgv.data == rep.pgv.data;
                let _ = std::fs::remove_dir_all(&clean_dir);
                let _ = std::fs::remove_dir_all(&drill_dir);
                let recovered_in_flight = rep.in_flight_recoveries >= 1
                    && rep.restarts == 0
                    && !rep.recovery_degraded;
                if recovered_in_flight && pgv_ok && clean_md5 == drill_md5 {
                    println!(
                        "recovery drill passed: in-flight recovery, bit-identical surface \
                         (MD5 {clean_md5})"
                    );
                } else {
                    eprintln!(
                        "RECOVERY DRILL FAILED: in_flight={} restarts={} degraded={} \
                         pgv_ok={pgv_ok} clean_md5={clean_md5} drill_md5={drill_md5}",
                        rep.in_flight_recoveries, rep.restarts, rep.recovery_degraded,
                    );
                    std::process::exit(1);
                }
                return;
            }

            let mut run = sc.prepare();
            if sched {
                run.cfg.opts.sched = Some(awp_solver::SchedOpts::new());
            }
            run.cfg.opts.health_every = health_every;
            let steps = run.cfg.steps as u64;
            let plan = Arc::new(FaultPlan::random(seed, 2, steps));
            println!(
                "{} → chaos soak, seed {seed:#x}, schedule: {}",
                sc.name,
                plan.schedule_digest()
            );
            let chaos_dir = scratch_dir("awp-chaos");
            let mut wf = E2EWorkflow::new(run, [2, 1, 1], &chaos_dir);
            if let Some(fdir) = &flight_dir {
                wf = wf.with_flight_recorder(fdir.clone());
            }
            wf.session.checkpoint_every = Some(4);
            wf.session.max_restarts = 6;
            wf = wf.with_chaos(
                plan,
                WatchdogConfig {
                    timeout: Duration::from_secs(5),
                    poll: Duration::from_millis(50),
                },
            );
            let rep = wf.execute().expect("chaos run failed to converge");
            for f in &rep.faults {
                println!("  injected: {f}");
            }
            println!("  restarts: {}", rep.restarts);

            let clean_md5 =
                awp_odc::pario::Md5::digest_hex(&std::fs::read(&rep_clean.surface_file).unwrap());
            let chaos_md5 =
                awp_odc::pario::Md5::digest_hex(&std::fs::read(&rep.surface_file).unwrap());
            let pgv_ok = rep_clean.pgv.data == rep.pgv.data;
            let _ = std::fs::remove_dir_all(&clean_dir);
            let _ = std::fs::remove_dir_all(&chaos_dir);
            if pgv_ok && clean_md5 == chaos_md5 {
                println!("chaos run bit-identical to clean run (surface MD5 {clean_md5})");
            } else {
                eprintln!(
                    "MISMATCH: pgv_ok={pgv_ok} clean_md5={clean_md5} chaos_md5={chaos_md5}"
                );
                std::process::exit(1);
            }
        }
        Some("machines") => {
            for m in Machine::ALL {
                let p = m.profile();
                println!(
                    "{:<10} {:<22} {:>7} cores {:>6.1} Gf/core  α={:.1e} β={:.1e}",
                    p.name, p.interconnect, p.cores_used, p.peak_gflops, p.alpha, p.beta
                );
            }
        }
        _ => usage(),
    }
}
