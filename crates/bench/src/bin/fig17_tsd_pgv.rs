//! Fig. 17: TeraShake-D PGVs — the dynamic source's less coherent
//! wavefield reduces the largest peak motions relative to TS-K by factors
//! of 2–3, with 'star-burst' rays of elevated PGV radiating from the
//! fault.

use awp_bench::{save_record, section};
use awp_odc::scenario::{RuptureDirection, Scenario};
use serde_json::json;

fn main() {
    section("Fig. 17 — TeraShake-D vs TeraShake-K PGV");
    let nx = 108;
    let dur = 100.0;
    println!("running TS-K ...");
    let tsk = Scenario::terashake_k(nx, RuptureDirection::SeToNw)
        .with_duration(dur)
        .prepare();
    let tsk_mw = tsk.source.magnitude();
    let k = tsk.run_serial();
    println!("running TS-D ...");
    let tsd_run = Scenario::terashake_d(nx, 1992).with_duration(dur).prepare();
    // Match moments so the comparison isolates source complexity (the
    // paper's TS-D sources have "average slip … nearly the same" as TS-K).
    let mut tsd = tsd_run;
    let factor =
        awp_source::moment::moment_of_magnitude(tsk_mw) / tsd.source.total_moment();
    tsd.source.scale_moment(factor);
    let d = tsd.run_serial();

    println!("\nPGV statistics (m/s):");
    println!("{:<12} {:>10} {:>10}", "", "TS-K", "TS-D");
    println!("{:<12} {:>10.3} {:>10.3}", "max", k.pgv.max(), d.pgv.max());
    println!("{:<12} {:>10.4} {:>10.4}", "mean", k.pgv.mean(), d.pgv.mean());
    let reduction = k.pgv.max() / d.pgv.max();
    println!(
        "\npeak reduction factor TS-K/TS-D = {reduction:.2} (paper: 'decreases the largest\n\
         peak ground motions … by factors of 2-3')"
    );

    // Star-burst proxy: the dynamic map's azimuthal PGV variance along a
    // ring around the fault should exceed the kinematic one's.
    let ring_cv = |rep: &awp_odc::scenario::ScenarioReport| {
        let (cx, cy) = (0.6 * 600_000.0, 0.5 * 300_000.0);
        let r = 60_000.0;
        let mut vals = Vec::new();
        for a in 0..36 {
            let th = a as f64 * std::f64::consts::PI / 18.0;
            let v = rep.pgv.at_position(cx + r * th.cos(), cy + r * th.sin());
            if v > 0.0 {
                vals.push(v.ln());
            }
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64).sqrt()
    };
    let cv_k = ring_cv(&k);
    let cv_d = ring_cv(&d);
    println!(
        "azimuthal ln-PGV scatter on a 60 km ring: TS-K {cv_k:.2}, TS-D {cv_d:.2}\n\
         (the 'star-burst' pattern raises the dynamic run's azimuthal variability)"
    );

    println!("\nTS-D PGV map:");
    println!("{}", d.pgv.to_ascii(90));

    save_record(
        "fig17",
        "TS-D PGV vs TS-K (paper Fig. 17)",
        json!({
            "tsk_pgv_max": k.pgv.max(),
            "tsd_pgv_max": d.pgv.max(),
            "peak_reduction_factor": reduction,
            "ring_scatter_tsk": cv_k,
            "ring_scatter_tsd": cv_d,
        }),
    );
}
