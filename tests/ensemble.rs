//! Ensemble engine pins: canonical scenario-hash determinism (property
//! tested and golden-pinned), the persistent job queue under concurrency
//! and cancellation, shared-mesh reuse safety, and bit-exactness of
//! engine runs against solo workflow runs — including one composed with
//! the PR 5 schedule fuzzer.

use awp_ensemble::catalog::{generate_catalog, CatalogConfig};
use awp_ensemble::engine::{EnsembleEngine, RunOutcome};
use awp_ensemble::queue::{JobOutcome, JobQueue, JobState};
use awp_ensemble::spec::ScenarioSpec;
use awp_odc::workflow::WorkflowSession;
use awp_vcluster::schedule::SchedulePlan;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("awp-ens-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A random-but-valid spec from primitive draws.
#[allow(clippy::too_many_arguments)]
fn spec_from(
    family_pick: u8,
    mw: f64,
    hypo: f64,
    vr: f64,
    rise: f64,
    seed: u64,
    amp: f64,
    flags: u8,
) -> ScenarioSpec {
    let family = ["shakeout-k", "terashake-k", "w2w"][family_pick as usize % 3];
    let mut s = ScenarioSpec::new(family, 16).unwrap();
    s.duration_s = 20.0;
    s.mw = mw;
    s.hypo_frac = hypo;
    s.vr = vr;
    s.rise_time = rise;
    s.cvm_seed = seed % (1 << 40); // stays JSON-number safe
    s.cvm_amp = amp;
    s.lts = flags & 1 != 0;
    s.sched = flags & 2 != 0;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same physics → same hash, regardless of construction path: a spec
    /// and its JSON round trip (and a key-shuffled JSON encoding) agree.
    #[test]
    fn hash_is_invariant_to_construction_path(
        family_pick in 0u8..3,
        mw in 6.0f64..8.5,
        hypo in 0.0f64..1.0,
        vr in 2000.0f64..3500.0,
        rise in 0.5f64..4.0,
        seed in 0u64..u64::MAX,
        amp in 0.0f64..0.2,
        flags in 0u8..4,
    ) {
        let spec = spec_from(family_pick, mw, hypo, vr, rise, seed, amp, flags);
        let h = spec.hash().unwrap();
        prop_assert_eq!(&h, &spec.hash().unwrap(), "hashing must be pure");

        // JSON round trip in the emitted field order.
        let back = ScenarioSpec::from_value(
            &serde_json::from_str(&spec.to_json().to_string()).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(&h, &back.hash().unwrap());

        // The same object with keys emitted in a different order.
        let shuffled = format!(
            r#"{{"sched":{},"lts":{},"cvm_amp":{},"cvm_seed":{},"rise_time":{},
                "vr":{},"hypo_frac":{},"mw":{},"duration_s":{},"nx":{},"family":"{}"}}"#,
            spec.sched,
            spec.lts,
            spec.cvm_amp,
            spec.cvm_seed,
            spec.rise_time,
            spec.vr,
            spec.hypo_frac,
            spec.mw,
            spec.duration_s,
            spec.nx,
            spec.family,
        );
        let back2 =
            ScenarioSpec::from_value(&serde_json::from_str(&shuffled).unwrap()).unwrap();
        prop_assert_eq!(&h, &back2.hash().unwrap(), "field order must not matter");
    }

    /// Every physical field is load-bearing: perturbing any one of them
    /// produces a different hash (no two distinct scenarios collide into
    /// one cache slot).
    #[test]
    fn every_field_perturbation_changes_hash(
        family_pick in 0u8..3,
        mw in 6.0f64..8.4,
        hypo in 0.01f64..0.99,
        vr in 2000.0f64..3400.0,
        rise in 0.5f64..3.9,
        seed in 0u64..(1u64 << 39),
        amp in 0.001f64..0.19,
        flags in 0u8..4,
    ) {
        let base = spec_from(family_pick, mw, hypo, vr, rise, seed, amp, flags);
        let h0 = base.hash().unwrap();
        let variants: Vec<(&str, ScenarioSpec)> = vec![
            ("family", {
                let mut s = base.clone();
                s.family = if s.family == "w2w" { "shakeout-k".into() } else { "w2w".into() };
                s
            }),
            ("nx", { let mut s = base.clone(); s.nx += 4; s }),
            ("duration_s", { let mut s = base.clone(); s.duration_s += 1.0; s }),
            ("mw", { let mut s = base.clone(); s.mw += 0.01; s }),
            ("hypo_frac", { let mut s = base.clone(); s.hypo_frac += 0.005; s }),
            ("vr", { let mut s = base.clone(); s.vr += 10.0; s }),
            ("rise_time", { let mut s = base.clone(); s.rise_time += 0.05; s }),
            ("cvm_seed", { let mut s = base.clone(); s.cvm_seed += 1; s }),
            ("cvm_amp", { let mut s = base.clone(); s.cvm_amp += 0.001; s }),
            ("lts", { let mut s = base.clone(); s.lts = !s.lts; s }),
            ("sched", { let mut s = base.clone(); s.sched = !s.sched; s }),
        ];
        for (field, v) in variants {
            prop_assert_ne!(
                &h0,
                &v.hash().unwrap(),
                "perturbing {} must change the content address",
                field
            );
        }
    }
}

/// The golden pin: this exact spec hashed to this exact address when the
/// v1 canonicalization was frozen. If this test fails, the canonical form
/// changed and every existing store on disk silently invalidates — bump
/// the magic to `awp-scenario v2` instead of editing the pin.
#[test]
fn golden_hash_is_pinned() {
    let mut spec = ScenarioSpec::new("shakeout-k", 16).unwrap();
    spec.duration_s = 20.0;
    spec.mw = 7.25;
    spec.hypo_frac = 0.5;
    spec.vr = 3000.0;
    spec.rise_time = 2.0;
    spec.cvm_seed = 11;
    spec.cvm_amp = 0.04;
    assert_eq!(
        spec.canonical().unwrap().lines().next().unwrap(),
        "awp-scenario v1"
    );
    assert_eq!(
        spec.hash().unwrap(),
        "bcb3d7a15b569bc53dac2c00764cbc28",
        "canonical hash drifted: stored results keyed by v1 addresses \
         would be orphaned"
    );
}

// ---------------------------------------------------------------------------
// Queue concurrency suite.
// ---------------------------------------------------------------------------

fn small_spec(mw_milli: u64) -> ScenarioSpec {
    let mut s = ScenarioSpec::new("shakeout-k", 16).unwrap();
    s.duration_s = 20.0;
    s.mw = 6.5 + mw_milli as f64 / 1000.0;
    s
}

/// Claims observed one at a time (the claim itself serialises on the
/// queue mutex) must come out in strict priority-desc, FIFO-within-
/// priority order even when four threads race for them.
#[test]
fn contended_claims_respect_priority_order() {
    let dir = tmp_dir("contend");
    let q = Arc::new(JobQueue::open(&dir).unwrap());
    let mut expect: Vec<(i32, u64)> = Vec::new();
    for i in 0..24u64 {
        let priority = (i % 5) as i32;
        let id = q.submit(small_spec(i), priority).unwrap();
        expect.push((priority, id));
    }
    // Highest priority first, FIFO (ascending id) within a priority.
    expect.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let order: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let q = Arc::clone(&q);
        let order = Arc::clone(&order);
        handles.push(std::thread::spawn(move || loop {
            // Hold the recording lock across the claim so the observed
            // sequence is exactly the claim sequence.
            let mut rec = order.lock().unwrap();
            match q.claim().unwrap() {
                Some(c) => {
                    rec.push(c.job.id);
                    drop(rec);
                    q.complete(c.job.id, JobOutcome::Done { hash: "t".into() }).unwrap();
                }
                None => break,
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let got = order.lock().unwrap().clone();
    let want: Vec<u64> = expect.iter().map(|(_, id)| *id).collect();
    assert_eq!(got, want, "contended claim order must follow priority then FIFO");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Free-for-all drain: no job is lost, none is claimed twice.
#[test]
fn concurrent_drain_loses_and_duplicates_nothing() {
    let dir = tmp_dir("drain-raw");
    let q = Arc::new(JobQueue::open(&dir).unwrap());
    let n = 40u64;
    for i in 0..n {
        q.submit(small_spec(i), (i % 3) as i32).unwrap();
    }
    let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for _ in 0..6 {
        let q = Arc::clone(&q);
        let seen = Arc::clone(&seen);
        handles.push(std::thread::spawn(move || {
            while let Some(c) = q.claim().unwrap() {
                seen.lock().unwrap().push(c.job.id);
                q.complete(c.job.id, JobOutcome::Done { hash: format!("h{}", c.job.id) })
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut got = seen.lock().unwrap().clone();
    got.sort_unstable();
    let dedup_len = { let mut d = got.clone(); d.dedup(); d.len() };
    assert_eq!(got.len() as u64, n, "every job claimed");
    assert_eq!(dedup_len as u64, n, "no job claimed twice");
    for j in q.jobs() {
        assert_eq!(j.state, JobState::Done);
        assert_eq!(j.result_hash.as_deref(), Some(format!("h{}", j.id).as_str()));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Queued jobs cancel terminally; in-flight jobs cancel cooperatively via
/// the claim token while workers are actually running.
#[test]
fn cancellation_hits_queued_and_in_flight_jobs() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;
    let dir = tmp_dir("cancel-flight");
    let q = Arc::new(JobQueue::open(&dir).unwrap());
    let a = q.submit(small_spec(1), 5).unwrap(); // will run & be cancelled in flight
    let b = q.submit(small_spec(2), 1).unwrap(); // cancelled while queued
    let c = q.submit(small_spec(3), 1).unwrap(); // runs to completion

    assert!(q.cancel(b).unwrap(), "queued job cancels immediately");

    let running = Arc::new(AtomicU64::new(0));
    let worker = {
        let q = Arc::clone(&q);
        let running = Arc::clone(&running);
        std::thread::spawn(move || {
            while let Some(claim) = q.claim().unwrap() {
                running.store(claim.job.id, Ordering::Release);
                // Simulated solve: poll the token like the engine does.
                let mut polls = 0;
                let outcome = loop {
                    if claim.token.is_cancelled() {
                        break JobOutcome::Cancelled;
                    }
                    polls += 1;
                    if polls > 200 {
                        break JobOutcome::Done { hash: "done".into() };
                    }
                    std::thread::sleep(Duration::from_millis(1));
                };
                q.complete(claim.job.id, outcome).unwrap();
            }
        })
    };
    // Wait until the worker has claimed the high-priority job, then cancel
    // it mid-flight.
    while running.load(std::sync::atomic::Ordering::Acquire) != a {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(q.cancel(a).unwrap(), "running job cancels via its token");
    worker.join().unwrap();

    let by_id = |id: u64| q.jobs().into_iter().find(|j| j.id == id).unwrap();
    assert_eq!(by_id(a).state, JobState::Cancelled, "in-flight cancel observed");
    assert_eq!(by_id(b).state, JobState::Cancelled, "queued cancel is terminal");
    assert_eq!(by_id(c).state, JobState::Done, "untouched job still completes");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Engine: catalog drain, cache behaviour, fuzzer-composed bit-exactness,
// shared-mesh reuse safety.
// ---------------------------------------------------------------------------

/// Four workers drain a seeded catalog: every event lands in the store
/// exactly once, and resubmitting the same catalog is pure cache hits.
#[test]
fn engine_drains_catalog_without_losing_results() {
    use std::sync::atomic::Ordering;
    let root = tmp_dir("engine-drain");
    let engine = EnsembleEngine::open(&root, [2, 1, 1]).unwrap();
    let events = generate_catalog(&CatalogConfig::demo(97, 6, 16, 20.0)).unwrap();
    let ids = engine.submit_catalog(&events).unwrap();
    engine.drain(4).unwrap();

    let jobs = engine.queue.jobs();
    assert_eq!(jobs.len(), 6);
    for id in &ids {
        let j = jobs.iter().find(|j| j.id == *id).unwrap();
        assert_eq!(j.state, JobState::Done, "job {id} must complete");
        let hash = j.result_hash.as_ref().expect("done job carries its hash");
        assert!(engine.store.contains(hash), "result {hash} published");
        engine.store.verify(hash).unwrap();
    }
    let mut unique: Vec<String> =
        jobs.iter().filter_map(|j| j.result_hash.clone()).collect();
    unique.sort();
    unique.dedup();
    assert_eq!(engine.store.list().unwrap().len(), unique.len(), "store == results");
    assert_eq!(engine.stats.jobs_done.load(Ordering::Relaxed), 6);

    // Same catalog again: nothing recomputes.
    let misses_before = engine.stats.cache_misses.load(Ordering::Relaxed);
    engine.submit_catalog(&events).unwrap();
    engine.drain(4).unwrap();
    assert_eq!(
        engine.stats.cache_misses.load(Ordering::Relaxed),
        misses_before,
        "resubmitted catalog must be served from the store"
    );
    assert!(engine.stats.cache_hits.load(Ordering::Relaxed) >= 6);
    let _ = std::fs::remove_dir_all(&root);
}

/// ISSUE satellite: compose an engine run with the PR 5 schedule fuzzer
/// and pin per-scenario outputs bit-exact against a solo (fuzzer-free)
/// run — delayed/reordered messaging must never leak into the physics.
#[test]
fn fuzzer_composed_engine_runs_stay_bit_exact() {
    let spec = small_spec(250);
    let hash = spec.hash().unwrap();

    let root_a = tmp_dir("fuzzed");
    let fuzzed_session =
        WorkflowSession::new([2, 1, 1]).with_schedule(SchedulePlan::new(0xF00D));
    let fuzzed = EnsembleEngine::open_with_session(&root_a, fuzzed_session).unwrap();
    assert!(matches!(fuzzed.run_spec(&spec, None).unwrap(), RunOutcome::Computed(_)));

    let root_b = tmp_dir("solo");
    let solo = EnsembleEngine::open(&root_b, [2, 1, 1]).unwrap();
    assert!(matches!(solo.run_spec(&spec, None).unwrap(), RunOutcome::Computed(_)));

    let fuzzed_manifest = fuzzed.store.manifest(&hash).unwrap();
    let solo_manifest = solo.store.manifest(&hash).unwrap();
    assert_eq!(
        fuzzed_manifest["artifacts"].to_string(),
        solo_manifest["artifacts"].to_string(),
        "schedule fuzzing changed stored bytes for scenario {hash}"
    );
    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}

/// ISSUE satellite: two scenarios sharing one `Arc<Mesh>` must produce
/// outputs bit-exact to building the mesh fresh per scenario — and the
/// shared mesh itself must come back untouched.
#[test]
fn shared_mesh_reuse_is_bit_exact_and_non_mutating() {
    use std::sync::atomic::Ordering;
    let mut spec_a = small_spec(100);
    spec_a.cvm_seed = 11;
    spec_a.cvm_amp = 0.04;
    let mut spec_b = spec_a.clone();
    spec_b.mw = 7.4;
    spec_b.hypo_frac = 0.3;
    assert_eq!(spec_a.mesh_key().unwrap(), spec_b.mesh_key().unwrap());

    // Shared path: one engine, one mesh build amortised over both events.
    let root = tmp_dir("mesh-shared");
    let engine = EnsembleEngine::open(&root, [2, 1, 1]).unwrap();
    let shared_mesh = engine.mesh_for(&spec_a).unwrap();
    let pristine = (
        shared_mesh.vp.clone(),
        shared_mesh.vs.clone(),
        shared_mesh.rho.clone(),
        shared_mesh.qp.clone(),
        shared_mesh.qs.clone(),
    );
    engine.run_spec(&spec_a, None).unwrap();
    engine.run_spec(&spec_b, None).unwrap();
    assert_eq!(engine.stats.mesh_builds.load(Ordering::Relaxed), 1, "one CVM build");
    assert!(engine.stats.mesh_reuses.load(Ordering::Relaxed) >= 2, "mesh reused");
    assert_eq!(shared_mesh.vp, pristine.0, "runs must not mutate the shared mesh");
    assert_eq!(shared_mesh.vs, pristine.1);
    assert_eq!(shared_mesh.rho, pristine.2);
    assert_eq!(shared_mesh.qp, pristine.3);
    assert_eq!(shared_mesh.qs, pristine.4);

    // Fresh path: a new engine per spec, so every spec builds its own mesh.
    for spec in [&spec_a, &spec_b] {
        let fresh_root = tmp_dir(&format!("mesh-fresh-{}", spec.hash().unwrap()));
        let fresh = EnsembleEngine::open(&fresh_root, [2, 1, 1]).unwrap();
        fresh.run_spec(spec, None).unwrap();
        let hash = spec.hash().unwrap();
        assert_eq!(
            engine.store.manifest(&hash).unwrap()["artifacts"].to_string(),
            fresh.store.manifest(&hash).unwrap()["artifacts"].to_string(),
            "shared-mesh output differs from fresh-mesh output for {hash}"
        );
        let _ = std::fs::remove_dir_all(&fresh_root);
    }
    let _ = std::fs::remove_dir_all(&root);
}
