//! Canonical scenario identity.
//!
//! A [`ScenarioSpec`] is the *name* of a simulation: every physical knob
//! that changes the output, and nothing that doesn't. Its canonical byte
//! form (sorted `key=value` lines, floats as IEEE-754 bit patterns) feeds
//! MD5 to produce the content address under which results are stored.
//!
//! Canonicalization rules (pinned by `tests/ensemble.rs`):
//! - fields are emitted as `key=value\n` lines sorted by key — field order
//!   in any JSON encoding or construction path is irrelevant;
//! - `f64` values are emitted as the 16-hex-digit big-endian bit pattern
//!   of the value, with `-0.0` normalised to `0.0`; NaN is rejected at
//!   construction (a NaN knob has no meaningful identity);
//! - integers and booleans are emitted in decimal / `true|false`;
//! - the first line is a versioned magic (`awp-scenario v1`), so a future
//!   canonicalization change cannot silently collide with v1 hashes.

use awp_odc::scenario::{Scenario, SourceSpec};
use awp_pario::Md5;
use serde_json::Value;

/// Everything that identifies one ensemble member. All-`pub` on purpose:
/// the hash covers every field, so there is no invariant to protect
/// beyond finiteness (checked in [`canonical`](Self::canonical)).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario family: `shakeout-k`, `terashake-k`, or `w2w` (the
    /// kinematic catalogue entries — ensemble members perturb a kinematic
    /// source; dynamic-rupture members would carry their own seed field).
    pub family: String,
    /// Cells along the box length (sets h and the whole grid).
    pub nx: usize,
    /// Simulated seconds.
    pub duration_s: f64,
    /// Moment magnitude of the event.
    pub mw: f64,
    /// Hypocentre position along the fault trace, as a fraction of its
    /// length in `[0, 1]`.
    pub hypo_frac: f64,
    /// Rupture speed (m/s).
    pub vr: f64,
    /// Rise time (s).
    pub rise_time: f64,
    /// Seed of the stochastic CVM perturbation (0 + amp 0.0 = unperturbed).
    pub cvm_seed: u64,
    /// CVM perturbation amplitude in `[0, 1)`.
    pub cvm_amp: f64,
    /// Run the solve with clustered local time stepping.
    pub lts: bool,
    /// Run the solve under the work-stealing tile scheduler.
    pub sched: bool,
}

/// Canonical text form of one f64: the hex bit pattern, `-0.0` folded
/// into `0.0`. Errors on non-finite input.
fn canon_f64(key: &str, x: f64) -> Result<String, String> {
    if !x.is_finite() {
        return Err(format!("spec field {key} = {x} is not finite"));
    }
    let x = if x == 0.0 { 0.0 } else { x }; // -0.0 == 0.0 → normalised
    Ok(format!("{:016x}", x.to_bits()))
}

impl ScenarioSpec {
    /// A spec with the family's catalogue defaults (the same numbers the
    /// `awp run` CLI uses), ready for field-wise perturbation.
    pub fn new(family: &str, nx: usize) -> Result<Self, String> {
        let sc = base_scenario(family, nx)?;
        let (mw, vr, rise_time) = match sc.source {
            SourceSpec::Kinematic { mw, vr, rise_time, .. } => (mw, vr, rise_time),
            SourceSpec::Dynamic { .. } => {
                unreachable!("base families are kinematic")
            }
        };
        Ok(Self {
            family: family.to_string(),
            nx,
            duration_s: sc.duration,
            mw,
            hypo_frac: 0.9,
            vr,
            rise_time,
            cvm_seed: 0,
            cvm_amp: 0.0,
            lts: false,
            sched: false,
        })
    }

    /// The canonical byte form: versioned magic + sorted `key=value`
    /// lines. Two specs are the same scenario iff these bytes are equal.
    pub fn canonical(&self) -> Result<String, String> {
        let mut fields: Vec<(&str, String)> = vec![
            ("family", self.family.clone()),
            ("nx", self.nx.to_string()),
            ("duration_s", canon_f64("duration_s", self.duration_s)?),
            ("mw", canon_f64("mw", self.mw)?),
            ("hypo_frac", canon_f64("hypo_frac", self.hypo_frac)?),
            ("vr", canon_f64("vr", self.vr)?),
            ("rise_time", canon_f64("rise_time", self.rise_time)?),
            ("cvm_seed", self.cvm_seed.to_string()),
            ("cvm_amp", canon_f64("cvm_amp", self.cvm_amp)?),
            ("lts", self.lts.to_string()),
            ("sched", self.sched.to_string()),
        ];
        fields.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = String::from("awp-scenario v1\n");
        for (k, v) in fields {
            out.push_str(k);
            out.push('=');
            out.push_str(&v);
            out.push('\n');
        }
        Ok(out)
    }

    /// The content address: MD5 of the canonical bytes.
    pub fn hash(&self) -> Result<String, String> {
        Ok(Md5::digest_hex(self.canonical()?.as_bytes()))
    }

    /// The mesh-sharing key: the subset of the identity the CVM build
    /// depends on. Two specs with equal mesh keys may share one
    /// `Arc<Mesh>`; everything else (source, duration, solver opts) is
    /// per-event.
    pub fn mesh_key(&self) -> Result<String, String> {
        Ok(format!(
            "family={};nx={};cvm_seed={};cvm_amp={}",
            self.family,
            self.nx,
            self.cvm_seed,
            canon_f64("cvm_amp", self.cvm_amp)?
        ))
    }

    /// Materialise the [`Scenario`] this spec names (the mesh is built
    /// separately so it can be shared — see
    /// [`Scenario::prepare_with_mesh`]).
    pub fn to_scenario(&self) -> Result<Scenario, String> {
        if !(0.0..=1.0).contains(&self.hypo_frac) {
            return Err(format!("hypo_frac {} outside [0, 1]", self.hypo_frac));
        }
        let mut sc = base_scenario(&self.family, self.nx)?
            .with_duration(self.duration_s)
            .with_hypo_frac(self.hypo_frac);
        let direction = match sc.source {
            SourceSpec::Kinematic { direction, .. } => direction,
            SourceSpec::Dynamic { .. } => unreachable!("base families are kinematic"),
        };
        sc.source = SourceSpec::Kinematic {
            mw: self.mw,
            direction,
            vr: self.vr,
            rise_time: self.rise_time,
        };
        Ok(sc)
    }

    /// JSON object form (for job files and the serve protocol). Field
    /// order is irrelevant to identity — the canonical form sorts.
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "family": self.family.as_str(),
            "nx": self.nx,
            "duration_s": self.duration_s,
            "mw": self.mw,
            "hypo_frac": self.hypo_frac,
            "vr": self.vr,
            "rise_time": self.rise_time,
            "cvm_seed": self.cvm_seed,
            "cvm_amp": self.cvm_amp,
            "lts": self.lts,
            "sched": self.sched
        })
    }

    /// Parse a spec from a JSON object. Missing physical fields fall back
    /// to the family defaults (so a serve client may send just
    /// `{"family":"shakeout-k","nx":16,"mw":7.5}`), which keeps the wire
    /// format forward-extensible without making identity ambiguous — the
    /// *parsed* spec is always fully populated before hashing.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let family = v["family"].as_str().ok_or("spec: missing family")?;
        let nx = v["nx"].as_f64().ok_or("spec: missing nx")? as usize;
        let mut spec = Self::new(family, nx)?;
        if let Some(x) = v["duration_s"].as_f64() {
            spec.duration_s = x;
        }
        if let Some(x) = v["mw"].as_f64() {
            spec.mw = x;
        }
        if let Some(x) = v["hypo_frac"].as_f64() {
            spec.hypo_frac = x;
        }
        if let Some(x) = v["vr"].as_f64() {
            spec.vr = x;
        }
        if let Some(x) = v["rise_time"].as_f64() {
            spec.rise_time = x;
        }
        if let Some(x) = v["cvm_seed"].as_f64() {
            spec.cvm_seed = x as u64;
        }
        if let Some(x) = v["cvm_amp"].as_f64() {
            spec.cvm_amp = x;
        }
        if let Some(b) = v["lts"].as_bool() {
            spec.lts = b;
        }
        if let Some(b) = v["sched"].as_bool() {
            spec.sched = b;
        }
        Ok(spec)
    }
}

/// The kinematic catalogue families an ensemble can perturb.
fn base_scenario(family: &str, nx: usize) -> Result<Scenario, String> {
    use awp_odc::scenario::RuptureDirection;
    Ok(match family {
        "shakeout-k" => Scenario::shakeout_k(nx, 0.3),
        "terashake-k" => Scenario::terashake_k(nx, RuptureDirection::SeToNw),
        "w2w" => Scenario::wall_to_wall(nx),
        other => return Err(format!("unknown scenario family '{other}'")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_is_sorted_and_versioned() {
        let spec = ScenarioSpec::new("shakeout-k", 16).unwrap();
        let c = spec.canonical().unwrap();
        assert!(c.starts_with("awp-scenario v1\n"));
        let keys: Vec<&str> =
            c.lines().skip(1).map(|l| l.split('=').next().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "canonical keys must be sorted");
        assert_eq!(keys.len(), 11, "one line per identity field");
    }

    #[test]
    fn negative_zero_and_nan_are_canonicalized() {
        let mut a = ScenarioSpec::new("shakeout-k", 16).unwrap();
        let mut b = a.clone();
        a.cvm_amp = 0.0;
        b.cvm_amp = -0.0;
        assert_eq!(a.hash().unwrap(), b.hash().unwrap(), "-0.0 folds into 0.0");
        a.mw = f64::NAN;
        assert!(a.hash().is_err(), "NaN has no identity");
    }

    #[test]
    fn json_round_trip_preserves_identity() {
        let mut spec = ScenarioSpec::new("terashake-k", 20).unwrap();
        spec.mw = 7.31;
        spec.hypo_frac = 0.123456789012345;
        spec.cvm_seed = 424242;
        spec.cvm_amp = 0.05;
        spec.lts = true;
        let text = spec.to_json().to_string();
        let back =
            ScenarioSpec::from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.hash().unwrap(), back.hash().unwrap());
    }

    #[test]
    fn to_scenario_applies_overrides() {
        let mut spec = ScenarioSpec::new("shakeout-k", 16).unwrap();
        spec.mw = 7.2;
        spec.duration_s = 33.0;
        spec.hypo_frac = 0.4;
        let sc = spec.to_scenario().unwrap();
        assert_eq!(sc.duration, 33.0);
        assert_eq!(sc.hypo_frac, Some(0.4));
        match sc.source {
            SourceSpec::Kinematic { mw, .. } => assert_eq!(mw, 7.2),
            _ => panic!("kinematic family"),
        }
        assert!(spec.to_scenario().is_ok());
        assert!(ScenarioSpec::new("no-such-family", 16).is_err());
    }
}
