//! Fig. 15: maximum PGVs for the TeraShake-K ruptures — SE→NW vs NW→SE
//! directivity ("NW-SE rupture on the same stretch of the SAF generated
//! orders-of-magnitude smaller peak motions in Los Angeles").

use awp_bench::{save_record, section};
use awp_odc::scenario::{RuptureDirection, Scenario, CITIES};
use serde_json::json;

fn main() {
    section("Fig. 15 — TeraShake-K directivity (SE→NW vs NW→SE)");
    let nx = 120;
    let dur = 110.0;
    println!("running SE→NW ...");
    let se_nw = Scenario::terashake_k(nx, RuptureDirection::SeToNw)
        .with_duration(dur)
        .prepare()
        .run_serial();
    println!("running NW→SE ...");
    let nw_se = Scenario::terashake_k(nx, RuptureDirection::NwToSe)
        .with_duration(dur)
        .prepare()
        .run_serial();

    println!("\ncity PGVH (m/s):");
    println!("{:<18} {:>10} {:>10} {:>8}", "station", "SE→NW", "NW→SE", "ratio");
    let mut rows = Vec::new();
    for (name, ..) in CITIES {
        let a = se_nw.pgv_at(name).unwrap_or(0.0);
        let b = nw_se.pgv_at(name).unwrap_or(0.0);
        let ratio = if b > 0.0 { a / b } else { f64::NAN };
        println!("{name:<18} {a:>10.3} {b:>10.3} {ratio:>8.2}");
        rows.push(json!({ "station": name, "se_nw": a, "nw_se": b }));
    }
    // LA-corridor amplification: the SE→NW rupture channels energy toward
    // the LA basin (the paper's waveguide story).
    let la_ratio = se_nw.pgv_at("Los Angeles").unwrap() / nw_se.pgv_at("Los Angeles").unwrap();
    println!(
        "\nLos Angeles SE→NW / NW→SE ratio: {la_ratio:.2} (paper: orders of magnitude at\n\
         full 0.5 Hz resolution; the shape — SE→NW ≫ NW→SE — is the reproduced claim)"
    );

    println!("\nSE→NW PGV map:");
    println!("{}", se_nw.pgv.to_ascii(90));
    println!("NW→SE PGV map:");
    println!("{}", nw_se.pgv.to_ascii(90));

    save_record(
        "fig15",
        "TeraShake-K directivity PGV maps (paper Fig. 15)",
        json!({
            "cities": rows,
            "la_ratio_se_nw_over_nw_se": la_ratio,
            "pgv_max_se_nw": se_nw.pgv.max(),
            "pgv_max_nw_se": nw_se.pgv.max(),
        }),
    );
}
