//! Grid extents and integer indices.

use serde::{Deserialize, Serialize};

/// Extent of a 3-D structured grid (number of cells per axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Dims3 {
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self { nx, ny, nz }
    }

    /// Total number of cells.
    pub const fn count(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Extent along one axis (0 = x, 1 = y, 2 = z).
    pub const fn axis(&self, axis: usize) -> usize {
        match axis {
            0 => self.nx,
            1 => self.ny,
            _ => self.nz,
        }
    }

    /// Dims with one axis replaced.
    pub fn with_axis(mut self, axis: usize, len: usize) -> Self {
        match axis {
            0 => self.nx = len,
            1 => self.ny = len,
            _ => self.nz = len,
        }
        self
    }

    pub fn as_array(&self) -> [usize; 3] {
        [self.nx, self.ny, self.nz]
    }

    /// True when a point lies within `0..n` on every axis.
    pub fn contains(&self, idx: Idx3) -> bool {
        idx.i < self.nx && idx.j < self.ny && idx.k < self.nz
    }

    /// Row-major (x fastest) linear offset of an interior point.
    pub fn linear(&self, idx: Idx3) -> usize {
        debug_assert!(self.contains(idx));
        idx.i + self.nx * (idx.j + self.ny * idx.k)
    }

    /// Inverse of [`Dims3::linear`].
    pub fn delinear(&self, lin: usize) -> Idx3 {
        debug_assert!(lin < self.count());
        let i = lin % self.nx;
        let j = (lin / self.nx) % self.ny;
        let k = lin / (self.nx * self.ny);
        Idx3 { i, j, k }
    }
}

impl From<(usize, usize, usize)> for Dims3 {
    fn from((nx, ny, nz): (usize, usize, usize)) -> Self {
        Self { nx, ny, nz }
    }
}

/// Index of a cell within a grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Idx3 {
    pub i: usize,
    pub j: usize,
    pub k: usize,
}

impl Idx3 {
    pub const fn new(i: usize, j: usize, k: usize) -> Self {
        Self { i, j, k }
    }

    pub const fn axis(&self, axis: usize) -> usize {
        match axis {
            0 => self.i,
            1 => self.j,
            _ => self.k,
        }
    }

    pub fn with_axis(mut self, axis: usize, v: usize) -> Self {
        match axis {
            0 => self.i = v,
            1 => self.j = v,
            _ => self.k = v,
        }
        self
    }
}

impl From<(usize, usize, usize)> for Idx3 {
    fn from((i, j, k): (usize, usize, usize)) -> Self {
        Self { i, j, k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_multiplies_axes() {
        assert_eq!(Dims3::new(3, 4, 5).count(), 60);
        assert_eq!(Dims3::new(1, 1, 1).count(), 1);
    }

    #[test]
    fn linear_is_x_fastest() {
        let d = Dims3::new(4, 3, 2);
        assert_eq!(d.linear(Idx3::new(0, 0, 0)), 0);
        assert_eq!(d.linear(Idx3::new(1, 0, 0)), 1);
        assert_eq!(d.linear(Idx3::new(0, 1, 0)), 4);
        assert_eq!(d.linear(Idx3::new(0, 0, 1)), 12);
        assert_eq!(d.linear(Idx3::new(3, 2, 1)), 23);
    }

    #[test]
    fn delinear_round_trips() {
        let d = Dims3::new(5, 7, 3);
        for lin in 0..d.count() {
            assert_eq!(d.linear(d.delinear(lin)), lin);
        }
    }

    #[test]
    fn axis_accessors_agree() {
        let d = Dims3::new(2, 9, 11);
        assert_eq!(d.axis(0), 2);
        assert_eq!(d.axis(1), 9);
        assert_eq!(d.axis(2), 11);
        assert_eq!(d.as_array(), [2, 9, 11]);
        let e = d.with_axis(1, 4);
        assert_eq!(e, Dims3::new(2, 4, 11));
    }

    #[test]
    fn idx_axis_round_trip() {
        let x = Idx3::new(1, 2, 3);
        for a in 0..3 {
            assert_eq!(x.with_axis(a, 9).axis(a), 9);
        }
    }

    #[test]
    fn contains_is_exclusive_upper() {
        let d = Dims3::new(2, 2, 2);
        assert!(d.contains(Idx3::new(1, 1, 1)));
        assert!(!d.contains(Idx3::new(2, 0, 0)));
        assert!(!d.contains(Idx3::new(0, 2, 0)));
        assert!(!d.contains(Idx3::new(0, 0, 2)));
    }
}
