//! Source time functions (moment-rate shapes), all normalised to unit
//! integral so multiplying by a seismic moment M₀ gives a moment-rate
//! history releasing exactly M₀.

use serde::{Deserialize, Serialize};

/// Supported moment-rate shapes.
///
/// ```
/// use awp_source::stf::Stf;
/// let stf = Stf::Triangle { rise_time: 2.0 };
/// // Unit time-integral: multiplying by M0 releases exactly M0.
/// let total: f64 = (0..40_000).map(|i| stf.rate(i as f64 * 1e-4) * 1e-4).sum();
/// assert!((total - 1.0).abs() < 1e-2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Stf {
    /// Isosceles triangle of total duration `rise_time`.
    Triangle { rise_time: f64 },
    /// Brune (1970) ω⁻² pulse with corner time τ: `ṡ(t) = (t/τ²)e^{−t/τ}`.
    Brune { tau: f64 },
    /// Raised-cosine pulse of duration `rise_time`.
    Cosine { rise_time: f64 },
}

impl Stf {
    /// Moment-rate density at time `t` (zero before 0; unit time-integral).
    pub fn rate(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        match *self {
            Stf::Triangle { rise_time } => {
                let h = rise_time / 2.0;
                let peak = 1.0 / h; // area = rise_time * peak / 2 = 1
                if t < h {
                    peak * t / h
                } else if t < rise_time {
                    peak * (rise_time - t) / h
                } else {
                    0.0
                }
            }
            Stf::Brune { tau } => (t / (tau * tau)) * (-t / tau).exp(),
            Stf::Cosine { rise_time } => {
                if t < rise_time {
                    (1.0 - (2.0 * std::f64::consts::PI * t / rise_time).cos()) / rise_time
                } else {
                    0.0
                }
            }
        }
    }

    /// Time derivative of the moment-rate density (the moment
    /// *acceleration* shape). The far-field terms of the analytic
    /// full-space Green's function are proportional to `M̈(t)`, so the
    /// verification suite needs this in closed form — a finite difference
    /// of [`rate`](Self::rate) would inject its own discretisation error
    /// into the reference solution. `Triangle` has jump discontinuities at
    /// 0, rise/2 and rise (one-sided values are returned); `Cosine` is the
    /// smooth choice for quantitative verification (C¹ rate, continuous
    /// derivative at both endpoints).
    pub fn rate_dot(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        match *self {
            Stf::Triangle { rise_time } => {
                let h = rise_time / 2.0;
                let slope = 2.0 / (rise_time * h); // peak / h
                if t < h {
                    slope
                } else if t < rise_time {
                    -slope
                } else {
                    0.0
                }
            }
            Stf::Brune { tau } => (1.0 / (tau * tau)) * (1.0 - t / tau) * (-t / tau).exp(),
            Stf::Cosine { rise_time } => {
                if t < rise_time {
                    let w = 2.0 * std::f64::consts::PI / rise_time;
                    w * (w * t).sin() / rise_time
                } else {
                    0.0
                }
            }
        }
    }

    /// Effective duration (time by which ≥ ~99.9% of moment is released).
    pub fn duration(&self) -> f64 {
        match *self {
            Stf::Triangle { rise_time } | Stf::Cosine { rise_time } => rise_time,
            Stf::Brune { tau } => 10.0 * tau,
        }
    }

    /// Sample the moment-rate history: `n` samples at spacing `dt`,
    /// scaled by `moment` (N·m), as f32 (the solver's working precision).
    pub fn sample(&self, moment: f64, dt: f64, n: usize) -> Vec<f32> {
        (0..n).map(|i| (moment * self.rate(i as f64 * dt)) as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integral(stf: &Stf, dt: f64, n: usize) -> f64 {
        (0..n).map(|i| stf.rate(i as f64 * dt) * dt).sum()
    }

    #[test]
    fn triangle_integrates_to_one() {
        let s = Stf::Triangle { rise_time: 2.0 };
        assert!((integral(&s, 1e-4, 30_000) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn brune_integrates_to_one() {
        let s = Stf::Brune { tau: 0.5 };
        assert!((integral(&s, 1e-4, 200_000) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn cosine_integrates_to_one() {
        let s = Stf::Cosine { rise_time: 1.5 };
        assert!((integral(&s, 1e-4, 20_000) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rates_are_nonnegative_and_causal() {
        for s in [
            Stf::Triangle { rise_time: 1.0 },
            Stf::Brune { tau: 0.3 },
            Stf::Cosine { rise_time: 1.0 },
        ] {
            assert_eq!(s.rate(-0.1), 0.0, "causality");
            for i in 0..1000 {
                assert!(s.rate(i as f64 * 0.01) >= 0.0);
            }
        }
    }

    #[test]
    fn triangle_peaks_at_half_rise() {
        let s = Stf::Triangle { rise_time: 2.0 };
        assert!((s.rate(1.0) - 1.0).abs() < 1e-12, "peak 2/rise at t = rise/2");
        assert_eq!(s.rate(2.0), 0.0);
        assert!(s.rate(0.5) < s.rate(1.0));
    }

    #[test]
    fn brune_peaks_at_tau() {
        let s = Stf::Brune { tau: 0.4 };
        let p = s.rate(0.4);
        assert!(s.rate(0.2) < p && s.rate(0.8) < p);
    }

    #[test]
    fn sample_scales_by_moment() {
        let s = Stf::Triangle { rise_time: 1.0 };
        let m0 = 1e18;
        let v = s.sample(m0, 0.01, 200);
        let released: f64 = v.iter().map(|&r| r as f64 * 0.01).sum();
        assert!((released / m0 - 1.0).abs() < 0.01, "released {released}");
    }

    #[test]
    fn rate_dot_matches_finite_difference() {
        // Central differences of `rate` must agree with the closed-form
        // derivative away from the Triangle's corner points.
        let eps = 1e-6;
        for s in [
            Stf::Triangle { rise_time: 1.0 },
            Stf::Brune { tau: 0.3 },
            Stf::Cosine { rise_time: 1.3 },
        ] {
            for i in 1..200 {
                let t = i as f64 * 0.007;
                if let Stf::Triangle { rise_time } = s {
                    let h = rise_time / 2.0;
                    // Skip the kinks where the derivative jumps.
                    if (t - h).abs() < 0.01 || (t - rise_time).abs() < 0.01 {
                        continue;
                    }
                }
                let fd = (s.rate(t + eps) - s.rate(t - eps)) / (2.0 * eps);
                let an = s.rate_dot(t);
                assert!(
                    (fd - an).abs() <= 1e-4 * (1.0 + an.abs()),
                    "{s:?} at t={t}: fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn rate_dot_is_causal_and_ends() {
        for s in [
            Stf::Triangle { rise_time: 1.0 },
            Stf::Cosine { rise_time: 1.0 },
        ] {
            assert_eq!(s.rate_dot(-0.5), 0.0);
            assert_eq!(s.rate_dot(1.5), 0.0);
        }
        // Cosine derivative is continuous at both endpoints (≈ 0).
        let c = Stf::Cosine { rise_time: 1.0 };
        assert!(c.rate_dot(1e-9).abs() < 1e-6);
        assert!(c.rate_dot(1.0 - 1e-9).abs() < 1e-6);
    }

    #[test]
    fn durations_cover_pulses() {
        for s in [
            Stf::Triangle { rise_time: 1.0 },
            Stf::Brune { tau: 0.3 },
            Stf::Cosine { rise_time: 1.0 },
        ] {
            assert!(s.rate(s.duration() * 1.01) < 0.02, "{s:?}");
        }
    }
}
