//! Cooperative work-stealing tile scheduler for the virtual cluster.
//!
//! The paper's scaling story keeps every core busy through the
//! boundary/interior split, but one OS thread per rank leaves balancing to
//! the kernel: on oversubscribed or skewed hosts, ranks that finish their
//! interior update idle in `finish_exchange` while stragglers timeshare.
//! This module balances the *work* instead (the sched_ext lesson: per-domain
//! dispatch queues + stealing + topology-aware placement, in user space).
//!
//! Shape of the protocol:
//!
//! - Each rank owns a dispatch queue of [`Tile`]s — disjoint-write k-slabs
//!   of its interior stencil window. Before a batch the owner publishes a
//!   type-erased executor ([`ExecSlot`]) pointing at its rank-local solver
//!   state, pushes the tiles, then drains its own queue front-to-back.
//! - A rank whose own interior and sends are done becomes a thief: it probes
//!   victims (LLC-near-first via [`HostTopology`], or a seeded
//!   [`SchedulePlan`] permutation when one is attached) and pops tiles from
//!   the *back* of a lagging rank's queue, executing them in the victim's
//!   address space.
//! - The owner leaves a batch only when `remaining == 0` (acquire), i.e.
//!   after every tile — stolen or not — has retired; while parked it steals
//!   from other ranks and bumps its liveness pulse so the watchdog sees it
//!   alive.
//!
//! # Why any steal order is bit-exact
//!
//! Tiles partition the window and every cell's update is a pure function of
//! fields the batch does not write (velocity tiles write only velocities and
//! read stresses; stress tiles the reverse), so the floating-point result of
//! a cell never depends on which thread computed it or in what order.
//! Boundary passes that are *not* cell-pure (M-PML split fields, source
//! injection, free surface, sponge) are never tiled — the owner applies them
//! after the batch barrier, in the exact sequence of the untiled path. The
//! verify fuzzer replays seeded steal orders and pins this end to end.
//!
//! # Safety contract (`ExecSlot`)
//!
//! The executor's context pointer refers to stack data of the owner thread.
//! It is valid from `submit` until the owner's `run_to_completion` returns,
//! which the protocol guarantees thieves never outlive: a thief acquires a
//! tile and its exec under the victim's queue lock (exec is cleared only
//! after `remaining == 0`, and `remaining` stays positive until that tile
//! retires), runs it, then decrements `remaining`. The owner's final
//! acquire-load of `remaining == 0` therefore happens-after every stolen
//! tile's writes.

use crate::schedule::SchedulePlan;
use crate::topology::HostTopology;
use awp_telemetry::LiveStats;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One disjoint-write unit of interior work: a half-open grid window
/// `[i0,i1)×[j0,j1)×[k0,k1)` in the owner's local index space. The
/// scheduler never interprets the bounds; the executor does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    pub i0: usize,
    pub i1: usize,
    pub j0: usize,
    pub j1: usize,
    pub k0: usize,
    pub k1: usize,
}

impl Tile {
    /// Split a window into k-slabs of at most `planes` z-planes each (the
    /// tile granularity knob). Full i/j extent is preserved so the SIMD
    /// kernels see identical row geometry tile-by-tile — a prerequisite of
    /// the bit-exactness argument. `planes == 0` yields one tile.
    pub fn split_k(self, planes: usize) -> Vec<Tile> {
        if self.k1 <= self.k0 {
            return Vec::new();
        }
        if planes == 0 || self.k1 - self.k0 <= planes {
            return vec![self];
        }
        let mut out = Vec::with_capacity((self.k1 - self.k0).div_ceil(planes));
        let mut k = self.k0;
        while k < self.k1 {
            let hi = (k + planes).min(self.k1);
            out.push(Tile { k0: k, k1: hi, ..self });
            k = hi;
        }
        out
    }
}

/// Type-erased tile executor, published by a rank for the duration of one
/// batch. `run` must tolerate concurrent invocation on disjoint tiles.
#[derive(Clone, Copy)]
pub struct ExecSlot {
    ctx: *const (),
    run: unsafe fn(*const (), Tile),
}

// The context pointer crosses threads by design; validity is governed by
// the batch protocol documented on the module (thieves never hold it past
// the owner's completion barrier).
unsafe impl Send for ExecSlot {}

impl ExecSlot {
    /// # Safety
    /// `ctx` must stay valid, and `run(ctx, tile)` must be safe to call
    /// concurrently for disjoint tiles, until the owner's
    /// [`TileScheduler::run_to_completion`] for this batch returns.
    pub unsafe fn new(ctx: *const (), run: unsafe fn(*const (), Tile)) -> Self {
        Self { ctx, run }
    }
}

impl std::fmt::Debug for ExecSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecSlot").field("ctx", &self.ctx).finish()
    }
}

/// Per-rank dispatch state.
#[derive(Default)]
struct Dispatch {
    queue: VecDeque<Tile>,
    exec: Option<ExecSlot>,
}

#[derive(Default)]
struct RankQueue {
    dq: Mutex<Dispatch>,
    /// Tiles of the current batch not yet retired. The owner's batch
    /// barrier: positive ⇒ exec is valid.
    remaining: AtomicUsize,
    /// Tiles this rank executed from its own queue.
    executed: AtomicU64,
    /// Tiles of this rank executed by thieves.
    stolen_from: AtomicU64,
    /// Tiles this rank stole from peers.
    steals: AtomicU64,
    /// Victim probes issued by this rank (successful or not).
    steal_attempts: AtomicU64,
    /// Monotonic steal-attempt index, seeds the victim permutation.
    steal_calls: AtomicU64,
    /// High-water mark of submitted batch sizes.
    depth_hwm: AtomicU64,
}

/// The cluster-wide cooperative scheduler. One instance per run, shared by
/// every rank thread; attach with `Cluster::with_sched`.
pub struct TileScheduler {
    ranks: Vec<RankQueue>,
    topo: HostTopology,
    /// Advisory rank→core assignment from the LLC layout.
    placement: Vec<usize>,
    /// Precomputed LLC-near-first victim order per thief (fallback when no
    /// seeded plan is attached).
    victim_order: Vec<Vec<usize>>,
    /// Seeded steal-order override (the fuzzer's dimension).
    plan: Mutex<Option<Arc<SchedulePlan>>>,
    /// Liveness pulse cells, one per rank (shared with the watchdog).
    pulses: Vec<Arc<AtomicU64>>,
    /// Live streaming-stats cells, when a stats endpoint is attached.
    live: Mutex<Option<Arc<LiveStats>>>,
    /// Thief×victim steal counts (`matrix[thief * n + victim]`), the raw
    /// material for the causal analyzer's steal edges.
    steal_matrix: Vec<AtomicU64>,
}

impl TileScheduler {
    pub fn new(n_ranks: usize, topo: HostTopology) -> Self {
        let placement = topo.placement(n_ranks);
        let victim_order =
            (0..n_ranks).map(|r| topo.victim_order(r, n_ranks, &placement)).collect();
        Self {
            ranks: (0..n_ranks).map(|_| RankQueue::default()).collect(),
            topo,
            placement,
            victim_order,
            plan: Mutex::new(None),
            pulses: Vec::new(),
            live: Mutex::new(None),
            steal_matrix: (0..n_ranks * n_ranks).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    pub fn ranks(&self) -> usize {
        self.ranks.len()
    }

    pub fn topology(&self) -> &HostTopology {
        &self.topo
    }

    /// Advisory rank→core placement chosen at construction.
    pub fn placement(&self) -> &[usize] {
        &self.placement
    }

    /// Wire the per-rank liveness pulse cells (done by `Cluster::with_sched`
    /// before the scheduler is shared).
    pub fn set_pulses(&mut self, cells: Vec<Arc<AtomicU64>>) {
        assert_eq!(cells.len(), self.ranks.len());
        self.pulses = cells;
    }

    /// Attach a seeded steal-order plan (fuzz dimension). May be called
    /// before or after sharing; attachment order with `set_live` and the
    /// cluster builders does not matter.
    pub fn set_plan(&self, plan: Arc<SchedulePlan>) {
        *self.plan.lock() = Some(plan);
    }

    /// Attach live streaming-stats cells.
    pub fn set_live(&self, live: Arc<LiveStats>) {
        *self.live.lock() = Some(live);
    }

    #[inline]
    fn pulse(&self, rank: usize) {
        if let Some(p) = self.pulses.get(rank) {
            p.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publish a batch of disjoint-write tiles for `rank`.
    ///
    /// # Safety
    /// The caller must be the owner thread of `rank`, must uphold the
    /// [`ExecSlot::new`] contract, and must call
    /// [`run_to_completion`](Self::run_to_completion) for `rank` before the
    /// executor context goes out of scope. Tiles must write disjoint cells.
    pub unsafe fn submit(&self, rank: usize, exec: ExecSlot, tiles: &[Tile]) {
        let rq = &self.ranks[rank];
        debug_assert_eq!(rq.remaining.load(Ordering::Relaxed), 0, "previous batch not drained");
        let mut dq = rq.dq.lock();
        dq.exec = Some(exec);
        dq.queue.clear();
        dq.queue.extend(tiles.iter().copied());
        // Publish after the queue is staged; thieves check remaining first.
        rq.remaining.store(tiles.len(), Ordering::Release);
        rq.depth_hwm.fetch_max(tiles.len() as u64, Ordering::Relaxed);
        if let Some(live) = self.live.lock().as_ref() {
            live.rank(rank).queue_depth.store(tiles.len() as u64, Ordering::Relaxed);
        }
    }

    /// Owner-side drain: execute own tiles front-to-back, then park —
    /// stealing from lagging peers — until every tile of the batch (stolen
    /// or not) has retired. On return all writes of the batch are visible
    /// to the owner and the executor slot has been cleared.
    pub fn run_to_completion(&self, rank: usize) {
        let rq = &self.ranks[rank];
        loop {
            let grabbed = {
                let mut dq = rq.dq.lock();
                match dq.queue.pop_front() {
                    Some(tile) => dq.exec.map(|e| (tile, e)),
                    None => None,
                }
            };
            match grabbed {
                Some((tile, exec)) => {
                    self.pulse(rank);
                    unsafe { (exec.run)(exec.ctx, tile) };
                    rq.executed.fetch_add(1, Ordering::Relaxed);
                    if let Some(live) = self.live.lock().as_ref() {
                        live.rank(rank).tiles.fetch_add(1, Ordering::Relaxed);
                    }
                    rq.remaining.fetch_sub(1, Ordering::Release);
                }
                None => break,
            }
        }
        // Park at the batch barrier; help elsewhere instead of idling.
        let mut spins = 0u32;
        while rq.remaining.load(Ordering::Acquire) > 0 {
            self.pulse(rank);
            if !self.try_steal(rank) {
                spins += 1;
                if spins > 64 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        rq.dq.lock().exec = None;
    }

    /// Attempt to steal and execute one tile from a lagging peer. Returns
    /// `true` if a tile was executed. Callable from any yield point of the
    /// thief's thread (batch barrier, exchange wait loop).
    pub fn try_steal(&self, thief: usize) -> bool {
        let n = self.ranks.len();
        if n < 2 {
            return false;
        }
        let tq = &self.ranks[thief];
        // A probing thief is alive, landed steal or not: the watchdog must
        // not misclassify a rank parked on the dispatch queues as stalled.
        self.pulse(thief);
        tq.steal_attempts.fetch_add(1, Ordering::Relaxed);
        let call = tq.steal_calls.fetch_add(1, Ordering::Relaxed);
        let seeded = self.plan.lock().as_ref().map(|p| p.steal_perm(thief, call, n));
        let order: &[usize] = match &seeded {
            Some(p) => p,
            None => &self.victim_order[thief],
        };
        for &victim in order {
            if victim == thief || victim >= n {
                continue;
            }
            let vq = &self.ranks[victim];
            if vq.remaining.load(Ordering::Acquire) == 0 {
                continue;
            }
            let grabbed = {
                let mut dq = vq.dq.lock();
                match dq.queue.pop_back() {
                    Some(tile) => dq.exec.map(|e| (tile, e)),
                    None => None,
                }
            };
            if let Some((tile, exec)) = grabbed {
                self.pulse(thief);
                unsafe { (exec.run)(exec.ctx, tile) };
                vq.stolen_from.fetch_add(1, Ordering::Relaxed);
                tq.steals.fetch_add(1, Ordering::Relaxed);
                self.steal_matrix[thief * n + victim].fetch_add(1, Ordering::Relaxed);
                if let Some(live) = self.live.lock().as_ref() {
                    live.rank(thief).steals.fetch_add(1, Ordering::Relaxed);
                    live.rank(victim).stolen.fetch_add(1, Ordering::Relaxed);
                }
                vq.remaining.fetch_sub(1, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Tiles `rank` executed from its own queue.
    pub fn tiles_executed(&self, rank: usize) -> u64 {
        self.ranks[rank].executed.load(Ordering::Relaxed)
    }

    /// Tiles `rank` stole (and executed) from peers.
    pub fn steals(&self, rank: usize) -> u64 {
        self.ranks[rank].steals.load(Ordering::Relaxed)
    }

    /// Tiles of `rank` executed by thieves.
    pub fn stolen_from(&self, rank: usize) -> u64 {
        self.ranks[rank].stolen_from.load(Ordering::Relaxed)
    }

    /// Victim probes `rank` issued.
    pub fn steal_attempts(&self, rank: usize) -> u64 {
        self.ranks[rank].steal_attempts.load(Ordering::Relaxed)
    }

    /// High-water mark of `rank`'s submitted batch sizes.
    pub fn depth_hwm(&self, rank: usize) -> u64 {
        self.ranks[rank].depth_hwm.load(Ordering::Relaxed)
    }

    /// Total tiles stolen across the cluster (convenience for gates).
    pub fn total_steals(&self) -> u64 {
        (0..self.ranks.len()).map(|r| self.steals(r)).sum()
    }

    /// Tiles `thief` stole from `victim` specifically.
    pub fn stolen_by(&self, thief: usize, victim: usize) -> u64 {
        self.steal_matrix[thief * self.ranks.len() + victim].load(Ordering::Relaxed)
    }
}

/// Fold a rank's scheduler counters into its telemetry recorder at the end
/// of a run (the scheduler's atomics are authoritative during the run; the
/// snapshot makes them part of the per-rank `Snapshot` like every other
/// counter).
pub fn fold_counters(sched: &TileScheduler, rank: usize, telem: &mut awp_telemetry::Recorder) {
    use awp_telemetry::{CausalKind, Counter, HistKind};
    telem.count(Counter::TilesExecuted, sched.tiles_executed(rank));
    telem.count(Counter::TilesStolen, sched.steals(rank));
    telem.count(Counter::StealAttempts, sched.steal_attempts(rank));
    let hwm = sched.depth_hwm(rank);
    if hwm > 0 {
        telem.observe_count(HistKind::QueueDepth, hwm);
    }
    // One aggregated causal mark per victim this rank helped: the analyzer
    // renders these as thief←victim helper edges (timing is end-of-run;
    // tile-level timestamps would put an atomic clock on the steal path).
    for victim in 0..sched.ranks() {
        let tiles = sched.stolen_by(rank, victim);
        if tiles > 0 {
            telem.causal_mark(CausalKind::Steal, victim as u32, 0, tiles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Executor that marks each executed k-plane in a shared bitmap and
    /// records which thread ran it.
    struct MarkCtx {
        hits: Vec<AtomicU32>,
    }

    unsafe fn mark_run(p: *const (), t: Tile) {
        let c = unsafe { &*(p as *const MarkCtx) };
        for k in t.k0..t.k1 {
            c.hits[k].fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn split_k_partitions_the_window() {
        let w = Tile { i0: 2, i1: 10, j0: 1, j1: 9, k0: 3, k1: 20 };
        let tiles = w.split_k(4);
        assert_eq!(tiles.len(), 5, "ceil(17/4)");
        assert!(tiles.iter().all(|t| (t.i0, t.i1, t.j0, t.j1) == (2, 10, 1, 9)));
        let planes: Vec<usize> = tiles.iter().flat_map(|t| t.k0..t.k1).collect();
        assert_eq!(planes, (3..20).collect::<Vec<_>>(), "disjoint, exhaustive, ordered");
        assert_eq!(w.split_k(0), vec![w], "0 planes = one tile");
        assert!(Tile { k1: 3, ..w }.split_k(4).is_empty(), "empty window, no tiles");
    }

    #[test]
    fn owner_drains_every_tile_exactly_once() {
        let s = TileScheduler::new(1, HostTopology::flat(1));
        let ctx = MarkCtx { hits: (0..32).map(|_| AtomicU32::new(0)).collect() };
        let tiles = Tile { i0: 0, i1: 4, j0: 0, j1: 4, k0: 0, k1: 32 }.split_k(5);
        unsafe {
            let exec = ExecSlot::new(&ctx as *const MarkCtx as *const (), mark_run);
            s.submit(0, exec, &tiles);
        }
        s.run_to_completion(0);
        assert!(ctx.hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(s.tiles_executed(0), 7);
        assert_eq!(s.steals(0), 0);
        assert_eq!(s.depth_hwm(0), 7);
    }

    #[test]
    fn thief_helps_a_lagging_owner_and_barrier_holds() {
        // Rank 0 owns a big batch of slow tiles; rank 1 steals. Every
        // k-plane must retire exactly once and the owner's barrier must not
        // release before stolen tiles finish.
        struct SlowCtx {
            hits: Vec<AtomicU32>,
        }
        unsafe fn slow_run(p: *const (), t: Tile) {
            let c = unsafe { &*(p as *const SlowCtx) };
            std::thread::sleep(std::time::Duration::from_millis(2));
            for k in t.k0..t.k1 {
                c.hits[k].fetch_add(1, Ordering::Relaxed);
            }
        }
        let s = Arc::new(TileScheduler::new(2, HostTopology::flat(2)));
        let ctx = SlowCtx { hits: (0..48).map(|_| AtomicU32::new(0)).collect() };
        let tiles = Tile { i0: 0, i1: 2, j0: 0, j1: 2, k0: 0, k1: 48 }.split_k(2);
        std::thread::scope(|scope| {
            let s0 = Arc::clone(&s);
            let ctx_ref = &ctx;
            let tiles_ref = &tiles;
            let owner = scope.spawn(move || {
                unsafe {
                    let exec = ExecSlot::new(ctx_ref as *const SlowCtx as *const (), slow_run);
                    s0.submit(0, exec, tiles_ref);
                }
                s0.run_to_completion(0);
                // Barrier released ⇒ every plane visible to the owner.
                assert!(ctx_ref.hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
            let s1 = Arc::clone(&s);
            let thief = scope.spawn(move || {
                let mut stole = 0u64;
                // Steal until the victim's batch is drained.
                loop {
                    if s1.try_steal(1) {
                        stole += 1;
                    } else if s1.tiles_executed(0) + s1.stolen_from(0) >= 24 {
                        break;
                    }
                }
                stole
            });
            owner.join().unwrap();
            let stole = thief.join().unwrap();
            assert_eq!(stole, s.steals(1));
        });
        assert_eq!(s.tiles_executed(0) + s.stolen_from(0), 24, "all tiles retired");
        assert!(s.steals(1) > 0, "thief should have landed at least one steal");
        assert_eq!(s.stolen_from(0), s.steals(1));
    }

    #[test]
    fn seeded_plan_overrides_topology_victim_order() {
        let s = TileScheduler::new(4, HostTopology::flat(4));
        s.set_plan(SchedulePlan::new(7));
        // With all queues empty a steal fails but still consumes a seeded
        // permutation — determinism of the decision stream is what the
        // fuzzer varies; results stay bit-exact regardless.
        assert!(!s.try_steal(0));
        assert_eq!(s.steal_attempts(0), 1);
    }

    #[test]
    fn parked_owner_and_thief_bump_their_pulses() {
        let pulses: Vec<Arc<AtomicU64>> = (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut s = TileScheduler::new(2, HostTopology::flat(2));
        s.set_pulses(pulses.clone());
        let s = Arc::new(s);
        let ctx = MarkCtx { hits: (0..8).map(|_| AtomicU32::new(0)).collect() };
        let tiles = Tile { i0: 0, i1: 1, j0: 0, j1: 1, k0: 0, k1: 8 }.split_k(4);
        unsafe {
            let exec = ExecSlot::new(&ctx as *const MarkCtx as *const (), mark_run);
            s.submit(0, exec, &tiles);
        }
        s.run_to_completion(0);
        assert!(pulses[0].load(Ordering::Relaxed) > 0, "owner pulses while draining");
        s.try_steal(1);
        assert!(pulses[1].load(Ordering::Relaxed) > 0, "thief pulses while probing");
    }
}
