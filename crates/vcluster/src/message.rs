//! Message envelopes and payloads.

use serde::{Deserialize, Serialize};

/// Message tag. AWP-ODC's asynchronous model gives every in-flight transfer
/// a unique tag so out-of-order arrivals stay unambiguous (paper §IV.A).
pub type Tag = u64;

/// Build a tag from small structured parts: a phase (velocity/stress/IO…),
/// a field id, a face id and a step counter. Layout (low → high bits):
/// face (4) | field (8) | phase (8) | step (44).
pub fn make_tag(phase: u8, field: u8, face: u8, step: u64) -> Tag {
    debug_assert!(face < 16);
    (face as u64) | ((field as u64) << 4) | ((phase as u64) << 12) | (step << 20)
}

/// Typed message payload. Wavefield halos travel as `F32`; partitioned
/// mesh/source data as `F32`/`F64`; control traffic as `U64` or raw bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    Empty,
    F32(Vec<f32>),
    F64(Vec<f64>),
    U64(Vec<u64>),
    Bytes(Vec<u8>),
}

impl Payload {
    /// Approximate wire size in bytes (used by byte counters and the
    /// performance model).
    pub fn byte_len(&self) -> usize {
        match self {
            Payload::Empty => 0,
            Payload::F32(v) => v.len() * 4,
            Payload::F64(v) => v.len() * 8,
            Payload::U64(v) => v.len() * 8,
            Payload::Bytes(v) => v.len(),
        }
    }

    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            other => panic!("expected F32 payload, got {}", other.kind()),
        }
    }

    pub fn into_f64(self) -> Vec<f64> {
        match self {
            Payload::F64(v) => v,
            other => panic!("expected F64 payload, got {}", other.kind()),
        }
    }

    pub fn into_u64(self) -> Vec<u64> {
        match self {
            Payload::U64(v) => v,
            other => panic!("expected U64 payload, got {}", other.kind()),
        }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            Payload::Bytes(v) => v,
            other => panic!("expected Bytes payload, got {}", other.kind()),
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Empty => "Empty",
            Payload::F32(_) => "F32",
            Payload::F64(_) => "F64",
            Payload::U64(_) => "U64",
            Payload::Bytes(_) => "Bytes",
        }
    }
}

impl From<Vec<f32>> for Payload {
    fn from(v: Vec<f32>) -> Self {
        Payload::F32(v)
    }
}

impl From<Vec<f64>> for Payload {
    fn from(v: Vec<f64>) -> Self {
        Payload::F64(v)
    }
}

impl From<Vec<u64>> for Payload {
    fn from(v: Vec<u64>) -> Self {
        Payload::U64(v)
    }
}

/// An in-flight message.
#[derive(Debug)]
pub struct Message {
    pub src: usize,
    pub tag: Tag,
    pub payload: Payload,
    /// Sender's Lamport-clock stamp (message lineage, PR 9): the receiver
    /// merges it into its own logical clock on match, which is what lets
    /// the causal analyzer join send→recv edges across ranks.
    pub clock: u64,
    /// Rendezvous acknowledgement: present for synchronous-mode sends; the
    /// receiver drops it on match, unblocking the sender.
    pub ack: Option<crossbeam::channel::Sender<()>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_distinguish_all_fields() {
        let base = make_tag(1, 2, 3, 4);
        assert_ne!(base, make_tag(2, 2, 3, 4));
        assert_ne!(base, make_tag(1, 3, 3, 4));
        assert_ne!(base, make_tag(1, 2, 4, 4));
        assert_ne!(base, make_tag(1, 2, 3, 5));
    }

    #[test]
    fn tag_steps_do_not_collide_across_faces() {
        // A full exchange epoch uses ≤ 16 faces × 256 fields; consecutive
        // steps must never alias.
        let a = make_tag(0, 255, 15, 7);
        let b = make_tag(0, 0, 0, 8);
        assert!(a < b);
    }

    #[test]
    fn byte_lens() {
        assert_eq!(Payload::Empty.byte_len(), 0);
        assert_eq!(Payload::F32(vec![0.0; 3]).byte_len(), 12);
        assert_eq!(Payload::F64(vec![0.0; 3]).byte_len(), 24);
        assert_eq!(Payload::U64(vec![0; 2]).byte_len(), 16);
        assert_eq!(Payload::Bytes(vec![0; 5]).byte_len(), 5);
    }

    #[test]
    fn into_f32_round_trip() {
        let p: Payload = vec![1.0f32, 2.0].into();
        assert_eq!(p.into_f32(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "expected F32")]
    fn wrong_kind_panics() {
        Payload::U64(vec![1]).into_f32();
    }

    #[test]
    fn empty_vectors_have_zero_byte_len() {
        assert_eq!(Payload::F32(Vec::new()).byte_len(), 0);
        assert_eq!(Payload::F64(Vec::new()).byte_len(), 0);
        assert_eq!(Payload::U64(Vec::new()).byte_len(), 0);
        assert_eq!(Payload::Bytes(Vec::new()).byte_len(), 0);
    }

    /// `into_f32` must move the underlying vector, not copy it — the
    /// zero-copy halo pipeline recycles the exact allocation the sender
    /// pooled.
    #[test]
    fn into_f32_preserves_allocation() {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(&[1.0f32, 2.0]);
        let ptr = v.as_ptr();
        let cap = v.capacity();
        let out = Payload::F32(v).into_f32();
        assert_eq!(out.as_ptr(), ptr, "into_f32 must not reallocate");
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn into_f32_round_trips_non_finite_values() {
        let v = vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0];
        let out = Payload::F32(v.clone()).into_f32();
        assert_eq!(out.len(), 4);
        assert!(out[0].is_nan());
        assert_eq!(out[1], f32::INFINITY);
        assert_eq!(out[2], f32::NEG_INFINITY);
        assert_eq!(out[3].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    #[should_panic(expected = "expected F32")]
    fn empty_payload_is_not_f32() {
        Payload::Empty.into_f32();
    }

    #[test]
    fn kind_names_match_variants() {
        assert_eq!(Payload::Empty.kind(), "Empty");
        assert_eq!(Payload::F32(Vec::new()).kind(), "F32");
        assert_eq!(Payload::F64(Vec::new()).kind(), "F64");
        assert_eq!(Payload::U64(Vec::new()).kind(), "U64");
        assert_eq!(Payload::Bytes(Vec::new()).kind(), "Bytes");
    }
}
