//! Halo-padded 3-D field arrays.
//!
//! Fields are stored x-fastest (the `i` index is contiguous), mirroring the
//! Fortran `(i,j,k)` layout of the original AWP-ODC inner loops, so the
//! compute kernels stream unit-stride along x exactly like the paper's
//! cache-blocked subroutines (§IV.B).

use crate::dims::{Dims3, Idx3};

/// A 3-D array of `f32` with a uniform halo (ghost) padding on every side.
///
/// Interior indices run over `0..n` per axis; halo cells are addressed with
/// negative indices or indices `>= n`, up to `halo` cells beyond the interior.
#[derive(Debug, Clone, PartialEq)]
pub struct Array3 {
    interior: Dims3,
    halo: usize,
    /// Total (padded) extent per axis.
    total: Dims3,
    data: Vec<f32>,
}

impl Array3 {
    /// Allocate a zero-filled array with the given interior extent and halo.
    pub fn new(interior: Dims3, halo: usize) -> Self {
        let total = Dims3::new(
            interior.nx + 2 * halo,
            interior.ny + 2 * halo,
            interior.nz + 2 * halo,
        );
        Self {
            interior,
            halo,
            total,
            data: vec![0.0; total.count()],
        }
    }

    /// Allocate filled with a constant.
    pub fn filled(interior: Dims3, halo: usize, v: f32) -> Self {
        let mut a = Self::new(interior, halo);
        a.fill(v);
        a
    }

    pub fn interior(&self) -> Dims3 {
        self.interior
    }

    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Padded extent per axis.
    pub fn total(&self) -> Dims3 {
        self.total
    }

    /// Linear strides `(1, sx, sx*sy)` of the padded layout.
    #[inline]
    pub fn strides(&self) -> (usize, usize) {
        (self.total.nx, self.total.nx * self.total.ny)
    }

    /// Linear offset of a (possibly halo) point.
    #[inline]
    pub fn offset(&self, i: isize, j: isize, k: isize) -> usize {
        let h = self.halo as isize;
        debug_assert!(i >= -h && i < self.interior.nx as isize + h, "i={i}");
        debug_assert!(j >= -h && j < self.interior.ny as isize + h, "j={j}");
        debug_assert!(k >= -h && k < self.interior.nz as isize + h, "k={k}");
        let (sy, sz) = self.strides();
        (i + h) as usize + sy * (j + h) as usize + sz * (k + h) as usize
    }

    #[inline]
    pub fn get(&self, i: isize, j: isize, k: isize) -> f32 {
        self.data[self.offset(i, j, k)]
    }

    #[inline]
    pub fn set(&mut self, i: isize, j: isize, k: isize, v: f32) {
        let o = self.offset(i, j, k);
        self.data[o] = v;
    }

    #[inline]
    pub fn add(&mut self, i: isize, j: isize, k: isize, v: f32) {
        let o = self.offset(i, j, k);
        self.data[o] += v;
    }

    /// Interior value by unsigned index.
    #[inline]
    pub fn at(&self, idx: Idx3) -> f32 {
        self.get(idx.i as isize, idx.j as isize, idx.k as isize)
    }

    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Raw padded storage (includes halos).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Copy the interior (halo excluded) into a contiguous vector, x-fastest.
    pub fn interior_to_vec(&self) -> Vec<f32> {
        let d = self.interior;
        let mut out = Vec::with_capacity(d.count());
        for k in 0..d.nz {
            for j in 0..d.ny {
                let base = self.offset(0, j as isize, k as isize);
                out.extend_from_slice(&self.data[base..base + d.nx]);
            }
        }
        out
    }

    /// Fill the interior from a contiguous x-fastest vector.
    pub fn interior_from_slice(&mut self, src: &[f32]) {
        let d = self.interior;
        assert_eq!(src.len(), d.count(), "interior size mismatch");
        for k in 0..d.nz {
            for j in 0..d.ny {
                let base = self.offset(0, j as isize, k as isize);
                let s = d.nx * (j + d.ny * k);
                self.data[base..base + d.nx].copy_from_slice(&src[s..s + d.nx]);
            }
        }
    }

    /// Maximum absolute interior value.
    pub fn max_abs(&self) -> f32 {
        let d = self.interior;
        let mut m = 0.0f32;
        for k in 0..d.nz {
            for j in 0..d.ny {
                let base = self.offset(0, j as isize, k as isize);
                for v in &self.data[base..base + d.nx] {
                    m = m.max(v.abs());
                }
            }
        }
        m
    }

    /// Sum of squared interior values (f64 accumulator).
    pub fn sumsq(&self) -> f64 {
        let d = self.interior;
        let mut s = 0.0f64;
        for k in 0..d.nz {
            for j in 0..d.ny {
                let base = self.offset(0, j as isize, k as isize);
                for v in &self.data[base..base + d.nx] {
                    s += (*v as f64) * (*v as f64);
                }
            }
        }
        s
    }

    /// Apply `f` to every interior cell.
    pub fn map_interior(&mut self, mut f: impl FnMut(Idx3, f32) -> f32) {
        let d = self.interior;
        for k in 0..d.nz {
            for j in 0..d.ny {
                let base = self.offset(0, j as isize, k as isize);
                for i in 0..d.nx {
                    let v = self.data[base + i];
                    self.data[base + i] = f(Idx3::new(i, j, k), v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed_and_padded() {
        let a = Array3::new(Dims3::new(3, 4, 5), 2);
        assert_eq!(a.total(), Dims3::new(7, 8, 9));
        assert_eq!(a.as_slice().len(), 7 * 8 * 9);
        assert!(a.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn halo_indices_are_addressable() {
        let mut a = Array3::new(Dims3::new(3, 3, 3), 2);
        a.set(-2, -2, -2, 1.5);
        a.set(4, 4, 4, 2.5);
        assert_eq!(a.get(-2, -2, -2), 1.5);
        assert_eq!(a.get(4, 4, 4), 2.5);
        // Interior untouched.
        assert_eq!(a.get(0, 0, 0), 0.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_halo_panics_in_debug() {
        let a = Array3::new(Dims3::new(3, 3, 3), 1);
        let _ = a.get(-2, 0, 0);
    }

    #[test]
    fn interior_round_trip() {
        let d = Dims3::new(4, 3, 2);
        let mut a = Array3::new(d, 2);
        let src: Vec<f32> = (0..d.count()).map(|v| v as f32).collect();
        a.interior_from_slice(&src);
        assert_eq!(a.interior_to_vec(), src);
        // Layout: x fastest.
        assert_eq!(a.get(1, 0, 0), 1.0);
        assert_eq!(a.get(0, 1, 0), 4.0);
        assert_eq!(a.get(0, 0, 1), 12.0);
    }

    #[test]
    fn interior_round_trip_leaves_halo_untouched() {
        let d = Dims3::new(2, 2, 2);
        let mut a = Array3::filled(d, 1, 7.0);
        a.interior_from_slice(&vec![1.0; d.count()]);
        assert_eq!(a.get(-1, 0, 0), 7.0);
        assert_eq!(a.get(2, 1, 1), 7.0);
        assert_eq!(a.get(0, 0, 0), 1.0);
    }

    #[test]
    fn max_abs_ignores_halo() {
        let mut a = Array3::new(Dims3::new(2, 2, 2), 1);
        a.set(-1, 0, 0, 100.0);
        a.set(1, 1, 1, -3.0);
        assert_eq!(a.max_abs(), 3.0);
    }

    #[test]
    fn sumsq_matches_manual() {
        let mut a = Array3::new(Dims3::new(2, 1, 1), 2);
        a.set(0, 0, 0, 3.0);
        a.set(1, 0, 0, 4.0);
        assert_eq!(a.sumsq(), 25.0);
    }

    #[test]
    fn map_interior_visits_every_cell_once() {
        let d = Dims3::new(3, 2, 2);
        let mut a = Array3::new(d, 2);
        let mut n = 0;
        a.map_interior(|_, v| {
            n += 1;
            v + 1.0
        });
        assert_eq!(n, d.count());
        assert_eq!(a.sumsq(), d.count() as f64);
    }

    #[test]
    fn offset_matches_strides() {
        let a = Array3::new(Dims3::new(3, 4, 5), 2);
        let (sy, sz) = a.strides();
        assert_eq!(a.offset(0, 0, 0), 2 + sy * 2 + sz * 2);
        assert_eq!(a.offset(1, 0, 0) - a.offset(0, 0, 0), 1);
        assert_eq!(a.offset(0, 1, 0) - a.offset(0, 0, 0), sy);
        assert_eq!(a.offset(0, 0, 1) - a.offset(0, 0, 0), sz);
    }
}
