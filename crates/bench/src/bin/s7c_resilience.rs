//! §VII resilience: Young/Daly optimal checkpoint-interval sweep.
//!
//! The M8 production run rode through hardware failures on
//! checkpoint/restart; this harness sweeps the checkpoint cadence for an
//! M8-scale run on each Table-1 machine and reports Young's and Daly's
//! optima, the modeled overhead at each, and the expected wall-clock
//! inflation over the failure-free solve.

use awp_bench::{fmt_time, save_record, section};
use awp_perfmodel::machines::Machine;
use awp_perfmodel::resilience::{
    daly_interval, expected_wall_clock, expected_wall_clock_inflight, inflight_saving,
    interval_to_steps, overhead_fraction, sweep, young_interval, InFlightRecovery,
    ResilienceInput,
};
use serde_json::json;

fn main() {
    section("§VII resilience — Young/Daly optimal checkpoint interval");

    // M8-scale reference point: a 24-hour solve whose full checkpoint
    // epoch (all ranks' wavefields to the parallel filesystem) costs
    // 5 minutes and whose restart (teardown, newest-consistent-epoch
    // read, output rewind) costs 10.
    let solve_time = 24.0 * 3600.0;
    let ckpt_cost = 300.0;
    let restart_cost = 600.0;
    // Supervised in-flight recovery: a rollback-rejoin cycle (quarantine
    // drain, rollback barrier, backoff, respawn) costs ~30 s — no
    // teardown, no input re-read — and absorbs ~90% of failures before
    // they degrade to a whole-run restart.
    let rec = InFlightRecovery { recovery_cost: 30.0, success_prob: 0.9 };

    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12} {:>8}",
        "machine", "MTBF", "τ_young", "τ_daly", "overhead", "wall-clock", "in-flight", "saving"
    );
    let mut rows = Vec::new();
    for m in Machine::ALL {
        let p = m.profile();
        // MTBF estimate: component failures are roughly independent, so
        // system MTBF shrinks inversely with partition size — anchored
        // at 12 h for the ~100k-core class the paper ran on.
        let mtbf = 12.0 * 3600.0 * 100_000.0 / p.cores_used as f64;
        let inp = ResilienceInput { ckpt_cost, restart_cost, mtbf, solve_time };
        let ty = young_interval(ckpt_cost, mtbf);
        let td = daly_interval(ckpt_cost, mtbf);
        let ov = overhead_fraction(td, ckpt_cost, mtbf);
        let wall = expected_wall_clock(&inp, td);
        let wall_rec = expected_wall_clock_inflight(&inp, &rec, td);
        let saving = inflight_saving(&inp, &rec, td);
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>9.1}% {:>12} {:>12} {:>7.2}%",
            p.name,
            fmt_time(mtbf),
            fmt_time(ty),
            fmt_time(td),
            ov * 100.0,
            fmt_time(wall),
            fmt_time(wall_rec),
            saving * 100.0,
        );
        rows.push(json!({
            "machine": p.name,
            "cores": p.cores_used,
            "mtbf_s": mtbf,
            "young_s": ty,
            "daly_s": td,
            "overhead_at_daly": ov,
            "expected_wall_clock_s": wall,
            "inflight_wall_clock_s": wall_rec,
            "inflight_saving": saving,
        }));
    }

    section("interval sweep on Jaguar (expected wall-clock vs cadence)");
    let jaguar = Machine::Jaguar.profile();
    let mtbf = 12.0 * 3600.0 * 100_000.0 / jaguar.cores_used as f64;
    let inp = ResilienceInput { ckpt_cost, restart_cost, mtbf, solve_time };
    let pts = sweep(&inp, 120.0, 8.0 * 3600.0, 13);
    println!("{:>12} {:>10} {:>14}", "interval", "overhead", "wall-clock");
    for p in &pts {
        println!(
            "{:>12} {:>9.1}% {:>14}",
            fmt_time(p.interval),
            p.overhead * 100.0,
            fmt_time(p.wall_clock)
        );
    }
    let t_opt = daly_interval(ckpt_cost, mtbf);
    // M8 ran 160 ms of simulated time per ~0.45 s wall-clock step-pair;
    // translate τ into the solver-step cadence the workflow would use.
    let step_wall = 0.45;
    println!(
        "\nDaly optimum τ = {} → checkpoint every {} solver steps at {:.2} s/step",
        fmt_time(t_opt),
        interval_to_steps(t_opt, step_wall),
        step_wall
    );

    save_record(
        "s7c",
        "Young/Daly optimal checkpoint-interval model (§VII resilience)",
        json!({
            "ckpt_cost_s": ckpt_cost,
            "restart_cost_s": restart_cost,
            "solve_time_s": solve_time,
            "inflight_recovery_cost_s": rec.recovery_cost,
            "inflight_success_prob": rec.success_prob,
            "machines": rows,
            "jaguar_sweep": pts.iter().map(|p| json!({
                "interval_s": p.interval,
                "overhead": p.overhead,
                "wall_clock_s": p.wall_clock,
            })).collect::<Vec<_>>(),
        }),
    );
}
