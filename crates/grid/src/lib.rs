//! Structured-grid foundations for the AWP-ODC reproduction.
//!
//! AWP-ODC (Cui et al., SC 2010) solves the 3-D velocity–stress wave
//! equations on a uniform Cartesian mesh with an explicit staggered-grid
//! finite-difference scheme, partitioned across ranks by 3-D domain
//! decomposition with a two-cell ghost (halo) padding layer. This crate
//! provides the building blocks every other crate leans on:
//!
//! * [`Dims3`]/[`Idx3`] — grid extents and indices;
//! * [`Array3`] — a halo-padded, x-fastest 3-D field array;
//! * [`Decomp3`]/[`Subdomain`] — balanced PX×PY×PZ decomposition with
//!   neighbour lookup, matching the paper's Fig. 5;
//! * [`Face`] halo extraction/injection used by the ghost-cell exchange;
//! * cache-blocked loop driving (paper §IV.B, the kblock/jblock scheme);
//! * effective-media averaging (harmonic Lamé means, arithmetic density).

pub mod array3;
pub mod blocking;
pub mod decomp;
pub mod dims;
pub mod face;
pub mod media;
pub mod stagger;

pub use array3::Array3;
pub use blocking::{blocked_tiles, BlockSpec};
pub use decomp::{Decomp3, Subdomain};
pub use dims::{Dims3, Idx3};
pub use face::{Axis, Face};
pub use stagger::StaggerLoc;

/// Halo width required by the fourth-order staggered-grid stencil.
///
/// The D4 operator reaches ±3/2 grid spacings around the update point, so a
/// two-cell padding layer per side is exactly what the paper's ghost-cell
/// exchange maintains (§III.A: "Ghost cells, which occupy a two-cell padding
/// layer").
pub const HALO: usize = 2;

/// Fourth-order staggered-grid difference coefficients (paper Eq. 3).
pub const C1: f32 = 9.0 / 8.0;
/// Fourth-order staggered-grid difference coefficients (paper Eq. 3).
pub const C2: f32 = -1.0 / 24.0;
