//! RFC 1321 MD5, implemented from scratch with an incremental API.
//!
//! AWP-ODC tracks simulation data integrity with MD5: "we generate MD5
//! checksums in parallel at each processor for each mesh sub-array. The
//! parallelized MD5 approach substantially decreases the time needed to
//! generate the checksums for several terabytes of data" (§III.E). The
//! workflow also re-verifies them after transfers (§III.I). MD5 is used
//! here purely as a fast integrity fingerprint, as in the paper — not for
//! security.

/// Per-round left-rotation amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// K[i] = floor(|sin(i+1)| · 2³²), computed once to avoid transcription
/// errors in the 64 constants.
fn k_table() -> &'static [u32; 64] {
    use std::sync::OnceLock;
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let mut k = [0u32; 64];
        for (i, v) in k.iter_mut().enumerate() {
            *v = (((i as f64 + 1.0).sin().abs()) * 4294967296.0).floor() as u32;
        }
        k
    })
}

/// Incremental MD5 hasher.
///
/// ```
/// use awp_pario::Md5;
/// assert_eq!(Md5::digest_hex(b"abc"), "900150983cd24fb0d6963f7d28e17f72");
/// ```
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes.
    len: u64,
    /// Partial block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    pub fn new() -> Self {
        Self {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Feed bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.process_block(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.process_block(block.try_into().unwrap());
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Feed a slice of f32 values (mesh sub-arrays) as little-endian bytes.
    pub fn update_f32(&mut self, data: &[f32]) {
        // Stream in chunks to avoid a full byte copy of multi-GB arrays.
        let mut block = [0u8; 4096];
        for chunk in data.chunks(1024) {
            let bytes = &mut block[..chunk.len() * 4];
            for (i, v) in chunk.iter().enumerate() {
                bytes[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
            }
            self.update(bytes);
        }
    }

    fn process_block(&mut self, block: &[u8; 64]) {
        let k = k_table();
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let (mut a, mut b, mut c, mut d) =
            (self.state[0], self.state[1], self.state[2], self.state[3]);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            let sum = a
                .wrapping_add(f)
                .wrapping_add(k[i])
                .wrapping_add(m[g]);
            b = b.wrapping_add(sum.rotate_left(S[i]));
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }

    /// Finish and return the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80 then zeros to 56 mod 64, then the 64-bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Append length without counting it (update() would re-add to len,
        // but len is no longer read afterwards).
        self.update(&bit_len.to_le_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 16];
        for (i, s) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Finish and return the lowercase hex digest.
    pub fn finalize_hex(self) -> String {
        let d = self.finalize();
        let mut s = String::with_capacity(32);
        for b in d {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// One-shot digest of a byte slice.
    pub fn digest_hex(data: &[u8]) -> String {
        let mut h = Md5::new();
        h.update(data);
        h.finalize_hex()
    }
}

/// Parallel MD5 of per-rank sub-arrays (the paper's scheme): each sub-array
/// gets its own digest, computed concurrently; the collection digest is the
/// MD5 of the concatenated per-chunk digests.
pub fn parallel_digest(chunks: &[&[f32]]) -> (Vec<String>, String) {
    use rayon::prelude::*;
    let per: Vec<String> = chunks
        .par_iter()
        .map(|c| {
            let mut h = Md5::new();
            h.update_f32(c);
            h.finalize_hex()
        })
        .collect();
    let mut top = Md5::new();
    for d in &per {
        top.update(d.as_bytes());
    }
    (per, top.finalize_hex())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(Md5::digest_hex(input.as_bytes()), want, "input {input:?}");
        }
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            Md5::digest_hex(b"The quick brown fox jumps over the lazy dog"),
            "9e107d9d372bb6826bd81d3542a419d6"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = Md5::digest_hex(&data);
        // Irregular chunking crossing block boundaries.
        let mut h = Md5::new();
        let mut pos = 0;
        for step in [1usize, 63, 64, 65, 100, 1000, 7] {
            if pos >= data.len() {
                break;
            }
            let end = (pos + step).min(data.len());
            h.update(&data[pos..end]);
            pos = end;
        }
        h.update(&data[pos..]);
        assert_eq!(h.finalize_hex(), oneshot);
    }

    #[test]
    fn f32_update_matches_byte_update() {
        let vals: Vec<f32> = (0..5000).map(|i| (i as f32).sin()).collect();
        let mut a = Md5::new();
        a.update_f32(&vals);
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut b = Md5::new();
        b.update(&bytes);
        assert_eq!(a.finalize_hex(), b.finalize_hex());
    }

    #[test]
    fn parallel_digest_is_deterministic() {
        let a: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..1000).map(|i| -(i as f32)).collect();
        let (per1, top1) = parallel_digest(&[&a, &b]);
        let (per2, top2) = parallel_digest(&[&a, &b]);
        assert_eq!(per1, per2);
        assert_eq!(top1, top2);
        assert_ne!(per1[0], per1[1]);
        // Order matters for the collection digest.
        let (_, top_rev) = parallel_digest(&[&b, &a]);
        assert_ne!(top1, top_rev);
    }

    #[test]
    fn digest_differs_on_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        let d1 = Md5::digest_hex(&data);
        data[512] ^= 1;
        let d2 = Md5::digest_hex(&data);
        assert_ne!(d1, d2);
    }

    #[test]
    fn length_padding_boundaries() {
        // Messages of length 55, 56, 63, 64, 65 exercise all padding paths.
        for len in [55usize, 56, 63, 64, 65, 119, 120] {
            let data = vec![b'x'; len];
            let d = Md5::digest_hex(&data);
            assert_eq!(d.len(), 32);
            // Compare against incremental one-byte-at-a-time.
            let mut h = Md5::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize_hex(), d, "len {len}");
        }
    }
}
