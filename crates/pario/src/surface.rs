//! Reading back the aggregated surface-velocity output file.
//!
//! The paper's workflow derives data products (dPDA) from the archived
//! outputs — PGV maps, visualisations, spectral analyses — rather than
//! from in-memory state. This module reads the record-major shared file
//! written by [`crate::output`] back into per-rank time series, so the
//! whole output path (aggregation → displacement writes → archive) is
//! verifiable against the solver's in-memory results.

use crate::output::OutputPlan;
use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;

/// Reader over a surface output file.
pub struct SurfaceReader {
    file: File,
    plan: OutputPlan,
    /// Number of saved records present (derived from file length).
    records: usize,
}

impl SurfaceReader {
    /// Open a file written under `plan`.
    pub fn open(path: &Path, plan: OutputPlan) -> io::Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let rec_bytes = (plan.ranks * plan.rank_len * 4) as u64;
        if rec_bytes == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty output plan"));
        }
        let records = (len / rec_bytes) as usize;
        Ok(Self { file, plan, records })
    }

    /// Saved records available.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Read rank `r`'s block of record `rec`.
    pub fn read_block(&self, rec: usize, rank: usize) -> io::Result<Vec<f32>> {
        if rec >= self.records || rank >= self.plan.ranks {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "record/rank out of range"));
        }
        let mut bytes = vec![0u8; self.plan.rank_len * 4];
        self.file.read_exact_at(&mut bytes, self.plan.offset(rec, rank))?;
        Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
    }

    /// Peak |v_h| per surface cell for one rank across all records — the
    /// file-derived PGV fragment. Blocks hold interleaved `(vx, vy, vz)`
    /// per cell; `cells` is the rank's true cell count (blocks may be
    /// zero-padded to `rank_len`).
    pub fn pgv_fragment(&self, rank: usize, cells: usize) -> io::Result<Vec<f32>> {
        assert!(cells * 3 <= self.plan.rank_len, "cells exceed the block");
        let mut pgv = vec![0.0f32; cells];
        for rec in 0..self.records {
            let block = self.read_block(rec, rank)?;
            for (c, p) in pgv.iter_mut().enumerate() {
                let vx = block[3 * c];
                let vy = block[3 * c + 1];
                let h = (vx * vx + vy * vy).sqrt();
                if h > *p {
                    *p = h;
                }
            }
        }
        Ok(pgv)
    }

    /// A single cell's three-component velocity time series (sampled at
    /// the decimated cadence).
    pub fn cell_series(&self, rank: usize, cell: usize) -> io::Result<(Vec<f32>, Vec<f32>, Vec<f32>)> {
        assert!(cell * 3 + 2 < self.plan.rank_len);
        let mut vx = Vec::with_capacity(self.records);
        let mut vy = Vec::with_capacity(self.records);
        let mut vz = Vec::with_capacity(self.records);
        for rec in 0..self.records {
            let block = self.read_block(rec, rank)?;
            vx.push(block[3 * cell]);
            vy.push(block[3 * cell + 1]);
            vz.push(block[3 * cell + 2]);
        }
        Ok((vx, vy, vz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::{OutputAggregator, SharedFileWriter};

    fn write_test_file(dir: &Path, plan: OutputPlan, steps: usize) -> std::path::PathBuf {
        let path = dir.join("surf.bin");
        let w = SharedFileWriter::create(&path).unwrap();
        let mut aggs: Vec<_> = (0..plan.ranks).map(|r| OutputAggregator::new(plan, r)).collect();
        for step in 0..steps {
            for (r, agg) in aggs.iter_mut().enumerate() {
                // vx = step + rank, vy = 2·step, vz = −1, for 2 cells.
                let s = step as f32;
                let data = vec![s + r as f32, 2.0 * s, -1.0, s + r as f32 + 0.5, 2.0 * s, -1.0];
                agg.record(step, &data, &w).unwrap();
            }
        }
        for agg in &mut aggs {
            agg.flush(&w).unwrap();
        }
        path
    }

    #[test]
    fn reads_back_what_was_aggregated() {
        let dir = tempfile::tempdir().unwrap();
        let plan = OutputPlan { decimate: 2, flush_every: 5, rank_len: 6, ranks: 2 };
        let path = write_test_file(dir.path(), plan, 10);
        let r = SurfaceReader::open(&path, plan).unwrap();
        assert_eq!(r.records(), 5, "steps 0,2,4,6,8 saved");
        let block = r.read_block(3, 1).unwrap(); // step 6, rank 1
        assert_eq!(block[0], 7.0);
        assert_eq!(block[1], 12.0);
    }

    #[test]
    fn file_derived_pgv_matches_history() {
        let dir = tempfile::tempdir().unwrap();
        let plan = OutputPlan { decimate: 1, flush_every: 4, rank_len: 6, ranks: 2 };
        let path = write_test_file(dir.path(), plan, 8);
        let r = SurfaceReader::open(&path, plan).unwrap();
        let pgv = r.pgv_fragment(0, 2).unwrap();
        // Max over steps of hypot(step, 2 step) = step·√5 at step 7.
        let want = (7.0f32.powi(2) + 14.0f32.powi(2)).sqrt();
        assert!((pgv[0] - want).abs() < 1e-5, "{} vs {want}", pgv[0]);
        assert!(pgv[1] > pgv[0], "second cell has +0.5 vx");
    }

    #[test]
    fn cell_series_round_trips() {
        let dir = tempfile::tempdir().unwrap();
        let plan = OutputPlan { decimate: 1, flush_every: 3, rank_len: 6, ranks: 1 };
        let path = write_test_file(dir.path(), plan, 6);
        let r = SurfaceReader::open(&path, plan).unwrap();
        let (vx, vy, vz) = r.cell_series(0, 0).unwrap();
        assert_eq!(vx, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(vy, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        assert!(vz.iter().all(|&v| v == -1.0));
    }

    #[test]
    fn out_of_range_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let plan = OutputPlan { decimate: 1, flush_every: 3, rank_len: 6, ranks: 1 };
        let path = write_test_file(dir.path(), plan, 3);
        let r = SurfaceReader::open(&path, plan).unwrap();
        assert!(r.read_block(99, 0).is_err());
        assert!(r.read_block(0, 5).is_err());
    }
}
