//! Parallel velocity output: aggregation buffers + explicit-displacement
//! shared-file writes (paper §III.E).
//!
//! AWP-ODC writes velocity output "concurrently … to a single file" using
//! MPI-IO file views with explicit displacements, and aggregates records in
//! memory so the file is touched only "every 20K time steps" — the
//! optimisation that cut I/O overhead from 49 % to under 2 %. M8 "saved the
//! ground velocity vector at every 20th time step" (temporal decimation).

use awp_telemetry::{Counter, Phase, Recorder};
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// A shared output file written at explicit byte displacements by many
/// ranks concurrently (the MPI-IO stand-in). "Instead of using individual
/// file handles and associated offsets, we use explicit displacements to
/// perform data accesses at the specific locations for all the
/// participating processors."
pub struct SharedFileWriter {
    file: File,
    transactions: AtomicU64,
    bytes: AtomicU64,
}

impl SharedFileWriter {
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        Ok(Self { file, transactions: AtomicU64::new(0), bytes: AtomicU64::new(0) })
    }

    /// Re-open an existing shared file *without* truncating it — used when
    /// a fresh process resumes a checkpointed run and must preserve the
    /// records flushed before the failure.
    pub fn open_existing(path: &Path) -> io::Result<Self> {
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        Ok(Self { file, transactions: AtomicU64::new(0), bytes: AtomicU64::new(0) })
    }

    /// Write f32 values at an explicit byte displacement (thread-safe; one
    /// I/O transaction).
    pub fn write_f32_at(&self, byte_offset: u64, data: &[f32]) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.file.write_at(&bytes, byte_offset)?;
        self.transactions.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Read f32 values back (verification).
    pub fn read_f32_at(&self, byte_offset: u64, n: usize) -> io::Result<Vec<f32>> {
        let mut bytes = vec![0u8; n * 4];
        self.file.read_exact_at(&mut bytes, byte_offset)?;
        Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
    }

    /// Number of write transactions so far — the quantity the aggregation
    /// scheme minimises.
    pub fn transactions(&self) -> u64 {
        self.transactions.load(Ordering::Relaxed)
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_all()
    }
}

/// Output plan shared by all ranks: temporal decimation plus aggregation
/// interval, and the per-rank record layout within each saved step.
#[derive(Debug, Clone, Copy)]
pub struct OutputPlan {
    /// Save every `decimate`-th time step (M8: 20).
    pub decimate: usize,
    /// Flush aggregated records every `flush_every` time steps (M8: 20 000).
    pub flush_every: usize,
    /// f32 values per rank per saved step.
    pub rank_len: usize,
    /// Number of ranks sharing the file.
    pub ranks: usize,
}

impl OutputPlan {
    /// Byte offset of rank `r`'s block for saved-record index `rec`.
    /// Layout is record-major: all ranks' blocks for record 0, then
    /// record 1, …
    pub fn offset(&self, rec: usize, rank: usize) -> u64 {
        debug_assert!(rank < self.ranks);
        ((rec * self.ranks + rank) * self.rank_len * 4) as u64
    }

    /// Whether `step` is a saved step.
    pub fn saves(&self, step: usize) -> bool {
        step % self.decimate == 0
    }

    /// Saved-record index of a saved step.
    pub fn record_index(&self, step: usize) -> usize {
        debug_assert!(self.saves(step));
        step / self.decimate
    }
}

/// Per-rank aggregation buffer.
pub struct OutputAggregator {
    plan: OutputPlan,
    rank: usize,
    /// (record index, data) pairs awaiting flush.
    pending: Vec<(usize, Vec<f32>)>,
    flushes: u64,
}

impl OutputAggregator {
    pub fn new(plan: OutputPlan, rank: usize) -> Self {
        assert!(rank < plan.ranks);
        assert!(plan.decimate > 0 && plan.flush_every > 0 && plan.rank_len > 0);
        Self { plan, rank, pending: Vec::new(), flushes: 0 }
    }

    /// Offer this step's data; buffered only on saved steps. Flushes to the
    /// shared file when the aggregation interval elapses.
    pub fn record(
        &mut self,
        step: usize,
        data: &[f32],
        writer: &SharedFileWriter,
    ) -> io::Result<()> {
        self.record_traced(step, data, writer, &mut Recorder::disabled())
    }

    /// [`record`](Self::record) with telemetry: buffering stays unprobed
    /// (it is pure memory traffic); only an interval-triggered flush shows
    /// up, as a [`Phase::Output`] span via [`flush_traced`](Self::flush_traced).
    pub fn record_traced(
        &mut self,
        step: usize,
        data: &[f32],
        writer: &SharedFileWriter,
        tel: &mut Recorder,
    ) -> io::Result<()> {
        if self.plan.saves(step) {
            assert_eq!(data.len(), self.plan.rank_len, "record length mismatch");
            self.pending.push((self.plan.record_index(step), data.to_vec()));
        }
        if step > 0 && step % self.plan.flush_every == 0 {
            self.flush_traced(writer, tel)?;
        }
        Ok(())
    }

    /// Write all pending records at their displacements.
    pub fn flush(&mut self, writer: &SharedFileWriter) -> io::Result<()> {
        self.flush_traced(writer, &mut Recorder::disabled())
    }

    /// [`flush`](Self::flush) with telemetry: the drain of the aggregation
    /// buffer becomes a [`Phase::Output`] span and the flushed payload is
    /// charged to [`Counter::OutputBytes`]. An empty flush records nothing.
    pub fn flush_traced(
        &mut self,
        writer: &SharedFileWriter,
        tel: &mut Recorder,
    ) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let bytes = self.buffered_bytes() as u64;
        let t0 = tel.start();
        // Coalesce contiguous record runs into single transactions when the
        // rank's blocks are adjacent (single-rank case) — otherwise one
        // write per record.
        for (rec, data) in self.pending.drain(..) {
            writer.write_f32_at(self.plan.offset(rec, self.rank), &data)?;
        }
        self.flushes += 1;
        tel.count(Counter::OutputBytes, bytes);
        tel.finish(t0, Phase::Output);
        Ok(())
    }

    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }

    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Bytes currently held in the aggregation buffer (the "memory buffer
    /// allocation for buffer aggregation" of §III.G).
    pub fn buffered_bytes(&self) -> usize {
        self.pending.iter().map(|(_, d)| d.len() * 4).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_offsets_tile_the_file() {
        let plan = OutputPlan { decimate: 2, flush_every: 10, rank_len: 3, ranks: 4 };
        // Record 0: ranks at 0, 12, 24, 36; record 1 starts at 48.
        assert_eq!(plan.offset(0, 0), 0);
        assert_eq!(plan.offset(0, 1), 12);
        assert_eq!(plan.offset(0, 3), 36);
        assert_eq!(plan.offset(1, 0), 48);
    }

    #[test]
    fn decimation_selects_steps() {
        let plan = OutputPlan { decimate: 20, flush_every: 100, rank_len: 1, ranks: 1 };
        assert!(plan.saves(0));
        assert!(!plan.saves(19));
        assert!(plan.saves(40));
        assert_eq!(plan.record_index(40), 2);
    }

    #[test]
    fn aggregator_buffers_until_flush_interval() {
        let dir = tempfile::tempdir().unwrap();
        let w = SharedFileWriter::create(&dir.path().join("out.bin")).unwrap();
        let plan = OutputPlan { decimate: 2, flush_every: 10, rank_len: 2, ranks: 1 };
        let mut agg = OutputAggregator::new(plan, 0);
        for step in 0..10 {
            agg.record(step, &[step as f32, -(step as f32)], &w).unwrap();
        }
        // Steps 0,2,4,6,8 saved; no flush boundary hit yet (step 10 not recorded).
        assert_eq!(agg.pending_records(), 5);
        assert_eq!(w.transactions(), 0);
        agg.record(10, &[10.0, -10.0], &w).unwrap();
        assert_eq!(agg.pending_records(), 0, "flush at step 10");
        assert_eq!(w.transactions(), 6);
        assert_eq!(agg.flushes(), 1);
    }

    #[test]
    fn aggregation_reduces_transactions() {
        // Same data, two plans: per-step flush vs aggregated flush.
        let dir = tempfile::tempdir().unwrap();
        let run = |flush_every: usize| -> u64 {
            let w = SharedFileWriter::create(&dir.path().join(format!("o{flush_every}.bin")))
                .unwrap();
            let plan = OutputPlan { decimate: 1, flush_every, rank_len: 4, ranks: 1 };
            let mut agg = OutputAggregator::new(plan, 0);
            for step in 0..100 {
                agg.record(step, &[0.0; 4], &w).unwrap();
            }
            agg.flush(&w).unwrap();
            // Transactions identical (records are written individually) but
            // flush *events* differ; count flushes as the syscall-burst
            // metric.
            agg.flushes()
        };
        assert!(run(1) > run(50) * 10, "aggregation must cut flush events");
    }

    #[test]
    fn multi_rank_layout_round_trips() {
        let dir = tempfile::tempdir().unwrap();
        let w = SharedFileWriter::create(&dir.path().join("multi.bin")).unwrap();
        let plan = OutputPlan { decimate: 1, flush_every: 4, rank_len: 2, ranks: 3 };
        let mut aggs: Vec<_> = (0..3).map(|r| OutputAggregator::new(plan, r)).collect();
        for step in 0..8 {
            for (r, agg) in aggs.iter_mut().enumerate() {
                let v = (step * 10 + r) as f32;
                agg.record(step, &[v, v + 0.5], &w).unwrap();
            }
        }
        for agg in &mut aggs {
            agg.flush(&w).unwrap();
        }
        // Verify record 5, rank 2.
        let got = w.read_f32_at(plan.offset(5, 2), 2).unwrap();
        assert_eq!(got, vec![52.0, 52.5]);
        // Verify record 0, rank 0.
        assert_eq!(w.read_f32_at(plan.offset(0, 0), 2).unwrap(), vec![0.0, 0.5]);
    }

    #[test]
    fn concurrent_rank_writes_do_not_corrupt() {
        let dir = tempfile::tempdir().unwrap();
        let w = std::sync::Arc::new(SharedFileWriter::create(&dir.path().join("c.bin")).unwrap());
        let plan = OutputPlan { decimate: 1, flush_every: 1000, rank_len: 16, ranks: 8 };
        std::thread::scope(|s| {
            for rank in 0..8 {
                let w = w.clone();
                s.spawn(move || {
                    let mut agg = OutputAggregator::new(plan, rank);
                    for step in 0..50 {
                        let data = vec![(rank * 1000 + step) as f32; 16];
                        agg.record(step, &data, &w).unwrap();
                    }
                    agg.flush(&w).unwrap();
                });
            }
        });
        for rank in 0..8 {
            for rec in 0..50 {
                let got = w.read_f32_at(plan.offset(rec, rank), 16).unwrap();
                assert!(got.iter().all(|&v| v == (rank * 1000 + rec) as f32));
            }
        }
    }

    #[test]
    fn traced_flush_records_output_span_and_bytes() {
        let dir = tempfile::tempdir().unwrap();
        let w = SharedFileWriter::create(&dir.path().join("t.bin")).unwrap();
        let plan = OutputPlan { decimate: 1, flush_every: 4, rank_len: 2, ranks: 1 };
        let mut agg = OutputAggregator::new(plan, 0);
        let reg = awp_telemetry::Registry::new(1);
        let mut tel = reg.recorder(0);
        for step in 0..=4 {
            agg.record_traced(step, &[step as f32, 0.0], &w, &mut tel).unwrap();
        }
        let snap = tel.snapshot();
        assert_eq!(snap.phase_count(Phase::Output), 1, "one interval flush at step 4");
        assert!(snap.phase_ns(Phase::Output) > 0);
        assert_eq!(snap.counter(Counter::OutputBytes), w.bytes_written());
        // An empty flush must not fabricate a span.
        agg.flush_traced(&w, &mut tel).unwrap();
        assert_eq!(tel.snapshot().phase_count(Phase::Output), 1);
    }

    #[test]
    #[should_panic(expected = "record length mismatch")]
    fn wrong_record_length_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let w = SharedFileWriter::create(&dir.path().join("x.bin")).unwrap();
        let plan = OutputPlan { decimate: 1, flush_every: 10, rank_len: 4, ranks: 1 };
        let mut agg = OutputAggregator::new(plan, 0);
        agg.record(0, &[1.0, 2.0], &w).unwrap();
    }
}
