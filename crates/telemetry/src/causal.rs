//! Causal cross-rank tracing: message-lineage events, dependency-DAG
//! reconstruction, and critical-path attribution.
//!
//! Every vcluster message envelope carries a Lamport-style logical clock
//! (see [`crate::Recorder::clock_send`] / [`crate::Recorder::clock_recv`]).
//! The hot path records fixed-size [`CausalEvent`] records into the same
//! preallocated per-rank ring discipline as spans — zero allocation and no
//! clock reads when tracing is disarmed. Post-run (or post-mortem), the
//! analyzer here joins send and receive events into cross-rank edges,
//! reconstructs the dependency DAG over the recorded spans, and walks the
//! run's critical path backwards from the last span to attribute wall
//! clock per phase, per rank, and per edge (slack).
//!
//! Clock semantics: each rank keeps a monotonic `u64` clock; a send stamps
//! `clock += 1` onto the envelope, a receive merges `clock =
//! max(clock, envelope) + 1`. Clock *values* depend on delivery order, but
//! the matched edge multiset `(src, dst, tag, bytes)` does not — tags
//! embed `(phase, field, face, step)` so every halo send in a run is
//! uniquely keyed. [`CausalGraph::fingerprint`] hashes that canonical
//! multiset, which is what the schedule/steal fuzzers pin across seeds.

use crate::hist::Log2Hist;
use crate::phase::Phase;
use crate::recorder::Snapshot;
use std::collections::{HashMap, HashSet};

/// Peer value for causal events that have no peer rank (local marks).
pub const NO_PEER: u32 = u32::MAX;

/// What a causal event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CausalKind {
    /// Message posted to `peer`; `clock` is the stamp on the envelope.
    Send,
    /// Message matched from `peer`; `peer_clock` is the envelope stamp,
    /// `clock` the merged local clock.
    Recv,
    /// Aggregated work-stealing edge: this rank executed `bytes` tiles
    /// stolen from `peer`'s dispatch queue.
    Steal,
    /// A local-time-stepping dt-cluster fired (`tag` = cluster id).
    ClusterTick,
    /// The rank rejoined a recovery generation (rollback + respawn).
    Rollback,
    /// Simulation-health sentinel probe (`bytes` = velocity watermark
    /// bits, `tag` = 1 if the probe found a non-finite value).
    Health,
}

impl CausalKind {
    pub const fn name(self) -> &'static str {
        match self {
            CausalKind::Send => "send",
            CausalKind::Recv => "recv",
            CausalKind::Steal => "steal",
            CausalKind::ClusterTick => "cluster_tick",
            CausalKind::Rollback => "rollback",
            CausalKind::Health => "health",
        }
    }
}

/// One fixed-size causal record in the per-rank ring.
#[derive(Debug, Clone, Copy)]
pub struct CausalEvent {
    pub kind: CausalKind,
    /// Local Lamport clock after this event.
    pub clock: u64,
    /// Peer rank ([`NO_PEER`] for local marks).
    pub peer: u32,
    /// Envelope clock as carried on the wire (Recv only; 0 otherwise).
    pub peer_clock: u64,
    pub tag: u64,
    pub bytes: u64,
    pub step: u32,
    /// Offset from the registry epoch, ns.
    pub t_ns: u64,
}

/// A reconstructed cross-rank dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Matched send→recv message edge.
    Message,
    /// Aggregated steal edge (victim → thief, `bytes` = tiles).
    Steal,
}

#[derive(Debug, Clone, Copy)]
pub struct CausalEdge {
    pub kind: EdgeKind,
    pub src: usize,
    pub dst: usize,
    pub tag: u64,
    pub bytes: u64,
    pub send_ns: u64,
    pub recv_ns: u64,
    pub src_clock: u64,
    pub dst_clock: u64,
}

/// One span node of the dependency DAG (a recorded phase interval).
#[derive(Debug, Clone, Copy)]
pub struct GraphSpan {
    pub rank: usize,
    pub phase: Phase,
    pub start_ns: u64,
    pub end_ns: u64,
    pub step: u32,
}

/// The reconstructed cross-rank dependency DAG: span nodes plus matched
/// causal edges. Built either from in-process [`Snapshot`]s or from a
/// parsed Chrome trace (`awp analyze`).
#[derive(Debug)]
pub struct CausalGraph {
    pub spans: Vec<GraphSpan>,
    pub edges: Vec<CausalEdge>,
    /// Receive events whose matching send was not recorded (ring drop or
    /// quarantined sender).
    pub unmatched_recvs: usize,
    pub ranks: usize,
}

/// One hop of the critical path, chronological order.
#[derive(Debug, Clone, Copy)]
pub struct Hop {
    pub rank: usize,
    pub phase: Phase,
    pub step: u32,
    pub start_ns: u64,
    pub end_ns: u64,
    /// Idle gap attributed between the previous hop's handoff and this
    /// span's start.
    pub slack_ns: u64,
    /// Span time this hop newly contributes (overlap-clamped).
    pub contrib_ns: u64,
    /// The cross-rank edge that led into this hop's successor position
    /// (`None` for same-rank succession).
    pub via: Option<CausalEdge>,
}

/// Critical-path attribution of the run's wall clock.
#[derive(Debug)]
pub struct CriticalPath {
    pub hops: Vec<Hop>,
    /// Trace extent: latest span end − earliest span start, ns.
    pub wall_ns: u64,
    /// Span time on the path (overlap-clamped), ns.
    pub span_ns: u64,
    /// Idle/edge slack on the path, ns.
    pub slack_ns: u64,
    /// Span time on the path per phase.
    pub phase_ns: [u64; Phase::COUNT],
    /// Span time on the path per rank.
    pub rank_ns: Vec<u64>,
    /// Per-rank log2 histogram of hop slack (ns buckets).
    pub rank_slack: Vec<Log2Hist>,
}

impl CriticalPath {
    /// Fraction of the trace wall clock the path explains (span + slack).
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        (self.span_ns + self.slack_ns) as f64 / self.wall_ns as f64
    }

    /// Fraction of the trace wall clock spent inside path spans.
    pub fn span_frac(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.span_ns as f64 / self.wall_ns as f64
    }

    /// Cross-rank hops with the largest slack, descending.
    pub fn top_edges(&self, n: usize) -> Vec<&Hop> {
        let mut hops: Vec<&Hop> = self.hops.iter().filter(|h| h.via.is_some()).collect();
        hops.sort_by_key(|h| std::cmp::Reverse(h.slack_ns));
        hops.truncate(n);
        hops
    }
}

/// Check that every rank's recorded causal clocks are strictly
/// increasing (each event ticks the Lamport clock exactly once).
pub fn clocks_monotonic(snaps: &[Snapshot]) -> bool {
    snaps.iter().all(|s| s.causal.windows(2).all(|w| w[0].clock < w[1].clock))
}

impl CausalGraph {
    /// Assemble a graph from pre-extracted parts (the `awp analyze` path:
    /// spans and edges parsed back out of a Chrome trace).
    pub fn new(spans: Vec<GraphSpan>, edges: Vec<CausalEdge>, unmatched_recvs: usize) -> Self {
        let ranks = spans
            .iter()
            .map(|s| s.rank + 1)
            .chain(edges.iter().map(|e| e.src.max(e.dst) + 1))
            .max()
            .unwrap_or(0);
        CausalGraph { spans, edges, unmatched_recvs, ranks }
    }

    /// Reconstruct the DAG from per-rank snapshots: spans become nodes,
    /// send/recv causal events are joined on `(src, dst, tag, envelope
    /// clock)` into message edges, steal marks become steal edges.
    pub fn from_snapshots(snaps: &[Snapshot]) -> Self {
        let mut spans = Vec::new();
        for s in snaps {
            for sp in &s.spans {
                spans.push(GraphSpan {
                    rank: s.rank,
                    phase: sp.phase,
                    start_ns: sp.start_ns,
                    end_ns: sp.start_ns + sp.dur_ns,
                    step: sp.step,
                });
            }
        }
        // Join: a receive on rank d carries (peer = src, tag, peer_clock =
        // the envelope stamp); the matching send on rank src carries the
        // same (dst = d, tag, clock). Entries stay in the map so a
        // fault-injected duplicate delivery still matches.
        let mut sends: HashMap<(u32, u32, u64, u64), CausalEvent> = HashMap::new();
        for s in snaps {
            for ev in &s.causal {
                if ev.kind == CausalKind::Send {
                    sends.insert((s.rank as u32, ev.peer, ev.tag, ev.clock), *ev);
                }
            }
        }
        let mut edges = Vec::new();
        let mut unmatched = 0usize;
        for s in snaps {
            for ev in &s.causal {
                match ev.kind {
                    CausalKind::Recv => {
                        let key = (ev.peer, s.rank as u32, ev.tag, ev.peer_clock);
                        if let Some(send) = sends.get(&key) {
                            edges.push(CausalEdge {
                                kind: EdgeKind::Message,
                                src: ev.peer as usize,
                                dst: s.rank,
                                tag: ev.tag,
                                bytes: ev.bytes,
                                send_ns: send.t_ns,
                                recv_ns: ev.t_ns,
                                src_clock: send.clock,
                                dst_clock: ev.clock,
                            });
                        } else {
                            unmatched += 1;
                        }
                    }
                    CausalKind::Steal => {
                        edges.push(CausalEdge {
                            kind: EdgeKind::Steal,
                            src: ev.peer as usize,
                            dst: s.rank,
                            tag: ev.tag,
                            bytes: ev.bytes,
                            send_ns: ev.t_ns,
                            recv_ns: ev.t_ns,
                            src_clock: ev.clock,
                            dst_clock: ev.clock,
                        });
                    }
                    _ => {}
                }
            }
        }
        CausalGraph::new(spans, edges, unmatched)
    }

    /// Every matched message edge must observe Lamport order: the
    /// sender's stamp strictly precedes the receiver's merged clock.
    pub fn clock_order_holds(&self) -> bool {
        self.edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Message)
            .all(|e| e.src_clock < e.dst_clock)
    }

    /// Order-invariant FNV-1a hash of the canonical message-edge multiset
    /// `(src, dst, tag, bytes)`. Steal edges and raw clock values are
    /// excluded on purpose: both are timing/delivery-order dependent,
    /// while the message lineage is not.
    pub fn fingerprint(&self) -> u64 {
        let mut keys: Vec<[u64; 4]> = self
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Message)
            .map(|e| [e.src as u64, e.dst as u64, e.tag, e.bytes])
            .collect();
        keys.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for k in &keys {
            for v in k {
                for b in v.to_le_bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        h
    }

    /// Total message bytes on matched edges.
    pub fn message_bytes(&self) -> u64 {
        self.edges.iter().filter(|e| e.kind == EdgeKind::Message).map(|e| e.bytes).sum()
    }

    /// Walk the critical path backwards from the latest-ending span.
    ///
    /// At each span the predecessor candidates are (a) the latest
    /// earlier-ending span on the same rank and (b) for every message
    /// edge whose receive lands inside the span, the sender's span
    /// covering the send instant. The candidate with the latest causal
    /// handoff time wins (minimum slack). The walk attributes the wall
    /// clock along the chain: overlap-clamped span time per phase/rank
    /// plus idle slack per hop.
    pub fn critical_path(&self) -> CriticalPath {
        let ranks = self.ranks;
        let mut path = CriticalPath {
            hops: Vec::new(),
            wall_ns: 0,
            span_ns: 0,
            slack_ns: 0,
            phase_ns: [0; Phase::COUNT],
            rank_ns: vec![0; ranks],
            rank_slack: vec![Log2Hist::new(); ranks],
        };
        if self.spans.is_empty() {
            return path;
        }
        let t_min = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let t_max = self.spans.iter().map(|s| s.end_ns).max().unwrap_or(0);
        path.wall_ns = t_max - t_min;

        // Per-rank span indices sorted by end time (for "latest span
        // ending before t" queries) and message edges indexed by dst.
        let mut by_end: Vec<Vec<usize>> = vec![Vec::new(); ranks];
        for (i, s) in self.spans.iter().enumerate() {
            by_end[s.rank].push(i);
        }
        for v in &mut by_end {
            v.sort_by_key(|&i| self.spans[i].end_ns);
        }
        let mut edges_by_dst: Vec<Vec<usize>> = vec![Vec::new(); ranks];
        for (i, e) in self.edges.iter().enumerate() {
            if e.kind == EdgeKind::Message && e.dst < ranks {
                edges_by_dst[e.dst].push(i);
            }
        }

        // Latest span on `rank` with end <= t, excluding visited.
        let latest_before = |rank: usize, t: u64, visited: &HashSet<usize>| -> Option<usize> {
            let v = &by_end[rank];
            let mut lo = v.partition_point(|&i| self.spans[i].end_ns <= t);
            while lo > 0 {
                lo -= 1;
                if !visited.contains(&v[lo]) {
                    return Some(v[lo]);
                }
            }
            None
        };
        // Span on `rank` covering instant t (latest-starting cover), or
        // the latest span ending before t.
        let covering = |rank: usize, t: u64, visited: &HashSet<usize>| -> Option<usize> {
            let mut best: Option<usize> = None;
            for &i in &by_end[rank] {
                let s = &self.spans[i];
                if s.start_ns <= t && t <= s.end_ns && !visited.contains(&i) {
                    best = Some(match best {
                        Some(b) if self.spans[b].start_ns >= s.start_ns => b,
                        _ => i,
                    });
                }
            }
            best.or_else(|| latest_before(rank, t, visited))
        };

        let start_idx = (0..self.spans.len())
            .max_by_key(|&i| self.spans[i].end_ns)
            .expect("non-empty spans");
        let mut visited: HashSet<usize> = HashSet::new();
        let mut rev: Vec<(usize, Option<CausalEdge>)> = Vec::new();
        let mut cur = start_idx;
        visited.insert(cur);
        loop {
            let cs = self.spans[cur];
            // Candidate a: same-rank predecessor.
            let mut best: Option<(u64, usize, Option<CausalEdge>)> =
                latest_before(cs.rank, cs.start_ns, &visited)
                    .map(|i| (self.spans[i].end_ns, i, None));
            // Candidate b: message edges received inside this span.
            if cs.rank < ranks {
                for &ei in &edges_by_dst[cs.rank] {
                    let e = self.edges[ei];
                    if e.recv_ns < cs.start_ns || e.recv_ns > cs.end_ns || e.src >= ranks {
                        continue;
                    }
                    if let Some(pi) = covering(e.src, e.send_ns, &visited) {
                        // Handoff happens at the send instant.
                        let handoff = e.send_ns;
                        if best.as_ref().is_none_or(|b| handoff > b.0) {
                            best = Some((handoff, pi, Some(e)));
                        }
                    }
                }
            }
            rev.push((cur, None));
            match best {
                Some((_, pi, via)) => {
                    // The edge annotates the hop it leads *into*.
                    rev.last_mut().expect("just pushed").1 = via;
                    visited.insert(pi);
                    cur = pi;
                }
                None => break,
            }
        }

        // Chronological attribution with an advancing cursor so overlap
        // never double-counts: slack + contrib sums to exactly the path
        // extent.
        rev.reverse();
        let mut cursor = t_min;
        for (i, via) in rev {
            let s = self.spans[i];
            let slack = s.start_ns.saturating_sub(cursor);
            let contrib = s.end_ns.saturating_sub(s.start_ns.max(cursor));
            cursor = cursor.max(s.end_ns);
            path.span_ns += contrib;
            path.slack_ns += slack;
            path.phase_ns[s.phase.index()] += contrib;
            if s.rank < ranks {
                path.rank_ns[s.rank] += contrib;
                path.rank_slack[s.rank].record_ns(slack);
            }
            path.hops.push(Hop {
                rank: s.rank,
                phase: s.phase,
                step: s.step,
                start_ns: s.start_ns,
                end_ns: s.end_ns,
                slack_ns: slack,
                contrib_ns: contrib,
                via,
            });
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use std::time::Instant;

    fn span(rank: usize, phase: Phase, start: u64, end: u64) -> GraphSpan {
        GraphSpan { rank, phase, start_ns: start, end_ns: end, step: 0 }
    }

    #[test]
    fn send_recv_events_join_into_edges() {
        let epoch = Instant::now();
        let mut r0 = Recorder::enabled(0, epoch, 16);
        let mut r1 = Recorder::enabled(1, epoch, 16);
        let c = r0.clock_send();
        r0.causal_send(1, 42, 256, c);
        let merged = r1.clock_recv(c);
        r1.causal_recv(0, 42, 256, c, merged);
        let snaps = [r0.snapshot(), r1.snapshot()];
        assert!(clocks_monotonic(&snaps));
        let g = CausalGraph::from_snapshots(&snaps);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.unmatched_recvs, 0);
        let e = g.edges[0];
        assert_eq!((e.src, e.dst, e.tag, e.bytes), (0, 1, 42, 256));
        assert!(g.clock_order_holds());
        assert!(e.src_clock < e.dst_clock, "Lamport order on the edge");
    }

    #[test]
    fn fingerprint_is_delivery_order_invariant() {
        // Two interleavings of the same traffic: rank 1 merges the
        // envelopes in opposite orders, so its raw clock values differ,
        // but the canonical edge multiset — and the fingerprint — agree.
        let mut prints = Vec::new();
        for flip in [false, true] {
            let epoch = Instant::now();
            let mut r0 = Recorder::enabled(0, epoch, 16);
            let mut r2 = Recorder::enabled(2, epoch, 16);
            let mut r1 = Recorder::enabled(1, epoch, 16);
            let c0 = r0.clock_send();
            r0.causal_send(1, 7, 64, c0);
            let c2 = r2.clock_send();
            let c2b = r2.clock_send();
            r2.causal_send(1, 9, 128, c2b);
            let _ = c2;
            let order: [(u32, u64, u64, u64); 2] =
                if flip { [(2, 9, 128, c2b), (0, 7, 64, c0)] } else { [(0, 7, 64, c0), (2, 9, 128, c2b)] };
            for (src, tag, bytes, clk) in order {
                let m = r1.clock_recv(clk);
                r1.causal_recv(src, tag, bytes, clk, m);
            }
            let snaps = [r0.snapshot(), r1.snapshot(), r2.snapshot()];
            assert!(clocks_monotonic(&snaps));
            let g = CausalGraph::from_snapshots(&snaps);
            assert_eq!(g.edges.len(), 2);
            assert!(g.clock_order_holds());
            prints.push(g.fingerprint());
        }
        assert_eq!(prints[0], prints[1]);
    }

    #[test]
    fn unmatched_recv_is_counted_not_fatal() {
        let epoch = Instant::now();
        let mut r1 = Recorder::enabled(1, epoch, 16);
        let m = r1.clock_recv(99);
        r1.causal_recv(0, 5, 8, 99, m);
        let g = CausalGraph::from_snapshots(&[r1.snapshot()]);
        assert_eq!(g.edges.len(), 0);
        assert_eq!(g.unmatched_recvs, 1);
    }

    #[test]
    fn critical_path_crosses_ranks_on_message_edges() {
        // rank 0: compute [0,100], send at 90.
        // rank 1: wait [0,110] (recv at 100), compute [110, 200].
        let spans = vec![
            span(0, Phase::VelocityInterior, 0, 100),
            span(1, Phase::Wait, 0, 110),
            span(1, Phase::StressInterior, 110, 200),
        ];
        let edges = vec![CausalEdge {
            kind: EdgeKind::Message,
            src: 0,
            dst: 1,
            tag: 3,
            bytes: 32,
            send_ns: 90,
            recv_ns: 100,
            src_clock: 1,
            dst_clock: 2,
        }];
        let g = CausalGraph::new(spans, edges, 0);
        let p = g.critical_path();
        assert_eq!(p.wall_ns, 200);
        // Path: rank0 compute → (edge) rank1 wait → rank1 stress.
        assert_eq!(p.hops.len(), 3);
        assert_eq!(p.hops[0].rank, 0);
        assert!(p.hops[1].via.is_some(), "hop into the wait span rides the message edge");
        assert_eq!(p.hops[2].phase, Phase::StressInterior);
        // Full attribution: span + slack covers the whole extent.
        assert_eq!(p.span_ns + p.slack_ns, 200);
        assert!((p.coverage() - 1.0).abs() < 1e-9);
        assert!(p.phase_ns[Phase::VelocityInterior.index()] > 0);
        assert_eq!(p.rank_ns.len(), 2);
    }

    #[test]
    fn critical_path_attribution_never_exceeds_wall() {
        // Overlapping nested spans must be clamped by the cursor.
        let spans = vec![
            span(0, Phase::VelocityShell, 0, 100),
            span(0, Phase::Boundary, 20, 80),
            span(0, Phase::StressShell, 100, 150),
        ];
        let g = CausalGraph::new(spans, Vec::new(), 0);
        let p = g.critical_path();
        assert_eq!(p.wall_ns, 150);
        assert!(p.span_ns + p.slack_ns <= 150);
        assert!((p.coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn steal_edges_do_not_perturb_fingerprint() {
        let epoch = Instant::now();
        let mut r0 = Recorder::enabled(0, epoch, 16);
        let c = r0.clock_send();
        r0.causal_send(1, 11, 16, c);
        let mut r1 = Recorder::enabled(1, epoch, 16);
        let m = r1.clock_recv(c);
        r1.causal_recv(0, 11, 16, c, m);
        let base = CausalGraph::from_snapshots(&[r0.snapshot(), r1.snapshot()]).fingerprint();
        r1.causal_mark(CausalKind::Steal, 0, 0, 5);
        let with_steal = CausalGraph::from_snapshots(&[r0.snapshot(), r1.snapshot()]);
        assert_eq!(with_steal.edges.len(), 2, "steal edge present in the DAG");
        assert_eq!(with_steal.fingerprint(), base, "but excluded from the fingerprint");
    }
}
