//! Minimal JSON tree + parser used by the shim's derived `Deserialize`
//! impls (and by the shim `serde_json`). Char-based so multi-byte UTF-8
//! survives a round-trip.

use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
pub enum ShimValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<ShimValue>),
    Object(BTreeMap<String, ShimValue>),
}

impl ShimValue {
    pub fn get(&self, key: &str) -> Option<&ShimValue> {
        match self {
            ShimValue::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<ShimValue, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0;
    let v = value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos < chars.len() {
        return Err(format!("trailing characters at offset {}", pos));
    }
    Ok(v)
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while *pos < c.len() && c[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn peek(c: &[char], pos: &mut usize) -> Option<char> {
    skip_ws(c, pos);
    c.get(*pos).copied()
}

fn eat(c: &[char], pos: &mut usize, lit: &str) -> bool {
    skip_ws(c, pos);
    let lit: Vec<char> = lit.chars().collect();
    if c[*pos..].starts_with(&lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn string(c: &[char], pos: &mut usize) -> Result<String, String> {
    skip_ws(c, pos);
    if c.get(*pos) != Some(&'"') {
        return Err("expected string".into());
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match c.get(*pos).copied() {
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match c.get(*pos).copied() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = c
                            .get(*pos + 1..*pos + 5)
                            .ok_or("bad \\u escape")?
                            .iter()
                            .collect();
                        let code =
                            u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    Some(ch) => out.push(ch),
                    None => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(ch) => {
                out.push(ch);
                *pos += 1;
            }
            None => return Err("unterminated string".into()),
        }
    }
}

fn value(c: &[char], pos: &mut usize) -> Result<ShimValue, String> {
    match peek(c, pos) {
        Some('n') if eat(c, pos, "null") => Ok(ShimValue::Null),
        Some('t') if eat(c, pos, "true") => Ok(ShimValue::Bool(true)),
        Some('f') if eat(c, pos, "false") => Ok(ShimValue::Bool(false)),
        Some('"') => Ok(ShimValue::String(string(c, pos)?)),
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            if peek(c, pos) == Some(']') {
                *pos += 1;
                return Ok(ShimValue::Array(items));
            }
            loop {
                items.push(value(c, pos)?);
                match peek(c, pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(ShimValue::Array(items));
                    }
                    _ => return Err("bad array".into()),
                }
            }
        }
        Some('{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            if peek(c, pos) == Some('}') {
                *pos += 1;
                return Ok(ShimValue::Object(map));
            }
            loop {
                let k = string(c, pos)?;
                if peek(c, pos) != Some(':') {
                    return Err("expected colon".into());
                }
                *pos += 1;
                map.insert(k, value(c, pos)?);
                match peek(c, pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(ShimValue::Object(map));
                    }
                    _ => return Err("bad object".into()),
                }
            }
        }
        Some(_) => {
            skip_ws(c, pos);
            let start = *pos;
            while *pos < c.len()
                && matches!(c[*pos], '0'..='9' | '-' | '+' | '.' | 'e' | 'E')
            {
                *pos += 1;
            }
            let text: String = c[start..*pos].iter().collect();
            text.parse()
                .map(ShimValue::Number)
                .map_err(|_| "bad number".to_string())
        }
        None => Err("empty input".into()),
    }
}
