//! Property-based tests for the velocity-model substrate.

use awp_cvm::material::{sample_from_vs, MaterialSample};
use awp_cvm::mesh::MeshGenerator;
use awp_cvm::model::{CommunityVelocityModel, LayeredModel};
use awp_cvm::SoCalModel;
use awp_grid::dims::Dims3;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Brocher/Nafe–Drake chain yields physically admissible samples
    /// across the crustal Vs range.
    #[test]
    fn material_chain_physical(vs in 250.0f64..4600.0) {
        let s = sample_from_vs(vs);
        prop_assert!(s.is_physical(), "{s:?}");
        prop_assert!(s.vp > s.vs);
        prop_assert!((s.qs - 50.0 * s.vs / 1000.0).abs() < 1e-3);
        prop_assert!((s.qp - 2.0 * s.qs).abs() < 1e-3);
    }

    /// Every SoCal query is physical and respects the 400 m/s floor, at
    /// any position and depth.
    #[test]
    fn socal_queries_admissible(x in -1e5f64..9e5, y in -1e5f64..5e5, z in 0.0f64..9e4) {
        let m = SoCalModel::m8();
        let s = m.query(x, y, z);
        prop_assert!(s.is_physical(), "{s:?} at ({x},{y},{z})");
        prop_assert!(s.vs >= m.vs_floor() - 1e-3);
    }

    /// Vs never decreases with depth at a fixed map point (compaction).
    #[test]
    fn socal_vs_monotone_with_depth(x in 0.0f64..8.1e5, y in 0.0f64..4.05e5,
                                    z1 in 0.0f64..3e4, dz in 0.0f64..3e4) {
        let m = SoCalModel::m8();
        let a = m.query(x, y, z1);
        let b = m.query(x, y, z1 + dz);
        prop_assert!(b.vs >= a.vs - 1.0, "Vs({z1}+{dz}) = {} < Vs({z1}) = {}", b.vs, a.vs);
    }

    /// Mesh extraction samples the model exactly at cell centres for any
    /// window.
    #[test]
    fn mesh_matches_model_pointwise(nx in 2usize..6, ny in 2usize..6, nz in 2usize..6,
                                    h in 100.0f64..2000.0,
                                    ox in 0.0f64..1e5, oy in 0.0f64..1e5) {
        let model = LayeredModel::gradient_crust(800.0);
        let gen = MeshGenerator::new(&model, Dims3::new(nx, ny, nz), h).with_origin(ox, oy);
        let mesh = gen.generate();
        for (i, j, k) in [(0, 0, 0), (nx - 1, ny - 1, nz - 1), (nx / 2, ny / 2, nz / 2)] {
            let want = model.query(
                ox + (i as f64 + 0.5) * h,
                oy + (j as f64 + 0.5) * h,
                (k as f64 + 0.5) * h,
            );
            prop_assert_eq!(mesh.sample(i, j, k), want);
        }
    }

    /// Mesh stats bound every sampled value.
    #[test]
    fn stats_are_bounds(h in 200.0f64..2000.0) {
        let model = SoCalModel::scaled(50_000.0, 25_000.0);
        let mesh = MeshGenerator::new(&model, Dims3::new(10, 5, 8), h).generate();
        let st = mesh.stats();
        for v in &mesh.vs {
            prop_assert!(*v >= st.vs_min && *v <= st.vs_max);
        }
        for v in &mesh.vp {
            prop_assert!(*v >= st.vp_min && *v <= st.vp_max);
        }
        prop_assert!(st.dt_max() > 0.0);
        prop_assert!(st.f_max(5.0) > 0.0);
    }

    /// Q rules hold on every mesh cell.
    #[test]
    fn q_rules_on_mesh(seed in 0usize..4) {
        let model = SoCalModel::scaled(100_000.0, 50_000.0);
        let h = 2_000.0 + seed as f64 * 500.0;
        let mesh = MeshGenerator::new(&model, Dims3::new(8, 4, 6), h).generate();
        for p in 0..mesh.dims.count() {
            prop_assert!((mesh.qs[p] - 50.0 * mesh.vs[p] / 1000.0).abs() < 1e-2);
            prop_assert!((mesh.qp[p] - 2.0 * mesh.qs[p]).abs() < 1e-2);
        }
    }
}

/// Admissibility is also enforced structurally: a hand-built bad sample
/// is rejected.
#[test]
fn admissibility_checks() {
    let good = MaterialSample::from_speeds(6000.0, 3464.0, 2700.0);
    assert!(good.is_physical());
    let bad = MaterialSample { vp: 100.0, ..good };
    assert!(!bad.is_physical());
}
