//! Fig. 21: PGVHs derived from M8 with seismograms at selected locations.

use awp_bench::{save_record, section};
use awp_odc::scenario::Scenario;
use awp_signal::spectrum::dominant_period;
use serde_json::json;

fn main() {
    section("Fig. 21 — M8 PGVH map and station seismograms");
    let sc = Scenario::m8(160, 2010).with_duration(200.0);
    println!("preparing (two-step source) ...");
    let run = sc.prepare();
    println!(
        "wave propagation: {:?} cells, {} steps, attenuation on ...",
        run.cfg.dims, run.cfg.steps
    );
    let rep = run.run_parallel([2, 2, 1]);

    println!("\ncity PGVH (m/s) and dominant period:");
    println!("{:<18} {:>9} {:>12}", "station", "PGVH", "dom. period");
    let mut cities = Vec::new();
    for s in &rep.seismograms {
        let pgvh = s.pgvh_rss();
        let period = dominant_period(&s.vx, s.dt, 0.02).unwrap_or(0.0);
        println!("{:<18} {:>9.3} {:>10.1} s", s.station.name, pgvh, period);
        cities.push(json!({ "station": s.station.name, "pgvh_ms": pgvh, "period_s": period }));
    }

    // The paper's headline observations.
    let near_fault_max = rep.pgv.max();
    let sb = rep.pgv_at("San Bernardino").unwrap_or(0.0);
    let la = rep.pgv_at("Los Angeles").unwrap_or(0.0);
    println!("\nnear-fault PGVH max: {near_fault_max:.2} m/s (paper: isolated >10 m/s on the trace)");
    println!("San Bernardino: {sb:.2} m/s (paper: ~6 m/s, 'hardest hit' — basin + directivity + proximity)");
    println!("downtown LA: {la:.2} m/s (paper: ~0.4 m/s, waveguide not excited by NW→SE rupture)");
    let sb_beats_la = sb > la;
    println!("San Bernardino > Los Angeles: {sb_beats_la} (the paper's key contrast)");

    println!("\nPGVH map (max {:.2} m/s):", rep.pgv.max());
    println!("{}", rep.pgv.to_ascii(100));

    save_record(
        "fig21",
        "M8 PGVH map + city seismograms (paper Fig. 21)",
        json!({
            "cities": cities,
            "pgv_max_ms": near_fault_max,
            "san_bernardino_over_la": sb_beats_la,
            "paper": { "san_bernardino_ms": 6.0, "downtown_la_ms": 0.4, "near_fault_ms": 10.0 },
        }),
    );
}
