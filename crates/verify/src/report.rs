//! Aggregate verification report: serialisation to `results/verify.json`
//! and the schema self-check `awp verify` runs on its own output before
//! declaring success (same discipline as the Chrome-trace validator in
//! the CLI: never emit an artifact you haven't parsed back).

use crate::accuracy::AccuracyCase;
use crate::convergence::ConvergenceResult;
use crate::fuzz::{FuzzResult, StealFuzzResult};
use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// Schema version stamped into every report; bump on breaking layout
/// changes so downstream parsers can refuse what they don't understand.
pub const SCHEMA_VERSION: u64 = 1;

/// The whole verification outcome.
#[derive(Debug, Clone, Serialize)]
pub struct VerifyReport {
    pub schema_version: u64,
    /// "smoke" or "full".
    pub mode: String,
    pub accuracy: Vec<AccuracyCase>,
    pub convergence: ConvergenceResult,
    pub fuzz: FuzzResult,
    /// Work-stealing scheduler determinism sweep.
    pub steal: StealFuzzResult,
    /// Conjunction of every stream's gate.
    pub passed: bool,
}

impl VerifyReport {
    pub fn new(
        mode: &str,
        accuracy: Vec<AccuracyCase>,
        convergence: ConvergenceResult,
        fuzz: FuzzResult,
        steal: StealFuzzResult,
    ) -> Self {
        let passed = accuracy.iter().all(|c| c.passed)
            && convergence.passed
            && fuzz.passed
            && steal.passed;
        VerifyReport {
            schema_version: SCHEMA_VERSION,
            mode: mode.to_string(),
            accuracy,
            convergence,
            fuzz,
            steal,
            passed,
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Write to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")
    }
}

/// Validate a serialised report: parseable JSON, the right schema
/// version, every section present with the fields and types a consumer
/// relies on. Returns the number of accuracy cases checked.
pub fn validate_json(text: &str) -> Result<usize, String> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("report is not valid JSON: {e}"))?;
    let schema = v["schema_version"].as_f64().ok_or("missing schema_version")?;
    if schema != SCHEMA_VERSION as f64 {
        return Err(format!("schema_version {schema} != {SCHEMA_VERSION}"));
    }
    let mode = v["mode"].as_str().ok_or("missing mode")?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("unknown mode {mode:?}"));
    }
    v["passed"].as_bool().ok_or("missing passed")?;

    let cases = v["accuracy"].as_array().ok_or("accuracy missing or not an array")?;
    if cases.is_empty() {
        return Err("accuracy has no cases".into());
    }
    for (i, c) in cases.iter().enumerate() {
        c["case"].as_str().ok_or(format!("accuracy[{i}]: missing case"))?;
        for key in ["worst_l2", "worst_envelope", "worst_shift_dt", "l2_tol", "env_tol"] {
            let x = c[key].as_f64().ok_or(format!("accuracy[{i}]: missing {key}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!("accuracy[{i}].{key} = {x} is not a finite misfit"));
            }
        }
        c["passed"].as_bool().ok_or(format!("accuracy[{i}]: missing passed"))?;
        let recs = c["receivers"].as_array().ok_or(format!("accuracy[{i}]: missing receivers"))?;
        if recs.is_empty() {
            return Err(format!("accuracy[{i}]: no receivers"));
        }
    }

    let conv = &v["convergence"];
    conv["observed_order"].as_f64().ok_or("convergence: missing observed_order")?;
    conv["passed"].as_bool().ok_or("convergence: missing passed")?;
    let levels = conv["levels"].as_array().ok_or("convergence: missing levels")?;
    if levels.len() < 2 {
        return Err("convergence: fewer than two levels".into());
    }
    for (i, l) in levels.iter().enumerate() {
        for key in ["h", "dt", "error"] {
            let x = l[key].as_f64().ok_or(format!("levels[{i}]: missing {key}"))?;
            // NaN must fail too, so compare via partial_cmp rather than `>`.
            if x.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(format!("levels[{i}].{key} = {x} must be positive"));
            }
        }
    }

    let fuzz = &v["fuzz"];
    fuzz["passed"].as_bool().ok_or("fuzz: missing passed")?;
    let runs = fuzz["runs"].as_f64().ok_or("fuzz: missing runs")?;
    if runs < 1.0 {
        return Err("fuzz: no replays executed".into());
    }
    let fp = fuzz["baseline_fingerprint"].as_str().ok_or("fuzz: missing fingerprint")?;
    if fp.len() != 16 || !fp.chars().all(|c| c.is_ascii_hexdigit()) {
        return Err(format!("fuzz: malformed fingerprint {fp:?}"));
    }
    fuzz["mismatched_seeds"].as_array().ok_or("fuzz: missing mismatched_seeds")?;

    let steal = &v["steal"];
    steal["passed"].as_bool().ok_or("steal: missing passed")?;
    let sruns = steal["runs"].as_f64().ok_or("steal: missing runs")?;
    if sruns < 1.0 {
        return Err("steal: no replays executed".into());
    }
    let scases = steal["cases"].as_array().ok_or("steal: missing cases")?;
    if scases.is_empty() {
        return Err("steal: no decompositions swept".into());
    }
    for (i, c) in scases.iter().enumerate() {
        let ranks = c["ranks"].as_f64().ok_or(format!("steal.cases[{i}]: missing ranks"))?;
        if ranks < 1.0 {
            return Err(format!("steal.cases[{i}]: ranks {ranks} must be positive"));
        }
        c["passed"].as_bool().ok_or(format!("steal.cases[{i}]: missing passed"))?;
        c["unseeded_passed"]
            .as_bool()
            .ok_or(format!("steal.cases[{i}]: missing unseeded_passed"))?;
        let fp = c["baseline_fingerprint"]
            .as_str()
            .ok_or(format!("steal.cases[{i}]: missing fingerprint"))?;
        if fp.len() != 16 || !fp.chars().all(|ch| ch.is_ascii_hexdigit()) {
            return Err(format!("steal.cases[{i}]: malformed fingerprint {fp:?}"));
        }
        c["mismatched_seeds"]
            .as_array()
            .ok_or(format!("steal.cases[{i}]: missing mismatched_seeds"))?;
    }
    Ok(cases.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::{AccuracyCase, ComponentScore, ReceiverScore};
    use crate::convergence::{ConvergenceResult, LevelResult};
    use crate::fuzz::{FuzzResult, StealCase, StealFuzzResult};

    fn sample_report(passed: bool) -> VerifyReport {
        let case = AccuracyCase {
            case: "explosion".into(),
            n: 48,
            h: 100.0,
            dt: 3.96e-3,
            steps: 90,
            rise_time: 0.26,
            worst_l2: 0.03,
            worst_envelope: 0.02,
            worst_shift_dt: 0.4,
            l2_tol: 0.12,
            env_tol: 0.12,
            shift_tol_dt: 1.5,
            passed,
            receivers: vec![ReceiverScore {
                station: "r0".into(),
                offset: [8, 0, 0],
                distance_m: 800.0,
                components: vec![ComponentScore {
                    component: "vx".into(),
                    l2: 0.03,
                    envelope: 0.02,
                    shift_dt: 0.4,
                    nodal: false,
                }],
            }],
        };
        let convergence = ConvergenceResult {
            levels: vec![
                LevelResult { n: 32, h: 100.0, dt: 4e-3, steps: 60, error: 0.09 },
                LevelResult { n: 64, h: 50.0, dt: 2e-3, steps: 120, error: 0.02 },
            ],
            observed_order: 2.17,
            order_lo: 2.0,
            order_hi: 4.5,
            passed: true,
        };
        let fuzz = FuzzResult {
            ranks: 8,
            steps: 24,
            runs: 16,
            base_seed: 1,
            mismatched_seeds: vec![],
            baseline_fingerprint: "0123456789abcdef".into(),
            passed: true,
        };
        let steal = StealFuzzResult {
            lts: false,
            steps: 16,
            tile_planes: 2,
            runs: 20,
            base_seed: 0x5eed_0004,
            cases: vec![StealCase {
                ranks: 8,
                runs: 17,
                unseeded_passed: true,
                mismatched_seeds: vec![],
                baseline_fingerprint: "fedcba9876543210".into(),
                passed: true,
            }],
            passed: true,
        };
        VerifyReport::new("smoke", vec![case], convergence, fuzz, steal)
    }

    #[test]
    fn roundtrip_validates() {
        let r = sample_report(true);
        assert!(r.passed);
        assert_eq!(validate_json(&r.to_json()), Ok(1));
    }

    #[test]
    fn overall_pass_is_a_conjunction() {
        let r = sample_report(false);
        assert!(!r.passed, "one failing accuracy case fails the report");
        // Still schema-valid: failure is a result, not a malformed artifact.
        assert_eq!(validate_json(&r.to_json()), Ok(1));
    }

    #[test]
    fn validator_rejects_broken_reports() {
        assert!(validate_json("not json").is_err());
        assert!(validate_json("{}").unwrap_err().contains("schema_version"));
        let mut r = sample_report(true);
        r.fuzz.baseline_fingerprint = "xyz".into();
        assert!(validate_json(&r.to_json()).unwrap_err().contains("fingerprint"));
        let mut r2 = sample_report(true);
        r2.convergence.levels.pop();
        assert!(validate_json(&r2.to_json()).unwrap_err().contains("two levels"));
        let mut r3 = sample_report(true);
        r3.accuracy.clear();
        assert!(validate_json(&r3.to_json()).unwrap_err().contains("no cases"));
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join("awp_verify_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("verify.json");
        sample_report(true).write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate_json(&text), Ok(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
