#!/bin/bash
# Toggle the workspace between registry dependencies (canonical, what gets
# committed) and local shim crates under tools/shims/ (for network-less dev
# containers where crates.io is unreachable).
#
#   tools/offline-dev.sh on      # point external deps at tools/shims/
#   tools/offline-dev.sh off     # restore canonical registry deps
#   tools/offline-dev.sh status
#
# Lockfile handling: the two dependency graphs differ, so the working-tree
# Cargo.lock is swapped, not destroyed. The canonical registry-graph pin is
# tools/Cargo.lock.registry — generate it once on a networked machine
# (`offline-dev.sh off && cargo generate-lockfile && cp Cargo.lock
# tools/Cargo.lock.registry`) and commit it; `off` restores it so registry
# builds stay pinned. `on` likewise parks/restores a shim-graph lockfile at
# tools/Cargo.lock.shim so repeated toggles don't re-resolve.
set -euo pipefail
cd "$(dirname "$0")/.."

REGISTRY_LOCK=tools/Cargo.lock.registry
SHIM_LOCK=tools/Cargo.lock.shim

# One external dependency per line: name|registry spec|shim spec. Matching
# is per-dependency (on the `name = ...` line anchored at column 0 inside
# [workspace.dependencies]), so a version bump or reformat of one dep does
# not break toggling of the others.
DEPS='rand|rand = { version = "0.8", features = ["small_rng"] }|rand = { path = "tools/shims/rand", features = ["small_rng"] }
rand_chacha|rand_chacha = "0.3"|rand_chacha = { path = "tools/shims/rand_chacha" }
crossbeam|crossbeam = "0.8"|crossbeam = { path = "tools/shims/crossbeam" }
parking_lot|parking_lot = "0.12"|parking_lot = { path = "tools/shims/parking_lot" }
rayon|rayon = "1.10"|rayon = { path = "tools/shims/rayon" }
serde|serde = { version = "1", features = ["derive"] }|serde = { path = "tools/shims/serde", features = ["derive"] }
serde_json|serde_json = "1"|serde_json = { path = "tools/shims/serde_json" }
proptest|proptest = "1"|proptest = { path = "tools/shims/proptest" }
criterion|criterion = "0.5"|criterion = { path = "tools/shims/criterion" }
tempfile|tempfile = "3"|tempfile = { path = "tools/shims/tempfile" }'

# rewrite <to-mode>: repoint each dependency line. A dep already in the
# target mode is left alone; a dep line that cannot be found at all is an
# error (the file was edited beyond recognition — fix it by hand).
rewrite() {
    python3 - "$1" "$DEPS" <<'EOF'
import re
import sys

to_mode, deps = sys.argv[1], sys.argv[2]
lines = open("Cargo.toml").read().splitlines(keepends=True)
missing = []
for entry in deps.splitlines():
    name, registry, shim = entry.split("|")
    target = shim if to_mode == "shim" else registry
    pat = re.compile(r"^%s\s*=" % re.escape(name))
    hits = [i for i, ln in enumerate(lines) if pat.match(ln)]
    if not hits:
        missing.append(name)
        continue
    if len(hits) > 1:
        sys.exit("offline-dev: dependency %r appears %d times in Cargo.toml"
                 % (name, len(hits)))
    lines[hits[0]] = target + "\n"
if missing:
    sys.exit("offline-dev: dependency lines not found in Cargo.toml: %s"
             % ", ".join(missing))
open("Cargo.toml", "w").write("".join(lines))
EOF
}

# mode_now: inspect every dependency line, not just one. Prints shim,
# registry, or mixed (mixed ⇒ a half-edited file; both on and off refuse).
mode_now() {
    python3 - "$DEPS" <<'EOF'
import re
import sys

deps = sys.argv[1]
text = open("Cargo.toml").read()
shim = registry = other = 0
for entry in deps.splitlines():
    name, _, _ = entry.split("|")
    m = re.search(r"^%s\s*=.*$" % re.escape(name), text, re.M)
    if m is None:
        other += 1
    elif 'path = "tools/shims/' in m.group(0):
        shim += 1
    else:
        registry += 1
if shim and not registry and not other:
    print("shim")
elif registry and not shim and not other:
    print("registry")
else:
    print("mixed")
EOF
}

# park_lock <file>: stash the current Cargo.lock (if any) for the mode we
# are leaving. restore_lock <file>: bring back the lock for the mode we are
# entering, or warn that the build is unpinned.
park_lock() {
    [ -f Cargo.lock ] && mv Cargo.lock "$1"
    return 0
}

restore_lock() {
    if [ -f "$1" ]; then
        cp "$1" Cargo.lock
    else
        rm -f Cargo.lock
        echo "offline-dev: warning: $1 missing — next build re-resolves (unpinned)" >&2
    fi
}

MODE=$(mode_now)

case "${1:-status}" in
    on)
        [ "$MODE" = shim ] && { echo "already in shim mode"; exit 0; }
        [ "$MODE" = mixed ] && { echo "offline-dev: Cargo.toml is half-edited (mixed mode); fix it by hand" >&2; exit 1; }
        rewrite shim
        park_lock "$REGISTRY_LOCK"
        restore_lock "$SHIM_LOCK"
        echo "Cargo.toml now uses tools/shims/ (DO NOT COMMIT in this state)"
        ;;
    off)
        [ "$MODE" = registry ] && { echo "already in registry mode"; exit 0; }
        [ "$MODE" = mixed ] && { echo "offline-dev: Cargo.toml is half-edited (mixed mode); fix it by hand" >&2; exit 1; }
        rewrite registry
        park_lock "$SHIM_LOCK"
        restore_lock "$REGISTRY_LOCK"
        echo "Cargo.toml restored to registry dependencies"
        ;;
    status)
        echo "mode: $MODE"
        ;;
    *)
        echo "usage: $0 on|off|status" >&2
        exit 2
        ;;
esac
