//! Scenario-catalogue integration tests (paper Table 3's milestones in
//! miniature).

use awp_odc::scenario::{RuptureDirection, Scenario, SourceSpec};

#[test]
fn catalogue_covers_the_milestones() {
    let scenarios = vec![
        Scenario::terashake_k(32, RuptureDirection::SeToNw),
        Scenario::terashake_d(32, 1),
        Scenario::shakeout_k(32, 0.3),
        Scenario::shakeout_d(32, 2),
        Scenario::wall_to_wall(40),
        Scenario::m8(40, 3),
    ];
    for sc in &scenarios {
        let d = sc.dims();
        assert!(d.count() > 0);
        assert!(sc.h() > 0.0);
        assert!(!sc.stations().is_empty());
        assert!(sc.trace().length() > 0.0);
    }
    // Wall-to-wall/M8 use the 545 km fault; TeraShake a 200 km stretch.
    let w2w = &scenarios[4];
    let ts = &scenarios[0];
    assert!(w2w.trace().length() > 2.0 * ts.trace().length());
}

#[test]
fn m8_is_dynamic_and_attenuating() {
    let m8 = Scenario::m8(48, 9);
    assert!(m8.attenuation, "M8 includes anelastic attenuation");
    assert!(matches!(m8.source, SourceSpec::Dynamic { .. }));
    assert_eq!(m8.fault_segments, 47, "the 47-segment SAF approximation");
}

#[test]
fn kinematic_sources_respect_magnitude_targets() {
    for (sc, mw) in [
        (Scenario::terashake_k(40, RuptureDirection::SeToNw), 7.7),
        (Scenario::shakeout_k(40, 0.3), 7.8),
        (Scenario::wall_to_wall(48), 8.0),
    ] {
        let run = sc.with_duration(1.0).prepare();
        assert!((run.source.magnitude() - mw).abs() < 0.01, "{mw}");
        assert!(!run.source.subfaults.is_empty());
    }
}

#[test]
fn dynamic_seeds_produce_distinct_slip() {
    // The ShakeOut-D ensemble (Fig. 18): different stress seeds give
    // different slip distributions.
    let a = Scenario::shakeout_d(40, 100).with_duration(1.0).prepare();
    let b = Scenario::shakeout_d(40, 200).with_duration(1.0).prepare();
    let ra = a.rupture.unwrap();
    let rb = b.rupture.unwrap();
    assert_ne!(ra.slip, rb.slip, "ensemble members must differ");
    assert!(ra.max_slip() > 0.0 && rb.max_slip() > 0.0);
}

#[test]
fn report_fields_are_consistent() {
    let rep = Scenario::shakeout_k(32, 0.3).with_duration(8.0).prepare().run_serial();
    assert!(rep.steps > 0);
    assert!(rep.flops > 0);
    assert!(rep.elapsed_s > 0.0);
    assert!(rep.sustained_flops() > 0.0);
    let fr: f64 = rep.time_fractions.iter().sum();
    assert!((fr - 1.0).abs() < 1e-6, "fractions sum to 1: {fr}");
    assert_eq!(rep.seismograms.len(), 7, "all city stations recorded");
    for s in &rep.seismograms {
        assert_eq!(s.vx.len(), rep.steps);
    }
}

#[test]
fn scenario_pgv_scales_with_magnitude() {
    // A Mw 7.8 source shakes harder than a Mw 6.8 one, other things equal.
    let big = Scenario::shakeout_k(48, 0.3).with_duration(25.0);
    let mut small = big.clone();
    small.source = SourceSpec::Kinematic {
        mw: 6.8,
        direction: RuptureDirection::SeToNw,
        vr: 2800.0,
        rise_time: 3.0,
    };
    let rb = big.prepare().run_serial();
    let rs = small.prepare().run_serial();
    // One magnitude unit = 10^1.5 ≈ 31.6× moment; PGV grows strongly.
    assert!(
        rb.pgv.max() > 5.0 * rs.pgv.max(),
        "Mw7.8 {} vs Mw6.8 {}",
        rb.pgv.max(),
        rs.pgv.max()
    );
}

#[test]
fn pacific_northwest_megathrust_runs() {
    // The Table-3 Cascadia milestone: long rupture, long durations.
    let sc = Scenario::pacific_northwest(48, 9.0).with_duration(30.0);
    let run = sc.prepare();
    assert!((run.source.magnitude() - 9.0).abs() < 0.01);
    // The megathrust trace is much longer than TeraShake's 200 km stretch.
    assert!(sc.trace().length() > 700_000.0);
    let rep = run.run_serial();
    assert!(rep.pgv.max() > 0.0);
    // Long rise time → long-period shaking at the stations.
    let s = &rep.seismograms[0];
    assert!(s.vx.len() == rep.steps);
}

#[test]
#[should_panic(expected = "Mw 8.5")]
fn pacific_northwest_rejects_small_magnitudes() {
    Scenario::pacific_northwest(32, 7.0);
}
