//! `awp-telemetry` — low-overhead, opt-in per-rank instrumentation.
//!
//! Design (see DESIGN.md "Observability"):
//! - **Opt-in**: a run owns an `Arc<Registry>`; each vcluster rank gets an
//!   enabled [`Recorder`] at spawn. Without a registry, every probe site
//!   holds a [`Recorder::disabled`] and compiles to a not-taken branch with
//!   zero allocation and zero clock reads (enforced by `tests/zero_alloc.rs`).
//! - **Hot path is enum + array math**: spans are tagged with [`Phase`]
//!   (never strings), recorded into a preallocated ring buffer; counters and
//!   log2-bucket histograms are fixed arrays.
//! - **Exact totals, bounded memory**: per-phase totals and counters are
//!   always exact; only the span *timeline* is bounded by the ring (evictions
//!   surface as `dropped_spans`).
//! - **Aggregation**: at run completion each rank's [`Snapshot`] is submitted
//!   to the [`Registry`], which produces a [`TelemetryReport`]
//!   (min/mean/max/p95 per phase, load-imbalance ratio, hidden-comm
//!   fraction) and a Chrome trace-event JSON (one virtual pid per rank).
//!
//! The crate is std-only on purpose: it sits under every other crate in the
//! workspace and must build offline with no registry dependencies.

pub mod causal;
pub mod flightrec;
pub mod hist;
pub mod live;
pub mod phase;
pub mod recorder;
pub mod registry;
pub mod report;
pub mod trace;

pub use causal::{
    clocks_monotonic, CausalEdge, CausalEvent, CausalGraph, CausalKind, CriticalPath, EdgeKind,
    GraphSpan, Hop, NO_PEER,
};
pub use flightrec::{
    EnvDir, EnvelopeRec, FlightRecorder, SpanTailRec, FLIGHT_ENV_CAPACITY, FLIGHT_SPAN_CAPACITY,
};
pub use hist::{Log2Hist, HIST_BUCKETS};
pub use live::{LiveRank, LiveStats, STATS_PROTO_NAME, STATS_PROTO_VERSION};
pub use phase::{Counter, HistKind, Phase};
pub use recorder::{LtsClusterStat, PhaseTotal, Recorder, Snapshot, SpanRec, NO_CLUSTER};
pub use registry::{Registry, DEFAULT_SPAN_CAPACITY};
pub use report::{LtsClusterAgg, PhaseAgg, TelemetryReport};
pub use trace::chrome_trace;
