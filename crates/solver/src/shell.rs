//! Shell/interior decomposition of a rank's subdomain (paper §IV.C).
//!
//! The overlap timestep updates the *shell* — the boundary slabs whose
//! cells feed outgoing ghost faces — first, launches every halo send, then
//! updates the *interior* core with the full-strength backend while the
//! messages are in flight. This module precomputes that decomposition as
//! seven disjoint windows (six face slabs + the core) that together cover
//! the local grid exactly once, so the split pass visits the same per-cell
//! update set as the fused pass and stays bit-exact.
//!
//! Slab assembly (widths are the halo depth, 2, on faces with a
//! neighbour, 0 otherwise):
//!
//! * z-lo / z-hi slabs span the full (i, j) plane;
//! * y-lo / y-hi slabs span the full i extent over the remaining k range;
//! * x-lo / x-hi slabs cover the remaining (j, k) core rectangle;
//! * the interior is what is left.
//!
//! Corners are therefore owned by exactly one slab, and every cell within
//! halo depth of a communicating face lies in some shell slab (the face
//! extraction in `exchange::start_exchange` reads only such cells).
//!
//! **Free-surface fold rule**: stress imaging at the k = 0 surface reads a
//! column's k ∈ {0, 1, 2} stresses *after* their update but *before* the
//! sponge damps them. The split pass images per window (footprint = the
//! window's (i, j) range, triggered by `k0 == 0`), which is only
//! equivalent to the fused schedule if each imaged column's k ≤ 2 cells
//! live in the window doing the imaging. On surface-owning ranks the z-lo
//! width is 0 (no neighbour below the free surface), so this holds
//! whenever the z-hi slab starts at k ≥ 3; for pathologically thin
//! subdomains (nz − width < 3) the plan folds the whole k range into the
//! z-hi slab — correctness is preserved and only the (degenerate) overlap
//! window is lost.

use awp_grid::decomp::Subdomain;
use awp_grid::dims::{Dims3, Idx3};
use awp_grid::face::Face;

/// Halo depth of the 4th-order stencil: cells within this distance of a
/// communicating face must be final before that face's send starts.
pub const SHELL_WIDTH: usize = 2;

/// A half-open index window `[i0, i1) × [j0, j1) × [k0, k1)` in local
/// (unpadded) coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Win {
    pub i0: usize,
    pub i1: usize,
    pub j0: usize,
    pub j1: usize,
    pub k0: usize,
    pub k1: usize,
}

impl Win {
    /// The window covering the whole local grid.
    pub fn full(d: Dims3) -> Self {
        Win { i0: 0, i1: d.nx, j0: 0, j1: d.ny, k0: 0, k1: d.nz }
    }

    pub fn is_empty(&self) -> bool {
        self.i0 >= self.i1 || self.j0 >= self.j1 || self.k0 >= self.k1
    }

    pub fn count(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            (self.i1 - self.i0) * (self.j1 - self.j0) * (self.k1 - self.k0)
        }
    }

    pub fn contains(&self, idx: Idx3) -> bool {
        (self.i0..self.i1).contains(&idx.i)
            && (self.j0..self.j1).contains(&idx.j)
            && (self.k0..self.k1).contains(&idx.k)
    }
}

/// Precomputed shell/interior decomposition for one rank.
#[derive(Debug, Clone, Copy)]
pub struct ShellPlan {
    /// Disjoint boundary slabs (some may be empty on non-communicating
    /// faces), ordered z-lo, z-hi, y-lo, y-hi, x-lo, x-hi.
    pub shells: [Win; 6],
    /// The core updated while halo messages are in flight.
    pub interior: Win,
}

impl ShellPlan {
    /// Build the plan for a subdomain: width-`SHELL_WIDTH` slabs on faces
    /// with a neighbour. `surface_imaging` is true when this rank applies
    /// the free-surface stress imaging (enables the fold rule above).
    pub fn new(sub: &Subdomain, surface_imaging: bool) -> Self {
        let w = |f: Face| if sub.neighbor(f).is_some() { SHELL_WIDTH } else { 0 };
        Self::from_widths(
            sub.dims,
            [w(Face::XLo), w(Face::XHi), w(Face::YLo), w(Face::YHi), w(Face::ZLo), w(Face::ZHi)],
            surface_imaging,
        )
    }

    /// Build from explicit per-face widths `[x_lo, x_hi, y_lo, y_hi, z_lo,
    /// z_hi]` (exposed for property tests over arbitrary shell shapes).
    pub fn from_widths(d: Dims3, widths: [usize; 6], surface_imaging: bool) -> Self {
        let [wx_lo, wx_hi, wy_lo, wy_hi, wz_lo, wz_hi] = widths;
        let ix0 = wx_lo.min(d.nx);
        let ix1 = d.nx.saturating_sub(wx_hi).max(ix0);
        let jy0 = wy_lo.min(d.ny);
        let jy1 = d.ny.saturating_sub(wy_hi).max(jy0);
        let kz0 = wz_lo.min(d.nz);
        let mut kz1 = d.nz.saturating_sub(wz_hi).max(kz0);
        // Free-surface fold rule: keep every imaged column's k ≤ 2 cells
        // inside the window that images it (see module docs).
        if surface_imaging && wz_hi > 0 && kz1 < 3 {
            kz1 = kz0;
        }
        let shells = [
            // z-lo / z-hi: full (i, j) plane.
            Win { i0: 0, i1: d.nx, j0: 0, j1: d.ny, k0: 0, k1: kz0 },
            Win { i0: 0, i1: d.nx, j0: 0, j1: d.ny, k0: kz1, k1: d.nz },
            // y-lo / y-hi: full i over the remaining k range.
            Win { i0: 0, i1: d.nx, j0: 0, j1: jy0, k0: kz0, k1: kz1 },
            Win { i0: 0, i1: d.nx, j0: jy1, j1: d.ny, k0: kz0, k1: kz1 },
            // x-lo / x-hi: the remaining (j, k) core rectangle.
            Win { i0: 0, i1: ix0, j0: jy0, j1: jy1, k0: kz0, k1: kz1 },
            Win { i0: ix1, i1: d.nx, j0: jy0, j1: jy1, k0: kz0, k1: kz1 },
        ];
        let interior = Win { i0: ix0, i1: ix1, j0: jy0, j1: jy1, k0: kz0, k1: kz1 };
        ShellPlan { shells, interior }
    }

    /// Cells in the shell slabs (diagnostics: the work done before the
    /// sends go out).
    pub fn shell_cells(&self) -> usize {
        self.shells.iter().map(Win::count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awp_grid::decomp::Decomp3;

    fn assert_exact_cover(d: Dims3, plan: &ShellPlan) {
        let mut seen = vec![0u8; d.nx * d.ny * d.nz];
        let mut mark = |w: &Win| {
            if w.is_empty() {
                return;
            }
            for k in w.k0..w.k1 {
                for j in w.j0..w.j1 {
                    for i in w.i0..w.i1 {
                        assert!(i < d.nx && j < d.ny && k < d.nz, "window exceeds grid");
                        seen[i + d.nx * (j + d.ny * k)] += 1;
                    }
                }
            }
        };
        for w in &plan.shells {
            mark(w);
        }
        mark(&plan.interior);
        assert!(
            seen.iter().all(|&c| c == 1),
            "shell+interior must cover every cell exactly once ({d:?})"
        );
    }

    #[test]
    fn covers_exactly_once_across_shapes_and_widths() {
        let dims = [
            Dims3::new(16, 12, 10),
            Dims3::new(13, 11, 9),
            Dims3::new(8, 8, 8),
            Dims3::new(7, 5, 4),
            Dims3::new(5, 3, 3),
            Dims3::new(3, 2, 2),
            Dims3::new(9, 1, 1),
            Dims3::new(33, 4, 3),
        ];
        let widths = [
            [2, 2, 2, 2, 2, 2],
            [0, 0, 0, 0, 0, 0],
            [2, 0, 0, 2, 0, 2],
            [0, 2, 2, 0, 2, 0],
            [2, 2, 0, 0, 0, 2],
        ];
        for d in dims {
            for w in widths {
                for surface in [false, true] {
                    assert_exact_cover(d, &ShellPlan::from_widths(d, w, surface));
                }
            }
        }
    }

    #[test]
    fn shell_contains_all_halo_feeding_cells() {
        // Every cell within SHELL_WIDTH of a communicating face must be in
        // some shell slab (it may be extracted into an outgoing message).
        let d = Dims3::new(10, 9, 8);
        let w = [2, 2, 0, 2, 0, 2];
        let plan = ShellPlan::from_widths(d, w, false);
        for k in 0..d.nz {
            for j in 0..d.ny {
                for i in 0..d.nx {
                    let near = (w[0] > 0 && i < w[0])
                        || (w[1] > 0 && i >= d.nx - w[1])
                        || (w[2] > 0 && j < w[2])
                        || (w[3] > 0 && j >= d.ny - w[3])
                        || (w[4] > 0 && k < w[4])
                        || (w[5] > 0 && k >= d.nz - w[5]);
                    let idx = Idx3::new(i, j, k);
                    let in_shell = plan.shells.iter().any(|s| s.contains(idx));
                    if near {
                        assert!(in_shell, "halo-feeding cell {idx:?} not in shell");
                        assert!(!plan.interior.contains(idx));
                    }
                }
            }
        }
    }

    #[test]
    fn surface_fold_keeps_imaged_columns_whole() {
        // Thin subdomain with a bottom neighbour: the z-hi slab would start
        // at k < 3, so the plan folds the full column into it.
        let d = Dims3::new(8, 8, 4);
        let plan = ShellPlan::from_widths(d, [2, 2, 2, 2, 0, 2], true);
        assert_exact_cover(d, &plan);
        for w in plan.shells.iter().chain(std::iter::once(&plan.interior)) {
            if !w.is_empty() && w.k0 == 0 {
                assert!(w.k1 >= 3.min(d.nz), "imaging window truncates its columns: {w:?}");
            }
        }
    }

    #[test]
    fn serial_subdomain_is_all_interior() {
        let d = Dims3::new(12, 10, 8);
        let sub = Decomp3::new(d, [1, 1, 1]).subdomain(0);
        let plan = ShellPlan::new(&sub, true);
        assert_eq!(plan.shell_cells(), 0);
        assert_eq!(plan.interior, Win::full(d));
    }

    #[test]
    fn decomposed_subdomains_cover_and_split() {
        let d = Dims3::new(16, 14, 12);
        let dec = Decomp3::new(d, [2, 2, 2]);
        for r in 0..dec.rank_count() {
            let sub = dec.subdomain(r);
            let plan = ShellPlan::new(&sub, sub.on_boundary(Face::ZLo));
            assert_exact_cover(sub.dims, &plan);
            // Every rank in a 2×2×2 split communicates on three faces.
            assert!(plan.shell_cells() > 0);
            assert!(plan.interior.count() > 0);
        }
    }
}
