//! Offline dev shim for `rayon`: the "parallel" iterators are the plain
//! sequential std iterators, which keeps results identical (the real crate
//! only changes scheduling). Never shipped — dev-container only.

use std::cell::Cell;

thread_local! {
    /// Advertised width of the "pool" whose `install` scope we are inside
    /// (the shim executes everything on the calling thread).
    static INSTALLED_WIDTH: Cell<usize> = const { Cell::new(1) };
}

/// Threads visible to the current scope — the configured width of the
/// innermost `ThreadPool::install`, like the real crate reports.
pub fn current_num_threads() -> usize {
    INSTALLED_WIDTH.with(|w| w.get())
}

/// Sequential stand-in for a dedicated pool: `install` runs the closure on
/// the calling thread but advertises the configured width through
/// [`current_num_threads`], so pool-pinning logic can be asserted offline.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        INSTALLED_WIDTH.with(|w| {
            let prev = w.replace(self.width);
            let r = op();
            w.set(prev);
            r
        })
    }

    pub fn current_num_threads(&self) -> usize {
        self.width
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("shim thread pool build error (unreachable)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirrors `rayon::ThreadPoolBuilder` far enough for pinned-pool callers.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            width: if self.num_threads == 0 { 1 } else { self.num_threads },
        })
    }
}

pub mod prelude {
    /// `par_iter` → sequential `iter`.
    pub trait ShimParIter {
        type Iter;
        fn par_iter(self) -> Self::Iter;
    }

    impl<'a, T: 'a> ShimParIter for &'a [T] {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> ShimParIter for &'a Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(self) -> Self::Iter {
            self.iter()
        }
    }

    /// `par_iter_mut` → sequential `iter_mut`.
    pub trait ShimParIterMut {
        type Iter;
        fn par_iter_mut(self) -> Self::Iter;
    }

    impl<'a, T: 'a> ShimParIterMut for &'a mut [T] {
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a> ShimParIterMut for &'a mut Vec<T> {
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `into_par_iter` → `into_iter`.
    pub trait ShimIntoParIter: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> ShimIntoParIter for T {}

    /// `par_chunks` / `par_chunks_mut` → sequential chunking.
    pub trait ShimParChunks {
        type Chunks;
        type ChunksMut;
        fn par_chunks(self) -> Self::Chunks
        where
            Self: Sized;
    }

    pub trait ShimParChunksSlice<'a, T> {
        fn par_chunks(self, size: usize) -> std::slice::Chunks<'a, T>;
    }

    impl<'a, T> ShimParChunksSlice<'a, T> for &'a [T] {
        fn par_chunks(self, size: usize) -> std::slice::Chunks<'a, T> {
            self.chunks(size)
        }
    }

    pub trait ShimParChunksMutSlice<'a, T> {
        fn par_chunks_mut(self, size: usize) -> std::slice::ChunksMut<'a, T>;
    }

    impl<'a, T> ShimParChunksMutSlice<'a, T> for &'a mut [T] {
        fn par_chunks_mut(self, size: usize) -> std::slice::ChunksMut<'a, T> {
            self.chunks_mut(size)
        }
    }
}
