//! Offline dev shim for `serde_json`: a small JSON value type plus the
//! `json!` macro and string (de)serialisation entry points. Derived types
//! serialise field-wise via the shim `serde::Serialize` hook; unsupported
//! shapes fail loudly there instead of producing placeholders. Never
//! shipped.

use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Single-line form, for newline-delimited wire protocols (`Display`
    /// stays indented for on-disk artifacts; real serde_json callers
    /// would use `to_string()` — shim users needing one line use this).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{}", n));
                }
            }
            Value::String(s) => out.push_str(&format!("{:?}", s)),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{:?}:", k));
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad1 = "  ".repeat(indent + 1);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{}", n));
                }
            }
            Value::String(s) => out.push_str(&format!("{:?}", s)),
            Value::Array(a) => {
                if a.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, v) in a.iter().enumerate() {
                    out.push_str(&pad1);
                    v.write_pretty(out, indent + 1);
                    if i + 1 < a.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    out.push_str(&pad1);
                    out.push_str(&format!("{:?}: ", k));
                    v.write_pretty(out, indent + 1);
                    if i + 1 < m.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        f.write_str(&s)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl serde::Serialize for Value {
    fn shim_json(&self) -> String {
        self.to_string()
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn shim_from_value(v: &serde::value::ShimValue) -> std::result::Result<Self, String> {
        use serde::value::ShimValue;
        Ok(match v {
            ShimValue::Null => Value::Null,
            ShimValue::Bool(b) => Value::Bool(*b),
            ShimValue::Number(n) => Value::Number(*n),
            ShimValue::String(s) => Value::String(s.clone()),
            ShimValue::Array(a) => Value::Array(
                a.iter()
                    .map(Self::shim_from_value)
                    .collect::<std::result::Result<_, _>>()?,
            ),
            ShimValue::Object(m) => Value::Object(
                m.iter()
                    .map(|(k, x)| Ok((k.clone(), Self::shim_from_value(x)?)))
                    .collect::<std::result::Result<_, String>>()?,
            ),
        })
    }
}

macro_rules! from_num {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(v as f64) }
        })*
    };
}

from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

/// `json!` fallback: serialize any `Serialize` by reference (mirrors the
/// real macro's `to_value(&expr)` so value exprs are not moved).
pub fn shim_to_value<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    from_str::<Value>(&v.shim_json()).unwrap_or(Value::Null)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    // Derived impls emit compact JSON; round-trip through `Value` for the
    // indented form. Raw output is already pretty when `T` is `Value`.
    let raw = value.shim_json();
    match from_str::<Value>(&raw) {
        Ok(v) => Ok(v.to_string()),
        Err(_) => Ok(raw),
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.shim_json())
}

pub fn from_str<T: for<'de> serde::Deserialize<'de>>(text: &str) -> Result<T> {
    T::shim_from_json(text).map_err(Error)
}

/// Simplified `json!` macro: objects with literal-string keys, arrays,
/// `null`, and arbitrary `Into<Value>` expressions (TT-munched so values
/// may span multiple tokens, e.g. `a.mean / b.mean`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        let mut vec = ::std::vec::Vec::<$crate::Value>::new();
        $crate::shim_json_array!(vec [] $($tt)+);
        $crate::Value::Array(vec)
    }};
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut map = ::std::collections::BTreeMap::<String, $crate::Value>::new();
        $crate::shim_json_object!(map $($tt)+);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::shim_to_value(&$other) };
}

/// Object-body muncher: `key : value , ...` (helper, not public API).
#[doc(hidden)]
#[macro_export]
macro_rules! shim_json_object {
    ($map:ident) => {};
    ($map:ident $key:literal : $($rest:tt)+) => {
        $crate::shim_json_value!($map [$key] [] $($rest)+);
    };
}

/// Value accumulator: collects tokens until a top-level comma (helper).
#[doc(hidden)]
#[macro_export]
macro_rules! shim_json_value {
    ($map:ident [$key:literal] [$($val:tt)+] , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!($($val)+));
        $crate::shim_json_object!($map $($rest)*);
    };
    ($map:ident [$key:literal] [$($val:tt)+]) => {
        $map.insert($key.to_string(), $crate::json!($($val)+));
    };
    ($map:ident [$key:literal] [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::shim_json_value!($map [$key] [$($val)* $next] $($rest)*);
    };
}

/// Array-element muncher (helper, not public API).
#[doc(hidden)]
#[macro_export]
macro_rules! shim_json_array {
    ($vec:ident []) => {};
    ($vec:ident [$($val:tt)+] , $($rest:tt)*) => {
        $vec.push($crate::json!($($val)+));
        $crate::shim_json_array!($vec [] $($rest)*);
    };
    ($vec:ident [$($val:tt)+]) => {
        $vec.push($crate::json!($($val)+));
    };
    ($vec:ident [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::shim_json_array!($vec [$($val)* $next] $($rest)*);
    };
}
