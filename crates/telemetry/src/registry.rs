//! Cross-rank registry: hands out recorders at rank spawn, collects
//! snapshots at rank completion, aggregates and exports.

use crate::recorder::{Recorder, Snapshot};
use crate::report::TelemetryReport;
use crate::trace;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default span-ring capacity per rank: 16384 spans × 24 B = 384 KiB/rank.
/// Small profile runs fit comfortably; long runs wrap the ring (newest spans
/// kept for the trace, totals stay exact).
pub const DEFAULT_SPAN_CAPACITY: usize = 16_384;

/// Shared telemetry hub for one cluster run. Create before spawning ranks;
/// each rank calls [`recorder`](Registry::recorder) at spawn and the cluster
/// submits the rank's snapshot when its body completes (even on panic, so
/// fault forensics keep the partial timeline).
#[derive(Debug)]
pub struct Registry {
    epoch: Instant,
    ranks: usize,
    span_capacity: usize,
    slots: Mutex<Vec<Option<Snapshot>>>,
}

impl Registry {
    pub fn new(ranks: usize) -> Arc<Registry> {
        Self::with_capacity(ranks, DEFAULT_SPAN_CAPACITY)
    }

    /// `span_capacity` is the per-rank ring size in spans (0 = counters and
    /// totals only, no timeline).
    pub fn with_capacity(ranks: usize, span_capacity: usize) -> Arc<Registry> {
        Arc::new(Registry {
            epoch: Instant::now(),
            ranks,
            span_capacity,
            slots: Mutex::new(vec![None; ranks]),
        })
    }

    #[inline]
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Common time origin for all rank recorders (trace timestamps are
    /// offsets from this instant).
    #[inline]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Hand out the (enabled) recorder for `rank`. Preallocation happens
    /// here, before the timestep loop starts.
    pub fn recorder(&self, rank: usize) -> Recorder {
        assert!(rank < self.ranks, "rank {rank} out of range for {}-rank registry", self.ranks);
        Recorder::enabled(rank, self.epoch, self.span_capacity)
    }

    /// Store a rank's snapshot. Re-running the cluster (e.g. a resilience
    /// restart pass) overwrites the rank's previous submission: the report
    /// describes the latest pass.
    pub fn submit(&self, snap: Snapshot) {
        let rank = snap.rank;
        let mut slots = self.slots.lock().unwrap();
        if rank < slots.len() {
            slots[rank] = Some(snap);
        }
    }

    /// Snapshots submitted so far, in rank order (missing ranks skipped).
    pub fn snapshots(&self) -> Vec<Snapshot> {
        self.slots.lock().unwrap().iter().flatten().cloned().collect()
    }

    /// Aggregate all submitted snapshots into a cross-rank report.
    pub fn report(&self) -> TelemetryReport {
        TelemetryReport::from_snapshots(&self.snapshots())
    }

    /// Chrome trace-event JSON (one virtual pid per rank); open in Perfetto
    /// or chrome://tracing.
    pub fn chrome_trace(&self) -> String {
        trace::chrome_trace(&self.snapshots())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::Phase;
    use std::time::Duration;

    #[test]
    fn registry_hands_out_and_collects() {
        let reg = Registry::with_capacity(4, 64);
        for rank in 0..4 {
            let mut r = reg.recorder(rank);
            assert!(r.is_enabled());
            assert_eq!(r.rank(), rank);
            r.span_at(Phase::Send, reg.epoch(), Duration::from_nanos(10 * (rank as u64 + 1)));
            reg.submit(r.snapshot());
        }
        let snaps = reg.snapshots();
        assert_eq!(snaps.len(), 4);
        assert_eq!(snaps[2].rank, 2);
        assert_eq!(snaps[2].phase_ns(Phase::Send), 30);
    }

    #[test]
    fn resubmission_overwrites() {
        let reg = Registry::with_capacity(1, 8);
        let mut r = reg.recorder(0);
        r.span_at(Phase::Wait, reg.epoch(), Duration::from_nanos(5));
        reg.submit(r.snapshot());
        let mut r2 = reg.recorder(0);
        r2.span_at(Phase::Wait, reg.epoch(), Duration::from_nanos(99));
        reg.submit(r2.snapshot());
        let snaps = reg.snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].phase_ns(Phase::Wait), 99);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn recorder_rank_bounds_checked() {
        let reg = Registry::new(2);
        let _ = reg.recorder(2);
    }
}
