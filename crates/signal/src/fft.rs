//! Iterative radix-2 complex FFT (Cooley–Tukey), implemented from scratch.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Minimal complex number (f64) for the FFT.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self { re: r * theta.cos(), im: r * theta.sin() }
    }

    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(self.re * o.re - self.im * o.im, self.re * o.im + self.im * o.re)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Smallest power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
}

fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        let half = len / 2;
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for j in 0..half {
                let u = data[i + j];
                let v = data[i + j + half] * w;
                data[i + j] = u + v;
                data[i + j + half] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT (in place). Length must be a power of two.
pub fn fft(data: &mut [Complex]) {
    fft_in_place(data, false);
}

/// Inverse FFT (in place, normalised by 1/N).
pub fn ifft(data: &mut [Complex]) {
    fft_in_place(data, true);
    let inv = 1.0 / data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(inv);
    }
}

/// Forward FFT of a real signal, zero-padded to the next power of two.
/// Returns the full complex spectrum (length = padded N).
pub fn rfft(signal: &[f64]) -> Vec<Complex> {
    let n = next_pow2(signal.len());
    let mut data = vec![Complex::ZERO; n];
    for (d, &s) in data.iter_mut().zip(signal) {
        d.re = s;
    }
    fft(&mut data);
    data
}

/// 2-D FFT over a row-major `nx × ny` grid (both dims powers of two).
pub fn fft2(data: &mut [Complex], nx: usize, ny: usize, inverse: bool) {
    assert_eq!(data.len(), nx * ny);
    // Rows (contiguous).
    for row in data.chunks_exact_mut(nx) {
        fft_in_place(row, inverse);
    }
    // Columns (strided; gather/scatter through a scratch buffer).
    let mut col = vec![Complex::ZERO; ny];
    for x in 0..nx {
        for y in 0..ny {
            col[y] = data[x + nx * y];
        }
        fft_in_place(&mut col, inverse);
        for y in 0..ny {
            data[x + nx * y] = col[y];
        }
    }
    if inverse {
        // fft_in_place normalises nothing; apply 1/N once per axis pass is
        // wrong — apply full 1/(nx*ny) here (row/col passes above used the
        // raw transform).
        let inv = 1.0 / (nx * ny) as f64;
        for v in data.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut d = vec![Complex::ZERO; 8];
        d[0].re = 1.0;
        fft(&mut d);
        for v in &d {
            assert!(approx(v.re, 1.0, 1e-12) && approx(v.im, 0.0, 1e-12));
        }
    }

    #[test]
    fn fft_of_dc_concentrates_at_zero() {
        let mut d = vec![Complex::new(1.0, 0.0); 16];
        fft(&mut d);
        assert!(approx(d[0].re, 16.0, 1e-9));
        for v in &d[1..] {
            assert!(v.norm() < 1e-9);
        }
    }

    #[test]
    fn single_tone_lands_in_right_bin() {
        let n = 64;
        let kf = 5;
        let mut d: Vec<Complex> = (0..n)
            .map(|i| {
                let t = 2.0 * std::f64::consts::PI * kf as f64 * i as f64 / n as f64;
                Complex::new(t.cos(), 0.0)
            })
            .collect();
        fft(&mut d);
        // Energy at bins kf and n-kf, each n/2.
        assert!(approx(d[kf].norm(), n as f64 / 2.0, 1e-8));
        assert!(approx(d[n - kf].norm(), n as f64 / 2.0, 1e-8));
        for (i, v) in d.iter().enumerate() {
            if i != kf && i != n - kf {
                assert!(v.norm() < 1e-8, "leak at bin {i}");
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 128;
        let orig: Vec<Complex> =
            (0..n).map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos())).collect();
        let mut d = orig.clone();
        fft(&mut d);
        ifft(&mut d);
        for (a, b) in d.iter().zip(&orig) {
            assert!(approx(a.re, b.re, 1e-10) && approx(a.im, b.im, 1e-10));
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 256;
        let sig: Vec<Complex> =
            (0..n).map(|i| Complex::new((0.13 * i as f64).sin(), 0.0)).collect();
        let time_energy: f64 = sig.iter().map(|v| v.norm_sq()).sum();
        let mut d = sig;
        fft(&mut d);
        let freq_energy: f64 = d.iter().map(|v| v.norm_sq()).sum::<f64>() / n as f64;
        assert!(approx(time_energy, freq_energy, 1e-8 * time_energy.max(1.0)));
    }

    #[test]
    fn fft2_round_trip() {
        let (nx, ny) = (8, 4);
        let orig: Vec<Complex> =
            (0..nx * ny).map(|i| Complex::new(i as f64, (i as f64 * 0.3).sin())).collect();
        let mut d = orig.clone();
        fft2(&mut d, nx, ny, false);
        fft2(&mut d, nx, ny, true);
        for (a, b) in d.iter().zip(&orig) {
            assert!(approx(a.re, b.re, 1e-9) && approx(a.im, b.im, 1e-9));
        }
    }

    #[test]
    fn rfft_pads_to_pow2() {
        let spec = rfft(&[1.0, 2.0, 3.0]);
        assert_eq!(spec.len(), 4);
        // DC bin = sum of samples.
        assert!(approx(spec[0].re, 6.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        let mut d = vec![Complex::ZERO; 6];
        fft(&mut d);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(1024), 1024);
        assert_eq!(next_pow2(1025), 2048);
    }
}
