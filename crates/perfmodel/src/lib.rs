//! Analytic performance model of AWP-ODC (paper §V, Tables 1–2).
//!
//! The paper's production machines are petascale systems we cannot run
//! on; this crate reproduces their *performance model* instead:
//!
//! * [`machines`] — Table 1's systems with latency α, inverse bandwidth β
//!   and per-flop time τ (Jaguar's values are the paper's §V.A numbers,
//!   the others are documented estimates from their interconnects);
//! * [`speedup`] — the Minkoff-style speedup formula of Eq. (8) and the
//!   parallel-efficiency / sustained-flop-rate calculators;
//! * [`evolution`] — Table 2's code-version ladder with the paper's
//!   per-optimisation gains, used to model Fig. 13's time-to-solution
//!   steps and Fig. 12's execution-time breakdown;
//! * [`resilience`] — Young/Daly optimal checkpoint-interval model
//!   driving the fault-tolerance layer's epoch cadence;
//! * [`scaling`] — strong/weak scaling projections (Fig. 14);
//! * [`memory`] — the §VII.B per-core memory budget (581 MB/core for M8,
//!   reproduced line by line).

pub mod evolution;
pub mod machines;
pub mod memory;
pub mod resilience;
pub mod scaling;
pub mod speedup;

pub use machines::{Machine, MachineProfile};
pub use resilience::{daly_interval, young_interval, ResilienceInput};
pub use speedup::{efficiency, speedup, CommCost, ModelInput, PAPER_C};
