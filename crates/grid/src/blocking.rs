//! Cache blocking of the (k, j) loop nest (paper §IV.B).
//!
//! The AWP-ODC kernels stream unit-stride along x; the j−1 and k−1 planes
//! fall out of cache between iterations for any reasonably sized grid. The
//! paper forms memory blocks over the k and j loops (`kblock`/`jblock`,
//! empirically 16/8 for loop length ~125) so operands from adjacent planes
//! are still resident when revisited.

use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Block sizes for the k (outer) and j (middle) loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSpec {
    pub kblock: usize,
    pub jblock: usize,
}

impl BlockSpec {
    /// The paper's empirically optimal choice on Jaguar (§IV.B: "For a
    /// typical loop length of 125, the optimal solution was found to be
    /// 16/8").
    pub const JAGUAR: BlockSpec = BlockSpec { kblock: 16, jblock: 8 };

    /// No blocking: a single block spans the whole loop.
    pub const UNBLOCKED: BlockSpec = BlockSpec {
        kblock: usize::MAX,
        jblock: usize::MAX,
    };

    pub fn new(kblock: usize, jblock: usize) -> Self {
        assert!(kblock > 0 && jblock > 0, "block sizes must be positive");
        Self { kblock, jblock }
    }
}

/// Tile the rectangle `0..nj` × `0..nk` into (j-range, k-range) blocks,
/// ordered k-block outermost, mirroring the paper's
/// `do kk / do jj / do k / do j` restructuring.
pub fn blocked_tiles(nj: usize, nk: usize, spec: BlockSpec) -> Vec<(Range<usize>, Range<usize>)> {
    let kb = spec.kblock.max(1);
    let jb = spec.jblock.max(1);
    let mut tiles = Vec::new();
    let mut kk = 0;
    while kk < nk {
        let ke = (kk.saturating_add(kb)).min(nk);
        let mut jj = 0;
        while jj < nj {
            let je = (jj.saturating_add(jb)).min(nj);
            tiles.push((jj..je, kk..ke));
            jj = je;
        }
        kk = ke;
    }
    tiles
}

/// Run `body(j, k)` over every (j, k) pair in blocked order.
#[inline]
pub fn for_each_blocked(nj: usize, nk: usize, spec: BlockSpec, mut body: impl FnMut(usize, usize)) {
    for (jr, kr) in blocked_tiles(nj, nk, spec) {
        for k in kr.clone() {
            for j in jr.clone() {
                body(j, k);
            }
        }
    }
}

/// Tile an arbitrary sub-rectangle `j0..j1` × `k0..k1` into (j-range,
/// k-range) blocks, k-block outermost. The windowed analogue of
/// [`blocked_tiles`] used by the shell/interior split timestep: blocks are
/// anchored at the window origin, so the per-cell visit set is exactly the
/// window regardless of spec (per-cell updates are order-independent).
pub fn blocked_tiles_range(
    j0: usize,
    j1: usize,
    k0: usize,
    k1: usize,
    spec: BlockSpec,
) -> Vec<(Range<usize>, Range<usize>)> {
    let kb = spec.kblock.max(1);
    let jb = spec.jblock.max(1);
    let mut tiles = Vec::new();
    let mut kk = k0;
    while kk < k1 {
        let ke = (kk.saturating_add(kb)).min(k1);
        let mut jj = j0;
        while jj < j1 {
            let je = (jj.saturating_add(jb)).min(j1);
            tiles.push((jj..je, kk..ke));
            jj = je;
        }
        kk = ke;
    }
    tiles
}

/// Run `body(j, k)` over every (j, k) pair of a sub-rectangle in blocked
/// order.
#[inline]
pub fn for_each_blocked_range(
    j0: usize,
    j1: usize,
    k0: usize,
    k1: usize,
    spec: BlockSpec,
    mut body: impl FnMut(usize, usize),
) {
    for (jr, kr) in blocked_tiles_range(j0, j1, k0, k1, spec) {
        for k in kr.clone() {
            for j in jr.clone() {
                body(j, k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tiles_cover_exactly_once() {
        for (nj, nk, spec) in [
            (10, 10, BlockSpec::new(3, 4)),
            (125, 125, BlockSpec::JAGUAR),
            (7, 1, BlockSpec::new(16, 8)),
            (5, 5, BlockSpec::UNBLOCKED),
        ] {
            let mut seen = HashSet::new();
            for_each_blocked(nj, nk, spec, |j, k| {
                assert!(j < nj && k < nk);
                assert!(seen.insert((j, k)), "({j},{k}) visited twice");
            });
            assert_eq!(seen.len(), nj * nk);
        }
    }

    #[test]
    fn unblocked_is_single_tile() {
        let tiles = blocked_tiles(9, 4, BlockSpec::UNBLOCKED);
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0], (0..9, 0..4));
    }

    #[test]
    fn jaguar_tiles_have_requested_shape() {
        let tiles = blocked_tiles(125, 125, BlockSpec::JAGUAR);
        // Full interior tiles are 8 (j) by 16 (k).
        let (jr, kr) = &tiles[0];
        assert_eq!(jr.len(), 8);
        assert_eq!(kr.len(), 16);
        // 125 = 15*8 + 5 → 16 j-blocks; 125 = 7*16 + 13 → 8 k-blocks.
        assert_eq!(tiles.len(), 16 * 8);
    }

    #[test]
    fn k_is_outermost() {
        let tiles = blocked_tiles(4, 4, BlockSpec::new(2, 2));
        // First two tiles share the first k block.
        assert_eq!(tiles[0].1, 0..2);
        assert_eq!(tiles[1].1, 0..2);
        assert_eq!(tiles[2].1, 2..4);
    }

    #[test]
    #[should_panic(expected = "block sizes must be positive")]
    fn zero_block_rejected() {
        BlockSpec::new(0, 8);
    }

    /// Degenerate specs the SIMD loops now sit on top of: `usize::MAX`
    /// blocks (UNBLOCKED and half-unblocked), single-cell blocks, and
    /// blocks larger than the loop length must all tile exactly once
    /// without overflowing.
    #[test]
    fn degenerate_specs_cover_exactly_once() {
        for (nj, nk, spec) in [
            (7, 5, BlockSpec { kblock: usize::MAX, jblock: usize::MAX }),
            (7, 5, BlockSpec { kblock: usize::MAX, jblock: 2 }),
            (7, 5, BlockSpec { kblock: 2, jblock: usize::MAX }),
            (7, 5, BlockSpec::new(1, 1)),
            (7, 5, BlockSpec::new(100, 100)),
            (1, 1, BlockSpec::new(1, 1)),
            (1, 1, BlockSpec::UNBLOCKED),
        ] {
            let mut seen = HashSet::new();
            for_each_blocked(nj, nk, spec, |j, k| {
                assert!(j < nj && k < nk, "({j},{k}) out of range for {spec:?}");
                assert!(seen.insert((j, k)), "({j},{k}) visited twice for {spec:?}");
            });
            assert_eq!(seen.len(), nj * nk, "{spec:?}");
        }
    }

    #[test]
    fn oversized_block_is_single_tile() {
        // kblock/jblock beyond the loop length clamp to one tile, exactly
        // like UNBLOCKED.
        let tiles = blocked_tiles(6, 3, BlockSpec::new(50, 50));
        assert_eq!(tiles, blocked_tiles(6, 3, BlockSpec::UNBLOCKED));
    }

    #[test]
    fn unit_blocks_enumerate_every_cell() {
        let tiles = blocked_tiles(3, 2, BlockSpec::new(1, 1));
        assert_eq!(tiles.len(), 6);
        for (jr, kr) in &tiles {
            assert_eq!(jr.len(), 1);
            assert_eq!(kr.len(), 1);
        }
    }

    #[test]
    fn empty_loop_produces_no_tiles() {
        assert!(blocked_tiles(0, 4, BlockSpec::JAGUAR).is_empty());
        assert!(blocked_tiles(4, 0, BlockSpec::JAGUAR).is_empty());
    }

    #[test]
    fn range_tiles_cover_window_exactly_once() {
        for (j0, j1, k0, k1, spec) in [
            (0, 10, 0, 10, BlockSpec::new(3, 4)),
            (2, 9, 5, 17, BlockSpec::JAGUAR),
            (3, 4, 0, 25, BlockSpec::new(16, 8)),
            (1, 6, 2, 3, BlockSpec::UNBLOCKED),
            (4, 4, 0, 9, BlockSpec::JAGUAR), // empty j window
            (0, 9, 7, 7, BlockSpec::JAGUAR), // empty k window
        ] {
            let mut seen = HashSet::new();
            for_each_blocked_range(j0, j1, k0, k1, spec, |j, k| {
                assert!((j0..j1).contains(&j) && (k0..k1).contains(&k));
                assert!(seen.insert((j, k)), "({j},{k}) visited twice");
            });
            assert_eq!(seen.len(), (j1 - j0) * (k1 - k0));
        }
    }

    #[test]
    fn full_range_matches_blocked_tiles() {
        assert_eq!(
            blocked_tiles_range(0, 125, 0, 125, BlockSpec::JAGUAR),
            blocked_tiles(125, 125, BlockSpec::JAGUAR)
        );
    }
}
