//! Crash flight recorder: a small always-on black box per rank.
//!
//! When a run is supervised (in-flight recovery armed), every rank keeps
//! the last-N message envelopes and span tails in two preallocated rings,
//! independent of whether full telemetry is enabled. On crash, stall, or
//! degradation the supervisor serializes each ring to
//! `flightrec-<rank>.json` so every `awp chaos --recover` drill leaves a
//! reconstructable record of what each rank was doing when it died.
//!
//! The recorder is written only by its owning rank's probes and read by
//! the supervisor's monitor thread at dump time, hence the `Mutex` in
//! [`crate::Recorder`]'s handle; steady-state cost is one uncontended
//! lock per probe, with no allocation after construction (both rings are
//! preallocated and overwritten in place).

use crate::phase::Phase;
use std::fmt::Write as _;

/// Envelope direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvDir {
    Send,
    Recv,
}

impl EnvDir {
    pub const fn name(self) -> &'static str {
        match self {
            EnvDir::Send => "send",
            EnvDir::Recv => "recv",
        }
    }
}

/// One recorded message envelope (payload bytes are never kept).
#[derive(Debug, Clone, Copy)]
pub struct EnvelopeRec {
    pub dir: EnvDir,
    pub peer: u32,
    pub tag: u64,
    pub bytes: u64,
    pub clock: u64,
    pub step: u32,
    /// Offset from the recorder epoch, ns.
    pub t_ns: u64,
}

/// One span tail (most recent finished phase intervals).
#[derive(Debug, Clone, Copy)]
pub struct SpanTailRec {
    pub phase: Phase,
    pub step: u32,
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// Default envelope-ring capacity.
pub const FLIGHT_ENV_CAPACITY: usize = 64;
/// Default span-tail ring capacity.
pub const FLIGHT_SPAN_CAPACITY: usize = 32;

#[derive(Debug)]
pub struct FlightRecorder {
    rank: usize,
    envs: Vec<EnvelopeRec>,
    env_next: usize,
    env_total: u64,
    spans: Vec<SpanTailRec>,
    span_next: usize,
    span_total: u64,
}

impl FlightRecorder {
    pub fn new(rank: usize, env_capacity: usize, span_capacity: usize) -> Self {
        FlightRecorder {
            rank,
            envs: Vec::with_capacity(env_capacity),
            env_next: 0,
            env_total: 0,
            spans: Vec::with_capacity(span_capacity),
            span_next: 0,
            span_total: 0,
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total envelopes ever recorded (ring keeps only the newest).
    pub fn env_total(&self) -> u64 {
        self.env_total
    }

    #[inline]
    pub fn record_env(&mut self, rec: EnvelopeRec) {
        self.env_total += 1;
        if self.envs.len() < self.envs.capacity() {
            self.envs.push(rec);
        } else if self.envs.capacity() > 0 {
            self.envs[self.env_next] = rec;
            self.env_next = (self.env_next + 1) % self.envs.capacity();
        }
    }

    #[inline]
    pub fn record_span(&mut self, rec: SpanTailRec) {
        self.span_total += 1;
        if self.spans.len() < self.spans.capacity() {
            self.spans.push(rec);
        } else if self.spans.capacity() > 0 {
            self.spans[self.span_next] = rec;
            self.span_next = (self.span_next + 1) % self.spans.capacity();
        }
    }

    /// Envelopes in chronological order (oldest surviving first).
    pub fn envelopes(&self) -> Vec<EnvelopeRec> {
        rotate(&self.envs, self.env_next)
    }

    /// Span tails in chronological order (oldest surviving first).
    pub fn span_tails(&self) -> Vec<SpanTailRec> {
        rotate(&self.spans, self.span_next)
    }

    /// Serialize the black box. Hand-rolled (this crate is std-only);
    /// `reason` must be a plain identifier-ish string (it is not escaped).
    pub fn to_json(&self, reason: &str) -> String {
        let mut out = String::with_capacity(256 + 96 * (self.envs.len() + self.spans.len()));
        let _ = write!(
            out,
            "{{\"v\":1,\"kind\":\"flightrec\",\"rank\":{},\"reason\":\"{}\",\
             \"total_envelopes\":{},\"total_spans\":{},\"envelopes\":[",
            self.rank, reason, self.env_total, self.span_total
        );
        for (i, e) in self.envelopes().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"dir\":\"{}\",\"peer\":{},\"tag\":{},\"bytes\":{},\"clock\":{},\
                 \"step\":{},\"t_us\":{:.3}}}",
                e.dir.name(),
                e.peer,
                e.tag,
                e.bytes,
                e.clock,
                e.step,
                e.t_ns as f64 / 1e3,
            );
        }
        out.push_str("],\"spans\":[");
        for (i, s) in self.span_tails().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"phase\":\"{}\",\"step\":{},\"ts_us\":{:.3},\"dur_us\":{:.3}}}",
                s.phase.name(),
                s.step,
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
            );
        }
        out.push_str("]}");
        out
    }
}

fn rotate<T: Copy>(ring: &[T], next: usize) -> Vec<T> {
    let mut out = Vec::with_capacity(ring.len());
    if next > 0 && next < ring.len() {
        out.extend_from_slice(&ring[next..]);
        out.extend_from_slice(&ring[..next]);
    } else {
        out.extend_from_slice(ring);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(peer: u32, tag: u64, clock: u64) -> EnvelopeRec {
        EnvelopeRec { dir: EnvDir::Send, peer, tag, bytes: 8, clock, step: 0, t_ns: tag * 10 }
    }

    #[test]
    fn envelope_ring_keeps_newest_in_order() {
        let mut fr = FlightRecorder::new(2, 4, 2);
        for t in 0..10u64 {
            fr.record_env(env(1, t, t + 1));
        }
        assert_eq!(fr.env_total(), 10);
        let tags: Vec<u64> = fr.envelopes().iter().map(|e| e.tag).collect();
        assert_eq!(tags, vec![6, 7, 8, 9]);
    }

    #[test]
    fn span_tail_ring_wraps() {
        let mut fr = FlightRecorder::new(0, 2, 3);
        for i in 0..5u32 {
            fr.record_span(SpanTailRec {
                phase: Phase::Wait,
                step: i,
                start_ns: i as u64,
                dur_ns: 1,
            });
        }
        let steps: Vec<u32> = fr.span_tails().iter().map(|s| s.step).collect();
        assert_eq!(steps, vec![2, 3, 4]);
    }

    #[test]
    fn json_is_balanced_and_self_describing() {
        let mut fr = FlightRecorder::new(1, 8, 8);
        fr.record_env(env(0, 42, 3));
        fr.record_env(EnvelopeRec {
            dir: EnvDir::Recv,
            peer: 2,
            tag: 43,
            bytes: 16,
            clock: 5,
            step: 7,
            t_ns: 1500,
        });
        fr.record_span(SpanTailRec { phase: Phase::Send, step: 7, start_ns: 100, dur_ns: 50 });
        let json = fr.to_json("crash");
        assert!(json.starts_with("{\"v\":1,\"kind\":\"flightrec\",\"rank\":1,"), "{json}");
        assert!(json.contains("\"reason\":\"crash\""), "{json}");
        assert!(json.contains("\"dir\":\"recv\""), "{json}");
        assert!(json.contains("\"total_envelopes\":2"), "{json}");
        assert!(json.contains("\"phase\":\"send\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_recorder_serializes() {
        let fr = FlightRecorder::new(0, 0, 0);
        let json = fr.to_json("degraded");
        assert!(json.contains("\"envelopes\":[]"), "{json}");
        assert!(json.contains("\"spans\":[]"), "{json}");
    }
}
