//! Live streaming stats endpoint — the scx_stats-shaped monitoring side
//! channel.
//!
//! A run that was armed with an [`LiveStats`] table exposes it through a
//! long-lived endpoint (TCP or Unix-domain socket). Each client that
//! connects receives one self-describing **hello** line, then periodic
//! **snapshot** lines — newline-delimited versioned JSON produced by
//! [`LiveStats::hello_json`]/[`LiveStats::snapshot_json`] — for as long as
//! it stays connected. The server samples racy relaxed atomics on its own
//! thread; the solve hot path never blocks on, allocates for, or even
//! notices the endpoint (zero-alloc discipline is pinned in
//! `telemetry/tests/zero_alloc.rs`).
//!
//! Version negotiation is deliberately one-sided and dumb: the first line
//! carries `{"v":N,"proto":"awp-stats"}` and clients must reject a stream
//! whose version or proto they do not recognise ([`validate_stream`]).
//! There is no renegotiation — a mismatched client disconnects and the
//! server does not care.

use awp_telemetry::{LiveStats, STATS_PROTO_NAME, STATS_PROTO_VERSION};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a stats endpoint listens. `unix:<path>` selects a Unix-domain
/// socket; anything else is a TCP `host:port` bind address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsAddr {
    Tcp(String),
    Unix(PathBuf),
}

impl StatsAddr {
    pub fn parse(s: &str) -> StatsAddr {
        match s.strip_prefix("unix:") {
            Some(path) => StatsAddr::Unix(PathBuf::from(path)),
            None => StatsAddr::Tcp(s.to_string()),
        }
    }
}

impl std::fmt::Display for StatsAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsAddr::Tcp(a) => write!(f, "{a}"),
            StatsAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    /// Non-blocking accept; `Ok(None)` when nobody is knocking.
    fn poll_accept(&self) -> io::Result<Option<Box<dyn Write + Send>>> {
        let stream: io::Result<Box<dyn Write + Send>> = match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Box::new(s) as Box<dyn Write + Send>
            }),
            Listener::Unix(l) => l.accept().map(|(s, _)| Box::new(s) as Box<dyn Write + Send>),
        };
        match stream {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// A running stats endpoint. Dropping (or calling [`stop`](Self::stop))
/// shuts the listener down and joins every per-client writer thread.
pub struct StatsServer {
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    /// The resolved bind address — useful when binding TCP port 0.
    local: StatsAddr,
    /// Unix socket path to unlink on shutdown.
    unlink: Option<PathBuf>,
}

impl StatsServer {
    /// Bind `addr` and start streaming `live` at `interval` to every
    /// client that connects.
    pub fn serve(
        addr: &StatsAddr,
        live: Arc<LiveStats>,
        interval: Duration,
    ) -> io::Result<StatsServer> {
        let (listener, local, unlink) = match addr {
            StatsAddr::Tcp(a) => {
                let l = TcpListener::bind(a.as_str())?;
                let local = StatsAddr::Tcp(l.local_addr()?.to_string());
                l.set_nonblocking(true)?;
                (Listener::Tcp(l), local, None)
            }
            StatsAddr::Unix(p) => {
                // A stale socket file from a dead run would fail the bind.
                let _ = std::fs::remove_file(p);
                let l = UnixListener::bind(p)?;
                l.set_nonblocking(true)?;
                (Listener::Unix(l), StatsAddr::Unix(p.clone()), Some(p.clone()))
            }
        };
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let clients: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
                while !stop.load(Ordering::Acquire) {
                    match listener.poll_accept() {
                        Ok(Some(mut sink)) => {
                            let live = Arc::clone(&live);
                            let stop = Arc::clone(&stop);
                            let handle = std::thread::spawn(move || {
                                let mut seq = 0u64;
                                if writeln!(sink, "{}", live.hello_json()).is_err() {
                                    return;
                                }
                                loop {
                                    let t_ms = t0.elapsed().as_millis() as u64;
                                    if writeln!(sink, "{}", live.snapshot_json(seq, t_ms))
                                        .and_then(|_| sink.flush())
                                        .is_err()
                                    {
                                        return; // client went away
                                    }
                                    seq += 1;
                                    // Sleep in short slices so stop() is
                                    // never held up by a long interval.
                                    let mut left = interval;
                                    while !left.is_zero() {
                                        if stop.load(Ordering::Acquire) {
                                            return;
                                        }
                                        let slice = left.min(Duration::from_millis(25));
                                        std::thread::sleep(slice);
                                        left -= slice;
                                    }
                                }
                            });
                            clients.lock().unwrap().push(handle);
                        }
                        Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                        Err(_) => break, // listener died; clients drain below
                    }
                }
                for h in clients.lock().unwrap().drain(..) {
                    let _ = h.join();
                }
            })
        };
        Ok(StatsServer { stop, accept: Some(accept), local, unlink })
    }

    /// The address the listener actually bound (port 0 resolved).
    pub fn local_addr(&self) -> &StatsAddr {
        &self.local
    }

    /// Shut down: stop streaming, join every thread, unlink the socket.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(p) = self.unlink.take() {
            let _ = std::fs::remove_file(&p);
        }
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Connect to a stats endpoint and read the hello line plus
/// `max_snapshots` snapshot lines (or until `timeout`). Returns the raw
/// lines; pair with [`validate_stream`].
pub fn read_stream(
    addr: &StatsAddr,
    max_snapshots: usize,
    timeout: Duration,
) -> io::Result<Vec<String>> {
    let reader: Box<dyn Read> = match addr {
        StatsAddr::Tcp(a) => {
            let s = TcpStream::connect(a.as_str())?;
            s.set_read_timeout(Some(timeout))?;
            Box::new(s)
        }
        StatsAddr::Unix(p) => {
            let s = UnixStream::connect(p)?;
            s.set_read_timeout(Some(timeout))?;
            Box::new(s)
        }
    };
    let mut lines = Vec::new();
    for line in BufReader::new(reader).lines() {
        lines.push(line?);
        if lines.len() > max_snapshots {
            break; // hello + N snapshots
        }
    }
    Ok(lines)
}

/// Schema-check one received stream: a versioned hello first (reject
/// unknown protocol or version — that is the whole negotiation), then
/// monotonically sequenced snapshots whose per-rank arrays match the
/// advertised rank count. Returns `(ranks, snapshots)`.
pub fn validate_stream(lines: &[String]) -> Result<(usize, usize), String> {
    let hello: serde_json::Value = serde_json::from_str(
        lines.first().ok_or("empty stream: no hello line")?,
    )
    .map_err(|e| format!("hello is not valid JSON: {e}"))?;
    if hello["kind"].as_str() != Some("hello") {
        return Err(format!("first line is not a hello: {hello}"));
    }
    if hello["proto"].as_str() != Some(STATS_PROTO_NAME) {
        return Err(format!("unknown proto {:?}", hello["proto"]));
    }
    let v = hello["v"].as_f64().ok_or("hello: missing v")?;
    if v != STATS_PROTO_VERSION as f64 {
        return Err(format!("protocol version {v} != {STATS_PROTO_VERSION}; refusing stream"));
    }
    let ranks = hello["ranks"].as_f64().ok_or("hello: missing ranks")? as usize;
    if ranks == 0 {
        return Err("hello advertises zero ranks".into());
    }
    // v1 additive extras: a hello may advertise additional per-rank
    // snapshot fields (e.g. ["recoveries","dead_letters"]). They are
    // required only when advertised, so clients of this validator stay
    // compatible with older servers that never emit them.
    let extras: Vec<String> = hello["extras"]
        .as_array()
        .map(|a| a.iter().filter_map(|v| v.as_str().map(String::from)).collect())
        .unwrap_or_default();
    let mut last_seq: Option<u64> = None;
    let mut snapshots = 0usize;
    for (i, line) in lines[1..].iter().enumerate() {
        let snap: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| format!("snapshot {i} is not valid JSON: {e}"))?;
        if snap["kind"].as_str() != Some("snapshot") {
            return Err(format!("line {} is not a snapshot", i + 1));
        }
        if snap["v"].as_f64() != Some(STATS_PROTO_VERSION as f64) {
            return Err(format!("snapshot {i}: version changed mid-stream"));
        }
        let seq = snap["seq"].as_f64().ok_or(format!("snapshot {i}: missing seq"))? as u64;
        if let Some(prev) = last_seq {
            if seq <= prev {
                return Err(format!("snapshot {i}: seq {seq} not after {prev}"));
            }
        }
        last_seq = Some(seq);
        snap["t_ms"].as_f64().ok_or(format!("snapshot {i}: missing t_ms"))?;
        for key in ["imbalance", "hidden_comm"] {
            let x = snap[key].as_f64().ok_or(format!("snapshot {i}: missing {key}"))?;
            if !x.is_finite() || x < 0.0 {
                return Err(format!("snapshot {i}: {key} = {x} is not a finite metric"));
            }
        }
        let cells = snap["ranks"].as_array().ok_or(format!("snapshot {i}: missing ranks"))?;
        if cells.len() != ranks {
            return Err(format!(
                "snapshot {i}: {} rank cells != advertised {ranks}",
                cells.len()
            ));
        }
        for (r, c) in cells.iter().enumerate() {
            for key in ["rank", "step", "steals", "stolen", "tiles", "queue_depth"] {
                c[key].as_f64().ok_or(format!("snapshot {i} rank {r}: missing {key}"))?;
            }
            for key in ["compute_ms", "wait_ms", "send_ms", "inject_ms"] {
                c[key].as_f64().ok_or(format!("snapshot {i} rank {r}: missing {key}"))?;
            }
            for key in &extras {
                c[key.as_str()].as_f64().ok_or(format!(
                    "snapshot {i} rank {r}: missing advertised extra {key}"
                ))?;
            }
        }
        snapshots += 1;
    }
    Ok((ranks, snapshots))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bumped_live(ranks: usize) -> Arc<LiveStats> {
        let live = LiveStats::new(ranks);
        for r in 0..ranks {
            live.rank(r).step.store(5, Ordering::Relaxed);
            live.rank(r).tiles.fetch_add(8, Ordering::Relaxed);
        }
        live
    }

    #[test]
    fn tcp_endpoint_streams_versioned_snapshots() {
        let live = bumped_live(4);
        let srv = StatsServer::serve(
            &StatsAddr::parse("127.0.0.1:0"),
            Arc::clone(&live),
            Duration::from_millis(20),
        )
        .expect("bind ephemeral TCP port");
        let lines =
            read_stream(srv.local_addr(), 3, Duration::from_secs(5)).expect("client reads");
        srv.stop();
        let (ranks, snapshots) = validate_stream(&lines).expect("stream is schema-valid");
        assert_eq!(ranks, 4);
        assert!(snapshots >= 2, "got {snapshots} snapshots: {lines:?}");
    }

    #[test]
    fn unix_endpoint_streams_and_unlinks_socket() {
        let path = std::env::temp_dir()
            .join(format!("awp-stats-test-{}.sock", std::process::id()));
        let live = bumped_live(2);
        let srv = StatsServer::serve(
            &StatsAddr::Unix(path.clone()),
            Arc::clone(&live),
            Duration::from_millis(20),
        )
        .expect("bind unix socket");
        let lines =
            read_stream(&StatsAddr::Unix(path.clone()), 2, Duration::from_secs(5))
                .expect("client reads over UDS");
        srv.stop();
        let (ranks, snapshots) = validate_stream(&lines).expect("stream is schema-valid");
        assert_eq!(ranks, 2);
        assert!(snapshots >= 1);
        assert!(!path.exists(), "socket file unlinked on shutdown");
    }

    #[test]
    fn validator_rejects_foreign_and_future_streams() {
        assert!(validate_stream(&[]).is_err(), "empty stream");
        let bad_proto = vec![r#"{"v":1,"kind":"hello","proto":"scx-stats","ranks":1}"#.into()];
        assert!(validate_stream(&bad_proto).unwrap_err().contains("proto"));
        let future = vec![r#"{"v":999,"kind":"hello","proto":"awp-stats","ranks":1}"#.into()];
        assert!(validate_stream(&future).unwrap_err().contains("version"));
        let live = LiveStats::new(2);
        let ok = vec![live.hello_json(), live.snapshot_json(0, 10), live.snapshot_json(1, 20)];
        assert_eq!(validate_stream(&ok), Ok((2, 2)));
        // Snapshot whose rank array shrank mid-stream.
        let short = vec![live.hello_json(), LiveStats::new(1).snapshot_json(0, 10)];
        assert!(validate_stream(&short).unwrap_err().contains("rank cells"));
    }

    #[test]
    fn advertised_extras_are_required_but_backward_compatible() {
        let live = LiveStats::new(1);
        live.rank(0).recoveries.fetch_add(2, Ordering::Relaxed);
        let ok = vec![live.hello_json(), live.snapshot_json(0, 10)];
        assert_eq!(validate_stream(&ok), Ok((1, 1)), "v1 stream carries its extras");
        // A hello that advertises an extra the snapshots lack must fail...
        let lying = vec![live.hello_json(), {
            let s = live.snapshot_json(0, 10);
            s.replace(",\"recoveries\":2", "")
        }];
        assert!(validate_stream(&lying).unwrap_err().contains("recoveries"));
        // ...while an old-style hello without `extras` keeps validating
        // snapshots that never carry them.
        let old_hello = r#"{"v":1,"kind":"hello","proto":"awp-stats","ranks":1}"#.to_string();
        let old_snap = live
            .snapshot_json(0, 10)
            .replace(",\"recoveries\":2", "")
            .replace(",\"dead_letters\":0", "");
        assert_eq!(validate_stream(&[old_hello, old_snap]), Ok((1, 1)));
    }

    #[test]
    fn addr_parse_round_trips() {
        assert_eq!(StatsAddr::parse("127.0.0.1:7070"), StatsAddr::Tcp("127.0.0.1:7070".into()));
        assert_eq!(
            StatsAddr::parse("unix:/tmp/awp.sock"),
            StatsAddr::Unix(PathBuf::from("/tmp/awp.sock"))
        );
        assert_eq!(StatsAddr::parse("unix:/tmp/awp.sock").to_string(), "unix:/tmp/awp.sock");
    }
}
