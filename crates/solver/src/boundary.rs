//! Free-surface and sponge boundary conditions (paper §II.D–E).
//!
//! **Free surface**: the zero-stress condition at the top of the model via
//! stress imaging (the FS2 family of Gottschammer & Olsen 2001). The
//! surface coincides with the k = 0 plane of the normal stresses and
//! horizontal velocities; σzz is forced to zero there and continued
//! antisymmetrically above, σxz/σyz (staggered half a cell below the
//! surface) are continued antisymmetrically, and the vertical velocity is
//! imaged so the discrete σzz update at the surface honours the
//! traction-free constraint.
//!
//! **Sponge**: Cerjan et al. (1985) damping layers — "unconditionally
//! stable [but] the ability … to absorb reflections is poorer than PMLs".

use crate::medium::Medium;
use crate::shell::Win;
use crate::state::WaveState;
use awp_grid::decomp::Subdomain;
use awp_grid::face::Face;

/// Zero-stress imaging applied after each stress update on ranks owning
/// the top (k = 0) face.
pub fn apply_free_surface_stress(state: &mut WaveState) {
    for group in [0usize, 2, 3] {
        apply_free_surface_stress_group(state, group);
    }
}

/// Free-surface stress imaging over a window's (i, j) footprint only (the
/// shell/interior split images each surface-touching window right after
/// its stress update; footprints partition the plane, so the union equals
/// the fused full-plane pass). Reads stay within the window's own columns
/// (k ≤ 2 — guaranteed by the shell plan's fold rule).
pub fn apply_free_surface_stress_win(state: &mut WaveState, win: Win) {
    let d = state.dims;
    for j in win.j0 as isize..win.j1 as isize {
        for i in win.i0 as isize..win.i1 as isize {
            state.szz.set(i, j, 0, 0.0);
            let s1 = state.szz.get(i, j, 1);
            state.szz.set(i, j, -1, -s1);
            if d.nz > 2 {
                let s2 = state.szz.get(i, j, 2);
                state.szz.set(i, j, -2, -s2);
            }
            let x0 = state.sxz.get(i, j, 0);
            state.sxz.set(i, j, -1, -x0);
            let x1 = state.sxz.get(i, j, 1);
            state.sxz.set(i, j, -2, -x1);
            let y0 = state.syz.get(i, j, 0);
            state.syz.set(i, j, -1, -y0);
            let y1 = state.syz.get(i, j, 1);
            state.syz.set(i, j, -2, -y1);
        }
    }
}

/// Free-surface imaging for one stress group (0 = normals, 2 = σxz,
/// 3 = σyz; σxy needs none) — the overlap path applies each group's
/// condition just before that group's halo exchange starts (§IV.C).
pub fn apply_free_surface_stress_group(state: &mut WaveState, group: usize) {
    let d = state.dims;
    for j in 0..d.ny as isize {
        for i in 0..d.nx as isize {
            match group {
                0 => {
                    // σzz: node on the surface is zero; antisymmetric above.
                    state.szz.set(i, j, 0, 0.0);
                    let s1 = state.szz.get(i, j, 1);
                    state.szz.set(i, j, -1, -s1);
                    if d.nz > 2 {
                        let s2 = state.szz.get(i, j, 2);
                        state.szz.set(i, j, -2, -s2);
                    }
                }
                2 => {
                    // σxz: staggered half a cell below the surface plane →
                    // antisymmetric image about z = 0.
                    let x0 = state.sxz.get(i, j, 0);
                    state.sxz.set(i, j, -1, -x0);
                    let x1 = state.sxz.get(i, j, 1);
                    state.sxz.set(i, j, -2, -x1);
                }
                3 => {
                    let y0 = state.syz.get(i, j, 0);
                    state.syz.set(i, j, -1, -y0);
                    let y1 = state.syz.get(i, j, 1);
                    state.syz.set(i, j, -2, -y1);
                }
                _ => {}
            }
        }
    }
}

/// Velocity imaging applied after the velocity update (and halo exchange)
/// on ranks owning the top face, so the following stress update sees
/// consistent above-surface values.
pub fn apply_free_surface_velocity(state: &mut WaveState, med: &Medium, h: f32) {
    let d = state.dims;
    for j in 0..d.ny as isize {
        for i in 0..d.nx as isize {
            // Horizontal velocities: symmetric images (∂z vx = ∂z vy = 0 at
            // the surface, consistent with σxz = σyz = 0).
            let vx0 = state.vx.get(i, j, 0);
            let vx1 = state.vx.get(i, j, 1.min(d.nz as isize - 1));
            state.vx.set(i, j, -1, vx0);
            state.vx.set(i, j, -2, vx1);
            let vy0 = state.vy.get(i, j, 0);
            let vy1 = state.vy.get(i, j, 1.min(d.nz as isize - 1));
            state.vy.set(i, j, -1, vy0);
            state.vy.set(i, j, -2, vy1);
            // Vertical velocity: choose vz(−1) so the 2nd-order discrete
            // ezz at the surface satisfies the traction-free constraint
            // ezz = −λ/(λ+2μ)(exx + eyy).
            let lam = med.lam.get(i, j, 0);
            let mu = med.mu.get(i, j, 0);
            let ratio = lam / (lam + 2.0 * mu);
            let exx = (state.vx.get(i, j, 0) - state.vx.get(i - 1, j, 0)) / h;
            let eyy = (state.vy.get(i, j, 0) - state.vy.get(i, j - 1, 0)) / h;
            let vz0 = state.vz.get(i, j, 0);
            let vzm1 = vz0 + ratio * h * (exx + eyy);
            state.vz.set(i, j, -1, vzm1);
            state.vz.set(i, j, -2, vzm1);
        }
    }
}

/// Cerjan sponge: per-axis damping profiles on the *global* grid, sliced
/// per rank so decomposed runs damp identically to serial ones.
#[derive(Debug, Clone)]
pub struct Sponge {
    /// Per-local-cell damping along each axis (length = local extent).
    gx: Vec<f32>,
    gy: Vec<f32>,
    gz: Vec<f32>,
}

impl Sponge {
    /// `width` cells per absorbing face, boundary-cell amplitude `amp`
    /// (e.g. 0.92). The top face is skipped when `free_surface` is set.
    pub fn new(sub: &Subdomain, width: usize, amp: f64, free_surface: bool) -> Self {
        assert!(amp > 0.0 && amp < 1.0, "amp must be in (0,1)");
        let a = (-amp.ln()).sqrt() / width.max(1) as f64;
        let g = self::globals(sub);
        let profile = |global_n: usize, lo_active: bool, hi_active: bool| -> Vec<f32> {
            (0..global_n)
                .map(|gidx| {
                    let mut v = 1.0f64;
                    if lo_active && gidx < width {
                        let d = (width - gidx) as f64;
                        v *= (-(a * d) * (a * d)).exp();
                    }
                    if hi_active && gidx + width >= global_n {
                        let d = (gidx + width + 1 - global_n) as f64;
                        v *= (-(a * d) * (a * d)).exp();
                    }
                    v as f32
                })
                .collect()
        };
        let gx_full = profile(g.0, true, true);
        let gy_full = profile(g.1, true, true);
        let gz_full = profile(g.2, !free_surface, true);
        Self {
            gx: gx_full[sub.origin.i..sub.origin.i + sub.dims.nx].to_vec(),
            gy: gy_full[sub.origin.j..sub.origin.j + sub.dims.ny].to_vec(),
            gz: gz_full[sub.origin.k..sub.origin.k + sub.dims.nz].to_vec(),
        }
    }

    /// Damp all nine wavefield components.
    pub fn apply(&self, state: &mut WaveState) {
        self.apply_components(state, &awp_grid::stagger::Component::ALL);
    }

    /// Damp a subset of components (the overlap path damps each stress
    /// group before its exchange starts).
    pub fn apply_components(&self, state: &mut WaveState, comps: &[awp_grid::stagger::Component]) {
        let win = Win::full(state.dims);
        self.apply_components_win(state, comps, win);
    }

    /// Windowed sponge pass (shell/interior split). Per-cell multiplicative
    /// damping, so restricting to a window is bit-exact: the row fast-path
    /// skip only skips multiplications by exactly 1.0 (an IEEE identity).
    pub fn apply_components_win(
        &self,
        state: &mut WaveState,
        comps: &[awp_grid::stagger::Component],
        win: Win,
    ) {
        if win.is_empty() {
            return;
        }
        for k in win.k0..win.k1 {
            let gk = self.gz[k];
            for j in win.j0..win.j1 {
                let gjk = self.gy[j] * gk;
                if gjk == 1.0 && self.gx[win.i0..win.i1].iter().all(|&g| g == 1.0) {
                    continue;
                }
                for &c in comps {
                    let arr = state.field_mut(c);
                    let base = arr.offset(0, j as isize, k as isize);
                    let row = &mut arr.as_mut_slice()[base + win.i0..base + win.i1];
                    for (i, v) in row.iter_mut().enumerate() {
                        *v *= self.gx[win.i0 + i] * gjk;
                    }
                }
            }
        }
    }

    /// Damping factor at a local cell (diagnostics/tests).
    pub fn factor(&self, i: usize, j: usize, k: usize) -> f32 {
        self.gx[i] * self.gy[j] * self.gz[k]
    }
}

fn globals(sub: &Subdomain) -> (usize, usize, usize) {
    (sub.decomp.global.nx, sub.decomp.global.ny, sub.decomp.global.nz)
}

/// True when this rank owns part of the top free surface.
pub fn owns_free_surface(sub: &Subdomain) -> bool {
    sub.on_boundary(Face::ZLo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use awp_cvm::mesh::MeshGenerator;
    use awp_cvm::model::HomogeneousModel;
    use awp_grid::decomp::Decomp3;
    use awp_grid::dims::Dims3;

    fn single_sub(d: Dims3) -> Subdomain {
        Decomp3::new(d, [1, 1, 1]).subdomain(0)
    }

    #[test]
    fn stress_imaging_zeroes_surface() {
        let d = Dims3::new(4, 4, 6);
        let mut s = WaveState::new(d, false);
        for k in 0..6 {
            for j in 0..4 {
                for i in 0..4 {
                    s.szz.set(i, j, k, (k + 1) as f32);
                    s.sxz.set(i, j, k, (k + 1) as f32 * 2.0);
                }
            }
        }
        apply_free_surface_stress(&mut s);
        assert_eq!(s.szz.get(1, 1, 0), 0.0);
        assert_eq!(s.szz.get(1, 1, -1), -s.szz.get(1, 1, 1));
        assert_eq!(s.sxz.get(1, 1, -1), -s.sxz.get(1, 1, 0));
        assert_eq!(s.sxz.get(1, 1, -2), -s.sxz.get(1, 1, 1));
    }

    #[test]
    fn velocity_imaging_uniform_field_is_trivial() {
        // A uniform horizontal velocity field has exx = eyy = 0 → vz image
        // equals vz itself; vx image is symmetric.
        let d = Dims3::new(4, 4, 4);
        let model = HomogeneousModel::rock();
        let mesh = MeshGenerator::new(&model, d, 100.0).generate();
        let med = Medium::from_mesh(&mesh);
        let mut s = WaveState::new(d, false);
        s.vx.as_mut_slice().fill(2.0);
        s.vz.as_mut_slice().fill(0.5);
        apply_free_surface_velocity(&mut s, &med, 100.0);
        assert_eq!(s.vx.get(1, 1, -1), 2.0);
        assert_eq!(s.vz.get(1, 1, -1), 0.5);
    }

    #[test]
    fn velocity_imaging_encodes_traction_free_ezz() {
        let d = Dims3::new(4, 4, 4);
        let model = HomogeneousModel::rock();
        let mesh = MeshGenerator::new(&model, d, 100.0).generate();
        let med = Medium::from_mesh(&mesh);
        let mut s = WaveState::new(d, false);
        // Linear vx ramp → constant positive exx at the surface.
        s.vx.map_interior(|idx, _| idx.i as f32);
        // Also set the halo so the i−1 read at i=0 is consistent.
        s.vx.set(-1, 0, 0, -1.0);
        apply_free_surface_velocity(&mut s, &med, 100.0);
        // exx = 1/100 > 0 → vz(−1) > vz(0): material bulges upward.
        assert!(s.vz.get(1, 1, -1) > s.vz.get(1, 1, 0));
    }

    #[test]
    fn sponge_profile_shape() {
        let d = Dims3::new(40, 40, 30);
        let sub = single_sub(d);
        let sp = Sponge::new(&sub, 10, 0.92, true);
        // Interior: no damping.
        assert_eq!(sp.factor(20, 20, 10), 1.0);
        // Corner: heavy damping, monotone toward the boundary.
        assert!(sp.factor(0, 0, 29) < sp.factor(5, 5, 25));
        assert!(sp.factor(0, 20, 10) < 1.0);
        // Free surface not damped.
        assert_eq!(sp.factor(20, 20, 0), 1.0);
    }

    #[test]
    fn sponge_damps_wavefield() {
        let d = Dims3::new(30, 30, 30);
        let sub = single_sub(d);
        let sp = Sponge::new(&sub, 10, 0.9, false);
        let mut s = WaveState::new(d, false);
        s.vx.as_mut_slice().fill(1.0);
        sp.apply(&mut s);
        assert!(s.vx.get(0, 0, 0) < 0.8, "corner damped: {}", s.vx.get(0, 0, 0));
        assert_eq!(s.vx.get(15, 15, 15), 1.0, "interior untouched");
    }

    #[test]
    fn sponge_slices_match_global_profile() {
        // Two ranks along x: their concatenated profiles must equal the
        // single-rank profile.
        let d = Dims3::new(24, 8, 8);
        let whole = Sponge::new(&single_sub(d), 6, 0.92, true);
        let dec = Decomp3::new(d, [2, 1, 1]);
        let left = Sponge::new(&dec.subdomain(0), 6, 0.92, true);
        let right = Sponge::new(&dec.subdomain(1), 6, 0.92, true);
        for i in 0..12 {
            assert_eq!(left.factor(i, 0, 0), whole.factor(i, 0, 0));
            assert_eq!(right.factor(i, 0, 0), whole.factor(i + 12, 0, 0));
        }
    }

    #[test]
    fn owns_free_surface_only_top_ranks() {
        let dec = Decomp3::new(Dims3::new(8, 8, 8), [1, 1, 2]);
        assert!(owns_free_surface(&dec.subdomain(0)));
        assert!(!owns_free_surface(&dec.subdomain(1)));
    }
}
