//! Staging arena for the zero-copy halo pipeline.
//!
//! The asynchronous exchange used to clone every outgoing face slab into a
//! fresh `Vec` per send and build a scratch request vector per completion —
//! two heap allocations per message per step. The arena replaces both with
//! pools of reusable buffers:
//!
//! * **face buffers** — `take_buf`/`put_buf` recycle the `Vec<f32>` slabs.
//!   A sent buffer moves into the mailbox (`Payload::F32` wraps the
//!   allocation, no copy) and the *receiver* pools it after injection, so
//!   buffers migrate between ranks' arenas. Per step each rank sends and
//!   receives the same number of slabs (halo links are symmetric), so every
//!   pool stays balanced and — once each pooled buffer has grown to the
//!   largest face it has carried — steady state performs zero allocations.
//! * **request lists** — `take_reqs`/`put_reqs` recycle the
//!   `Vec<PendingRecv>` that tracks one started exchange.
//!
//! The `allocations` ledger counts every event that had to touch the heap
//! (pool miss or capacity growth). Tests and the bench gate assert it stays
//! flat across steady-state timesteps.

use crate::exchange::PendingRecv;

/// Per-rank pool of reusable exchange buffers with an allocation ledger.
/// Exchange phase timing lives in the telemetry recorder on the rank's
/// `RankCtx` (`Phase::{Send, Wait, Inject}` spans), not here.
#[derive(Debug, Default)]
pub struct HaloArena {
    bufs: Vec<Vec<f32>>,
    req_lists: Vec<Vec<PendingRecv>>,
    allocs: u64,
}

impl HaloArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cleared buffer with capacity ≥ `len_hint`, recording a ledger
    /// event iff the heap was touched (empty pool or no adequate buffer).
    ///
    /// Selection is best-fit rather than LIFO: each step a rank receives
    /// exactly the multiset of slab lengths it must send (halo links are
    /// symmetric), so once the pool is warm a fitting buffer always exists
    /// regardless of the nondeterministic arrival order that shuffles the
    /// pool. The pool holds a few dozen entries at most; the scan is noise
    /// next to the face copy it feeds.
    pub fn take_buf(&mut self, len_hint: usize) -> Vec<f32> {
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.bufs.iter().enumerate() {
            let c = b.capacity();
            if c >= len_hint && best.is_none_or(|(_, bc)| c < bc) {
                best = Some((i, c));
            }
        }
        if let Some((i, _)) = best {
            let mut b = self.bufs.swap_remove(i);
            b.clear();
            return b;
        }
        self.allocs += 1;
        match self.bufs.pop() {
            Some(mut b) => {
                b.clear();
                b.reserve(len_hint);
                b
            }
            None => Vec::with_capacity(len_hint),
        }
    }

    /// Return a buffer to the pool (typically one received from a
    /// neighbour's arena after halo injection).
    pub fn put_buf(&mut self, mut b: Vec<f32>) {
        b.clear();
        self.bufs.push(b);
    }

    /// Take a cleared request list for one started exchange.
    pub fn take_reqs(&mut self) -> Vec<PendingRecv> {
        match self.req_lists.pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => {
                self.allocs += 1;
                Vec::new()
            }
        }
    }

    /// Return a request list once the exchange completed. Capacity growth
    /// since `take_reqs` counts as allocation activity.
    pub fn put_reqs(&mut self, v: Vec<PendingRecv>) {
        self.req_lists.push(v);
    }

    /// Total heap-touching events since construction. Flat across steps ⇔
    /// the exchange path is allocation-free in steady state.
    pub fn allocations(&self) -> u64 {
        self.allocs
    }

    /// Buffers currently parked in the pool.
    pub fn pooled_buffers(&self) -> usize {
        self.bufs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuse_does_not_allocate() {
        let mut a = HaloArena::new();
        let b = a.take_buf(128);
        assert_eq!(a.allocations(), 1);
        a.put_buf(b);
        // Same or smaller request: served from the pool, ledger flat.
        let b = a.take_buf(128);
        assert_eq!(a.allocations(), 1);
        a.put_buf(b);
        let b = a.take_buf(16);
        assert_eq!(a.allocations(), 1);
        a.put_buf(b);
        assert_eq!(a.pooled_buffers(), 1);
    }

    #[test]
    fn growth_is_recorded() {
        let mut a = HaloArena::new();
        let b = a.take_buf(8);
        a.put_buf(b);
        let b = a.take_buf(1024);
        assert_eq!(a.allocations(), 2, "capacity growth must hit the ledger");
        assert!(b.capacity() >= 1024);
    }

    #[test]
    fn buffers_come_back_cleared() {
        let mut a = HaloArena::new();
        let mut b = a.take_buf(4);
        b.extend_from_slice(&[1.0, 2.0, 3.0]);
        a.put_buf(b);
        assert!(a.take_buf(4).is_empty());
    }

    #[test]
    fn req_lists_recycle() {
        let mut a = HaloArena::new();
        let r = a.take_reqs();
        let before = a.allocations();
        a.put_reqs(r);
        let _ = a.take_reqs();
        assert_eq!(a.allocations(), before);
    }
}
