//! Offline dev shim for `serde`. The traits carry just enough surface for
//! the shim `serde_derive` to emit real field-wise JSON (de)serialisation
//! and for the shim `serde_json` to expose the usual entry points. Shapes
//! the derive cannot handle fail loudly (panic / `Err`) instead of quietly
//! producing placeholder output. Never shipped.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub trait Serialize {
    /// Shim hook used by the shim `serde_json`: render self as JSON text.
    /// Implemented by primitives/containers below and by derived impls;
    /// anything left on this default fails loudly.
    fn shim_json(&self) -> String {
        panic!(
            "serde shim cannot serialize {}: no shim_json impl \
             (unsupported shape — use registry crates for real output)",
            std::any::type_name::<Self>()
        );
    }
}

pub trait Deserialize<'de>: Sized {
    /// Build self from a parsed [`value::ShimValue`] tree. Implemented by
    /// primitives/containers below and by derived impls; anything left on
    /// this default fails loudly.
    fn shim_from_value(_v: &value::ShimValue) -> Result<Self, String> {
        Err(format!(
            "serde shim cannot deserialize {}: no shim_from_value impl \
             (unsupported shape — use registry crates)",
            std::any::type_name::<Self>()
        ))
    }

    /// Shim hook used by the shim `serde_json::from_str`.
    fn shim_from_json(text: &str) -> Result<Self, String> {
        Self::shim_from_value(&value::parse(text)?)
    }
}

/// Marker alias used by some generic bounds (`T: de::DeserializeOwned`).
pub mod de {
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

/// Render a string as a JSON string literal (used by derived impls too).
pub fn escape_json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

macro_rules! impl_int {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn shim_json(&self) -> String {
                    format!("{}", self)
                }
            }
            impl<'de> Deserialize<'de> for $t {
                fn shim_from_value(v: &value::ShimValue) -> Result<Self, String> {
                    match v {
                        value::ShimValue::Number(n)
                            if n.fract() == 0.0
                                && *n >= <$t>::MIN as f64
                                && *n <= <$t>::MAX as f64 =>
                        {
                            Ok(*n as $t)
                        }
                        other => Err(format!(
                            "expected {} integer, got {:?}",
                            stringify!($t),
                            other
                        )),
                    }
                }
            }
        )*
    };
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {
        $(
            impl Serialize for $t {
                fn shim_json(&self) -> String {
                    if self.fract() == 0.0 && self.abs() < 1e15 {
                        format!("{}.0", *self as i64)
                    } else {
                        format!("{}", self)
                    }
                }
            }
            impl<'de> Deserialize<'de> for $t {
                fn shim_from_value(v: &value::ShimValue) -> Result<Self, String> {
                    match v {
                        value::ShimValue::Number(n) => Ok(*n as $t),
                        other => Err(format!("expected number, got {:?}", other)),
                    }
                }
            }
        )*
    };
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn shim_json(&self) -> String {
        if *self { "true".into() } else { "false".into() }
    }
}

impl<'de> Deserialize<'de> for bool {
    fn shim_from_value(v: &value::ShimValue) -> Result<Self, String> {
        match v {
            value::ShimValue::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {:?}", other)),
        }
    }
}

impl Serialize for String {
    fn shim_json(&self) -> String {
        escape_json_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn shim_from_value(v: &value::ShimValue) -> Result<Self, String> {
        match v {
            value::ShimValue::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {:?}", other)),
        }
    }
}

impl Serialize for str {
    fn shim_json(&self) -> String {
        escape_json_str(self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn shim_json(&self) -> String {
        let items: Vec<String> = self.iter().map(|v| v.shim_json()).collect();
        format!("[{}]", items.join(","))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn shim_from_value(v: &value::ShimValue) -> Result<Self, String> {
        match v {
            value::ShimValue::Array(a) => a.iter().map(T::shim_from_value).collect(),
            other => Err(format!("expected array, got {:?}", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn shim_json(&self) -> String {
        match self {
            Some(v) => v.shim_json(),
            None => "null".to_string(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn shim_from_value(v: &value::ShimValue) -> Result<Self, String> {
        match v {
            value::ShimValue::Null => Ok(None),
            other => T::shim_from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn shim_json(&self) -> String {
        (**self).shim_json()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn shim_json(&self) -> String {
        let items: Vec<String> = self.iter().map(|v| v.shim_json()).collect();
        format!("[{}]", items.join(","))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn shim_from_value(v: &value::ShimValue) -> Result<Self, String> {
        let items: Vec<T> = Vec::shim_from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of {} elements, got {}", N, n))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn shim_json(&self) -> String {
                    let items = [$(self.$idx.shim_json()),+];
                    format!("[{}]", items.join(","))
                }
            }
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn shim_from_value(v: &value::ShimValue) -> Result<Self, String> {
                    const LEN: usize = [$($idx),+].len();
                    match v {
                        value::ShimValue::Array(a) if a.len() == LEN => {
                            Ok(($($name::shim_from_value(&a[$idx])?,)+))
                        }
                        other => Err(format!(
                            "expected array of {} elements, got {:?}",
                            LEN, other
                        )),
                    }
                }
            }
        )*
    };
}

impl_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
);
