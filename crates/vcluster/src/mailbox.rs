//! Per-rank mailboxes with `(source, tag)` matching.

use crate::fault::AbortUnwind;
use crate::message::{Message, Payload, Tag};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

#[derive(Default)]
struct State {
    queue: VecDeque<Message>,
    /// Set on cluster teardown: receivers unwind instead of blocking
    /// forever, new deliveries are discarded.
    poisoned: bool,
}

/// Unexpected-message queue plus wakeup for blocked receivers.
#[derive(Default)]
pub struct Mailbox {
    state: Mutex<State>,
    cv: Condvar,
}

impl Mailbox {
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver a message (eager/buffered path): enqueue and wake receivers.
    /// Messages delivered to a poisoned mailbox are dropped (their
    /// rendezvous ack channel closes, unblocking the sender with an error).
    pub fn deliver(&self, msg: Message) {
        let mut s = self.state.lock();
        if s.poisoned {
            return;
        }
        s.queue.push_back(msg);
        self.cv.notify_all();
    }

    /// Blocking matched receive: waits until a message from `src` with `tag`
    /// is available, removes it, acknowledges rendezvous senders, and
    /// returns the payload. Unwinds (cluster-internal abort payload) if the
    /// mailbox is poisoned while waiting.
    pub fn recv(&self, src: usize, tag: Tag) -> Payload {
        let mut s = self.state.lock();
        loop {
            if let Some(pos) = s.queue.iter().position(|m| m.src == src && m.tag == tag) {
                let msg = s.queue.remove(pos).expect("position just found");
                drop(s);
                if let Some(ack) = msg.ack {
                    // Receiver matched: release the rendezvous sender. The
                    // sender may have timed-out only on cluster teardown, so
                    // a closed channel is fine to ignore.
                    let _ = ack.send(());
                }
                return msg.payload;
            }
            if s.poisoned {
                drop(s);
                std::panic::panic_any(AbortUnwind);
            }
            self.cv.wait(&mut s);
        }
    }

    /// Non-blocking matched receive.
    pub fn try_recv(&self, src: usize, tag: Tag) -> Option<Payload> {
        let mut s = self.state.lock();
        let pos = s.queue.iter().position(|m| m.src == src && m.tag == tag)?;
        let msg = s.queue.remove(pos).expect("position just found");
        drop(s);
        if let Some(ack) = msg.ack {
            let _ = ack.send(());
        }
        Some(msg.payload)
    }

    /// Blocking matched receive with timeout (deadlock diagnostics).
    pub fn recv_timeout(&self, src: usize, tag: Tag, timeout: Duration) -> Option<Payload> {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.state.lock();
        loop {
            if let Some(pos) = s.queue.iter().position(|m| m.src == src && m.tag == tag) {
                let msg = s.queue.remove(pos).expect("position just found");
                drop(s);
                if let Some(ack) = msg.ack {
                    let _ = ack.send(());
                }
                return Some(msg.payload);
            }
            if s.poisoned {
                drop(s);
                std::panic::panic_any(AbortUnwind);
            }
            if self.cv.wait_until(&mut s, deadline).timed_out() {
                return None;
            }
        }
    }

    /// Tear the mailbox down: drop all queued messages (closing their
    /// rendezvous ack channels) and wake every blocked receiver so it can
    /// unwind.
    pub(crate) fn poison(&self) {
        let mut s = self.state.lock();
        s.poisoned = true;
        s.queue.clear();
        self.cv.notify_all();
    }

    /// Clear the poison flag so the mailbox can serve a fresh pass
    /// (restart after a fault). The queue was already drained by `poison`.
    pub(crate) fn unpoison(&self) {
        self.state.lock().poisoned = false;
    }

    /// Number of queued (unmatched) messages.
    pub fn pending(&self) -> usize {
        self.state.lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn msg(src: usize, tag: Tag, v: Vec<f32>) -> Message {
        Message { src, tag, payload: Payload::F32(v), ack: None }
    }

    #[test]
    fn matches_by_src_and_tag() {
        let mb = Mailbox::new();
        mb.deliver(msg(1, 10, vec![1.0]));
        mb.deliver(msg(2, 10, vec![2.0]));
        mb.deliver(msg(1, 11, vec![3.0]));
        assert_eq!(mb.recv(2, 10).into_f32(), vec![2.0]);
        assert_eq!(mb.recv(1, 11).into_f32(), vec![3.0]);
        assert_eq!(mb.recv(1, 10).into_f32(), vec![1.0]);
        assert_eq!(mb.pending(), 0);
    }

    #[test]
    fn out_of_order_arrival_is_matched() {
        // The asynchronous model's key property: arrival order ≠ receive
        // order, tags keep integrity.
        let mb = Mailbox::new();
        for t in (0..10u64).rev() {
            mb.deliver(msg(0, t, vec![t as f32]));
        }
        for t in 0..10u64 {
            assert_eq!(mb.recv(0, t).into_f32(), vec![t as f32]);
        }
    }

    #[test]
    fn try_recv_returns_none_when_absent() {
        let mb = Mailbox::new();
        mb.deliver(msg(0, 1, vec![]));
        assert!(mb.try_recv(0, 2).is_none());
        assert!(mb.try_recv(1, 1).is_none());
        assert!(mb.try_recv(0, 1).is_some());
    }

    #[test]
    fn blocking_recv_wakes_on_delivery() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || mb2.recv(3, 7).into_f32());
        std::thread::sleep(Duration::from_millis(20));
        mb.deliver(msg(3, 7, vec![9.0]));
        assert_eq!(h.join().unwrap(), vec![9.0]);
    }

    #[test]
    fn recv_timeout_expires() {
        let mb = Mailbox::new();
        let got = mb.recv_timeout(0, 0, Duration::from_millis(10));
        assert!(got.is_none());
    }

    #[test]
    fn rendezvous_ack_fires_on_match() {
        let (tx, rx) = crossbeam::channel::bounded(1);
        let mb = Mailbox::new();
        mb.deliver(Message { src: 0, tag: 5, payload: Payload::Empty, ack: Some(tx) });
        assert!(rx.try_recv().is_err(), "ack must not fire before match");
        let _ = mb.recv(0, 5);
        assert!(rx.try_recv().is_ok(), "ack must fire on match");
    }

    #[test]
    fn poison_wakes_blocked_receiver() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| mb2.recv(0, 1))).is_err()
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.poison();
        assert!(h.join().unwrap(), "poison must unwind a blocked receiver");
    }

    #[test]
    fn poison_closes_rendezvous_acks_and_discards() {
        let (tx, rx) = crossbeam::channel::bounded(1);
        let mb = Mailbox::new();
        mb.deliver(Message { src: 0, tag: 5, payload: Payload::Empty, ack: Some(tx) });
        mb.poison();
        assert_eq!(mb.pending(), 0);
        // The queued message (and its ack sender) is gone: a rendezvous
        // sender blocked on this channel now observes disconnection.
        assert!(matches!(rx.recv(), Err(crossbeam::channel::RecvError)));
        // Post-poison deliveries are discarded.
        mb.deliver(Message { src: 1, tag: 6, payload: Payload::Empty, ack: None });
        assert_eq!(mb.pending(), 0);
    }
}
