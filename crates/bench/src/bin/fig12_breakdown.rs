//! Fig. 12: breakdown of execution time into computing, communication,
//! synchronization, and I/O for the M8 settings — v6.0 vs v7.2 between
//! 65,610 and 223,074 cores (model), plus a measured breakdown from a
//! real virtual-cluster run.

use awp_bench::{save_record, section};
use awp_cvm::mesh::MeshGenerator;
use awp_cvm::model::LayeredModel;
use awp_grid::dims::{Dims3, Idx3};
use awp_perfmodel::evolution::{model_breakdown, VersionFeatures};
use awp_perfmodel::machines::Machine;
use awp_perfmodel::speedup::{best_parts, m8_mesh, m8_parts, PAPER_C};
use awp_solver::config::{CodeVersion, SolverConfig};
use awp_solver::solver::{partition_mesh_direct, run_parallel};
use awp_solver::stations::Station;
use awp_source::kinematic::KinematicSource;
use awp_source::moment::MomentTensor;
use awp_source::stf::Stf;
use serde_json::json;

fn main() {
    section("Fig. 12 — execution-time breakdown, v6.0 vs v7.2 (Jaguar model)");
    let jaguar = Machine::Jaguar.profile();
    let n = m8_mesh();
    let mut rows = Vec::new();
    println!(
        "{:>8} {:<6} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "cores", "ver", "T_comp", "T_comm", "T_sync", "T_out", "total (s/step)"
    );
    for cores in [65_610usize, 104_544, 150_000, 223_074] {
        for ver in ["6.0", "7.2"] {
            let parts = if cores == 223_074 {
                m8_parts()
            } else {
                best_parts(n, cores, &jaguar, PAPER_C)
            };
            let b = model_breakdown(n, parts, &jaguar, PAPER_C, VersionFeatures::for_version(ver));
            println!(
                "{:>8} {:<6} {:>11.5} {:>11.5} {:>11.5} {:>11.5} {:>11.5}",
                cores, ver, b.comp, b.comm, b.sync, b.output, b.total()
            );
            rows.push(json!({
                "cores": cores, "version": ver,
                "comp": b.comp, "comm": b.comm, "sync": b.sync, "output": b.output,
                "total": b.total(),
            }));
        }
    }
    println!(
        "\npaper: I/O time 0.6–2% of total; v7.2's cache blocking cuts T_comp and the\n\
         reduced communication cuts T_comm and T_sync simultaneously."
    );

    // Measured Eq. (7) fractions from a real 8-rank run (both versions).
    section("measured breakdown (8 virtual ranks)");
    let dims = Dims3::new(64, 64, 48);
    let h = 200.0;
    let model = LayeredModel::gradient_crust(900.0);
    let mesh = MeshGenerator::new(&model, dims, h).generate();
    let dt = mesh.stats().dt_max() * 0.9;
    let source = KinematicSource::point(
        Idx3::new(32, 32, 20),
        MomentTensor::strike_slip(0.0),
        1e18,
        Stf::Triangle { rise_time: 1.0 },
        dt,
    );
    let stations = [Station::new("s", Idx3::new(8, 8, 0))];
    let parts = [2, 2, 2];
    let decomp = awp_grid::decomp::Decomp3::new(dims, parts);
    let meshes = partition_mesh_direct(&mesh, &decomp);
    let mut measured = Vec::new();
    println!("{:<6} {:>8} {:>8} {:>8} {:>8}", "ver", "comp%", "comm%", "sync%", "out%");
    for ver in [CodeVersion::V6_0, CodeVersion::V7_2] {
        let mut cfg = SolverConfig::small(dims, h, dt, 50);
        cfg.opts = ver.opts();
        let results = run_parallel(&cfg, parts, &meshes, &source, &stations);
        let mut ledger = awp_vcluster::TimeLedger::new();
        for r in &results {
            ledger.max_with(&r.ledger);
        }
        let f = ledger.fractions();
        println!(
            "{:<6} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            ver.name(),
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0,
            f[3] * 100.0
        );
        measured.push(json!({ "version": ver.name(), "fractions": f.to_vec() }));
    }
    save_record(
        "fig12",
        "Execution-time breakdown v6.0 vs v7.2 (paper Fig. 12)",
        json!({ "modelled": rows, "measured_8rank": measured }),
    );
}
