//! Multi-epoch checkpoint rotation with validated fallback (paper §III.F).
//!
//! The single-file scheme in [`crate::checkpoint`] keeps exactly one
//! checkpoint per rank; if that file is corrupted (torn write, bad disk,
//! bit rot) the whole run is unrecoverable. At petascale the paper's runs
//! checkpoint every few thousand steps across hundreds of thousands of
//! cores — production resilience needs depth, not just recency. This
//! module rotates epochs: rank `r`'s state at step `s` lands in
//! `ckpt.<r>.<s>.bin`, the last `keep_last` epochs are retained, and
//! recovery walks epochs newest-first until the embedded MD5 validates.
//!
//! A cluster-wide restart additionally needs a *consistent* line: every
//! rank must resume from the **same** epoch, so [`consistent_epoch`]
//! intersects the valid epoch sets of all ranks and picks the newest
//! common survivor.

use crate::checkpoint::{read_checkpoint, write_checkpoint, CheckpointData};
use awp_telemetry::{Counter, Phase, Recorder};
use awp_vcluster::RetryPolicy;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// File name of rank `rank`'s checkpoint at `epoch`.
pub fn epoch_file_name(rank: usize, epoch: u64) -> String {
    format!("ckpt.{rank:06}.{epoch:010}.bin")
}

/// Parse `(rank, epoch)` back out of an epoch checkpoint file name.
fn parse_epoch_name(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("ckpt.")?.strip_suffix(".bin")?;
    let (rank_s, epoch_s) = rest.split_once('.')?;
    if rank_s.len() != 6 || epoch_s.len() != 10 {
        return None;
    }
    Some((rank_s.parse().ok()?, epoch_s.parse().ok()?))
}

/// Retry an I/O operation on transient errors under a shared
/// [`RetryPolicy`] (the same bounded exponential-backoff /
/// deterministic-jitter engine the rank supervisor uses for in-flight
/// recovery). `Interrupted`, `WouldBlock` and `TimedOut` are treated as
/// transient (contended parallel filesystems surface all three); anything
/// else — including `InvalidData` from a checksum mismatch — fails
/// immediately. `key` decorrelates jitter across callers (pass the rank
/// id so a whole cluster retrying the same burst doesn't stampede the
/// filesystem in lock-step).
pub fn retry_io_with<T>(
    policy: &RetryPolicy,
    key: u64,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut tries = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                tries += 1;
                let transient = matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                );
                if !transient || tries >= policy.max_attempts {
                    return Err(e);
                }
                std::thread::sleep(policy.backoff(tries, key));
            }
        }
    }
}

/// [`retry_io_with`] under an ad-hoc policy of `attempts` tries starting
/// at `base_backoff` (doubling, capped at 64× the base). Kept as the
/// convenience entry point for callers without a cluster-wide policy.
pub fn retry_io<T>(
    attempts: u32,
    base_backoff: Duration,
    op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let policy = RetryPolicy::new(attempts)
        .with_backoff(base_backoff, base_backoff.saturating_mul(64));
    retry_io_with(&policy, 0, op)
}

/// Per-rank rotating checkpoint store.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    rank: usize,
    keep_last: usize,
}

impl CheckpointStore {
    /// `keep_last` is the retention depth (≥ 1).
    pub fn new(dir: impl Into<PathBuf>, rank: usize, keep_last: usize) -> Self {
        assert!(keep_last >= 1, "must retain at least one epoch");
        Self { dir: dir.into(), rank, keep_last }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, epoch: u64) -> PathBuf {
        self.dir.join(epoch_file_name(self.rank, epoch))
    }

    /// Store-level I/O retry policy: 3 attempts, 10 ms base backoff.
    /// Jitter is keyed by rank in the call sites so concurrent ranks
    /// retrying a shared-filesystem hiccup spread out instead of
    /// hammering it in phase.
    fn io_policy() -> RetryPolicy {
        RetryPolicy::new(3).with_backoff(Duration::from_millis(10), Duration::from_millis(640))
    }

    /// Write `data` as a new epoch (named after `data.step`), retrying
    /// transient failures, then prune epochs beyond the retention depth.
    /// Returns the epoch id.
    pub fn save(&self, data: &CheckpointData) -> io::Result<u64> {
        self.save_traced(data, &mut Recorder::disabled())
    }

    /// [`save`](Self::save) with telemetry: the whole write (including
    /// retries and pruning) becomes a [`Phase::Checkpoint`] span, the
    /// payload size is charged to [`Counter::CheckpointBytes`], and each
    /// retried attempt to [`Counter::IoRetries`].
    pub fn save_traced(&self, data: &CheckpointData, tel: &mut Recorder) -> io::Result<u64> {
        let t0 = tel.start();
        let epoch = data.step;
        let path = self.path_for(epoch);
        let mut attempts: u64 = 0;
        let res = retry_io_with(&Self::io_policy(), self.rank as u64, || {
            attempts += 1;
            write_checkpoint(&path, data)
        });
        if attempts > 1 {
            tel.count(Counter::IoRetries, attempts - 1);
        }
        res?;
        self.prune()?;
        tel.count(Counter::CheckpointBytes, data.byte_len());
        tel.finish(t0, Phase::Checkpoint);
        Ok(epoch)
    }

    /// All on-disk epochs for this rank, ascending. Unreadable directory
    /// entries are skipped; a missing directory is an empty set.
    pub fn epochs(&self) -> io::Result<Vec<u64>> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(it) => it,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut epochs = Vec::new();
        for entry in entries.flatten() {
            if let Some(name) = entry.file_name().to_str() {
                if let Some((rank, epoch)) = parse_epoch_name(name) {
                    if rank == self.rank {
                        epochs.push(epoch);
                    }
                }
            }
        }
        epochs.sort_unstable();
        Ok(epochs)
    }

    /// Load one specific epoch (MD5-verified).
    pub fn load(&self, epoch: u64) -> io::Result<CheckpointData> {
        retry_io_with(&Self::io_policy(), self.rank as u64, || {
            read_checkpoint(&self.path_for(epoch))
        })
    }

    /// Newest epoch whose checksum validates, walking backwards over
    /// corrupted ones. `Ok(None)` means no valid checkpoint exists.
    pub fn latest_valid(&self) -> io::Result<Option<(u64, CheckpointData)>> {
        for &epoch in self.epochs()?.iter().rev() {
            if let Ok(data) = self.load(epoch) {
                return Ok(Some((epoch, data)));
            }
        }
        Ok(None)
    }

    /// Delete epochs beyond the retention depth (oldest first).
    fn prune(&self) -> io::Result<()> {
        let epochs = self.epochs()?;
        if epochs.len() > self.keep_last {
            for &old in &epochs[..epochs.len() - self.keep_last] {
                // Best-effort: a failed unlink costs disk, not correctness.
                let _ = std::fs::remove_file(self.path_for(old));
            }
        }
        Ok(())
    }
}

/// Newest epoch at which **every** rank in `0..ranks` holds a valid
/// (MD5-verified) checkpoint — the globally consistent restart line.
/// `Ok(None)` means no common valid epoch exists.
pub fn consistent_epoch(dir: &Path, ranks: usize) -> io::Result<Option<u64>> {
    assert!(ranks > 0);
    // Candidate epochs: those present for rank 0; intersect with the rest.
    let stores: Vec<_> = (0..ranks).map(|r| CheckpointStore::new(dir, r, usize::MAX)).collect();
    let mut candidates = stores[0].epochs()?;
    for store in &stores[1..] {
        let have = store.epochs()?;
        candidates.retain(|e| have.binary_search(e).is_ok());
    }
    'epoch: for &epoch in candidates.iter().rev() {
        for store in &stores {
            if store.load(epoch).is_err() {
                continue 'epoch;
            }
        }
        return Ok(Some(epoch));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(step: u64) -> CheckpointData {
        CheckpointData {
            step,
            fields: vec![("vx".into(), (0..64).map(|i| (i as f32) + step as f32).collect())],
        }
    }

    #[test]
    fn epoch_names_round_trip() {
        let name = epoch_file_name(42, 9000);
        assert_eq!(name, "ckpt.000042.0000009000.bin");
        assert_eq!(parse_epoch_name(&name), Some((42, 9000)));
        assert_eq!(parse_epoch_name("ckpt.000042.bin"), None, "legacy single-file name");
        assert_eq!(parse_epoch_name("surface.bin"), None);
    }

    #[test]
    fn rotation_keeps_last_k() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::new(dir.path(), 0, 3);
        for step in [10, 20, 30, 40, 50] {
            store.save(&data(step)).unwrap();
        }
        assert_eq!(store.epochs().unwrap(), vec![30, 40, 50]);
    }

    #[test]
    fn latest_valid_skips_corrupted_epoch() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::new(dir.path(), 0, 4);
        for step in [10, 20, 30] {
            store.save(&data(step)).unwrap();
        }
        // Corrupt the newest epoch.
        let newest = dir.path().join(epoch_file_name(0, 30));
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&newest, &bytes).unwrap();
        let (epoch, d) = store.latest_valid().unwrap().expect("older epochs remain valid");
        assert_eq!(epoch, 20);
        assert_eq!(d.step, 20);
    }

    #[test]
    fn no_valid_checkpoint_is_clean_none() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::new(dir.path(), 0, 2);
        assert!(store.latest_valid().unwrap().is_none(), "empty dir");
        store.save(&data(10)).unwrap();
        let path = dir.path().join(epoch_file_name(0, 10));
        std::fs::write(&path, b"garbage").unwrap();
        assert!(store.latest_valid().unwrap().is_none(), "all epochs corrupt");
    }

    #[test]
    fn ranks_are_isolated() {
        let dir = tempfile::tempdir().unwrap();
        let s0 = CheckpointStore::new(dir.path(), 0, 2);
        let s1 = CheckpointStore::new(dir.path(), 1, 2);
        s0.save(&data(10)).unwrap();
        s1.save(&data(20)).unwrap();
        assert_eq!(s0.epochs().unwrap(), vec![10]);
        assert_eq!(s1.epochs().unwrap(), vec![20]);
    }

    #[test]
    fn consistent_epoch_is_newest_common_valid() {
        let dir = tempfile::tempdir().unwrap();
        let s0 = CheckpointStore::new(dir.path(), 0, 8);
        let s1 = CheckpointStore::new(dir.path(), 1, 8);
        for step in [10, 20, 30] {
            s0.save(&data(step)).unwrap();
        }
        // Rank 1 crashed before writing epoch 30.
        for step in [10, 20] {
            s1.save(&data(step)).unwrap();
        }
        assert_eq!(consistent_epoch(dir.path(), 2).unwrap(), Some(20));
        // Now corrupt rank 0's epoch 20: the line falls back to 10.
        let p = dir.path().join(epoch_file_name(0, 20));
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&p, &bytes).unwrap();
        assert_eq!(consistent_epoch(dir.path(), 2).unwrap(), Some(10));
    }

    #[test]
    fn consistent_epoch_none_when_disjoint() {
        let dir = tempfile::tempdir().unwrap();
        CheckpointStore::new(dir.path(), 0, 8).save(&data(10)).unwrap();
        CheckpointStore::new(dir.path(), 1, 8).save(&data(20)).unwrap();
        assert_eq!(consistent_epoch(dir.path(), 2).unwrap(), None);
    }

    #[test]
    fn save_traced_records_span_and_exact_bytes() {
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::new(dir.path(), 0, 2);
        let reg = awp_telemetry::Registry::new(1);
        let mut tel = reg.recorder(0);
        let d = data(10);
        store.save_traced(&d, &mut tel).unwrap();
        let snap = tel.snapshot();
        assert_eq!(snap.phase_count(Phase::Checkpoint), 1);
        assert!(snap.phase_ns(Phase::Checkpoint) > 0);
        let on_disk = std::fs::metadata(dir.path().join(epoch_file_name(0, 10))).unwrap().len();
        assert_eq!(
            snap.counter(Counter::CheckpointBytes),
            on_disk,
            "byte_len must be the exact serialized size"
        );
        assert_eq!(snap.counter(Counter::IoRetries), 0);
    }

    #[test]
    fn retry_io_recovers_from_transient_errors() {
        let mut failures = 2;
        let out = retry_io(5, Duration::from_millis(1), || {
            if failures > 0 {
                failures -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "transient"))
            } else {
                Ok(7)
            }
        })
        .unwrap();
        assert_eq!(out, 7);
    }

    #[test]
    fn retry_io_gives_up_after_attempts() {
        let mut calls = 0;
        let err = retry_io(3, Duration::from_millis(1), || -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "transient"))
        })
        .unwrap_err();
        assert_eq!(calls, 3);
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn retry_io_with_respects_policy_attempts_and_transience() {
        // Bounded attempts come from the policy, not a hard-coded count.
        let policy = RetryPolicy::new(4).with_backoff(Duration::from_millis(1), Duration::from_millis(4));
        let mut calls = 0;
        let err = retry_io_with(&policy, 7, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::WouldBlock, "busy"))
        })
        .unwrap_err();
        assert_eq!(calls, 4);
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);

        // Permanent errors still fail fast regardless of the budget.
        let mut calls = 0;
        let err = retry_io_with(&policy, 7, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::NotFound, "gone"))
        })
        .unwrap_err();
        assert_eq!(calls, 1);
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn save_traced_counts_exact_io_retries_under_transient_faults() {
        // IoRetries must equal the number of *extra* attempts the retry
        // engine actually made, with the shared-policy plumbing in place.
        let dir = tempfile::tempdir().unwrap();
        let store = CheckpointStore::new(dir.path(), 0, 2);
        let reg = awp_telemetry::Registry::new(1);
        let mut tel = reg.recorder(0);
        let d = data(10);
        // Force two transient failures through the same code path the
        // store uses: the public surface only faults via the fs, so
        // exercise the counter arithmetic by the retry_io_with contract
        // (tries - 1 extra attempts).
        let mut failures = 2;
        let mut attempts: u64 = 0;
        retry_io_with(&CheckpointStore::io_policy(), 0, || {
            attempts += 1;
            if failures > 0 {
                failures -= 1;
                return Err(io::Error::new(io::ErrorKind::TimedOut, "transient"));
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(attempts, 3);
        // A clean save records zero retries.
        store.save_traced(&d, &mut tel).unwrap();
        assert_eq!(tel.snapshot().counter(Counter::IoRetries), 0);
    }

    #[test]
    fn retry_io_fails_fast_on_permanent_errors() {
        let mut calls = 0;
        let err = retry_io(5, Duration::from_millis(1), || -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::InvalidData, "checksum mismatch"))
        })
        .unwrap_err();
        assert_eq!(calls, 1, "InvalidData is not transient");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
