//! Property-based tests for source generation and partitioning.

use awp_grid::decomp::Decomp3;
use awp_grid::dims::Dims3;
use awp_source::kinematic::{haskell_rupture, HaskellParams};
use awp_source::moment::{moment_magnitude, moment_of_magnitude, MomentTensor};
use awp_source::partition::{partition_spatial, TemporalPartition};
use awp_source::stf::Stf;
use proptest::prelude::*;

fn stf_strategy() -> impl Strategy<Value = Stf> {
    prop_oneof![
        (0.2f64..3.0).prop_map(|rise_time| Stf::Triangle { rise_time }),
        (0.05f64..1.0).prop_map(|tau| Stf::Brune { tau }),
        (0.2f64..3.0).prop_map(|rise_time| Stf::Cosine { rise_time }),
    ]
}

proptest! {
    /// Every STF is causal, non-negative, and integrates to ≈ 1.
    #[test]
    fn stf_unit_integral(stf in stf_strategy()) {
        prop_assert_eq!(stf.rate(-1.0), 0.0);
        let dt = stf.duration() / 20_000.0;
        let mut integral = 0.0;
        for i in 0..20_000 {
            let r = stf.rate(i as f64 * dt);
            prop_assert!(r >= 0.0);
            integral += r * dt;
        }
        prop_assert!((integral - 1.0).abs() < 0.02, "integral {integral} for {stf:?}");
    }

    /// Magnitude ↔ moment round-trips across the seismic range.
    #[test]
    fn magnitude_roundtrip(mw in 3.0f64..9.5) {
        prop_assert!((moment_magnitude(moment_of_magnitude(mw)) - mw).abs() < 1e-9);
    }

    /// Strike-slip mechanisms keep unit scalar moment at any strike.
    #[test]
    fn strike_rotation_preserves_moment(strike in -10.0f64..10.0) {
        let m = MomentTensor::strike_slip(strike);
        prop_assert!((m.scalar_moment() - 1.0).abs() < 1e-9);
        prop_assert_eq!(m.mzz, 0.0);
    }

    /// Spatial partitioning conserves subfault count and total moment for
    /// any decomposition.
    #[test]
    fn spatial_partition_conserves(px in 1usize..4, py in 1usize..3, pz in 1usize..3,
                                   seedi in 0usize..3) {
        let src = haskell_rupture(
            &HaskellParams {
                i0: 2, i1: 26, k0: 0, k1: 8, j0: 4 + seedi, h: 500.0, mu: 3e10,
                slip_max: 2.0, hypo: (4, 4), vr: 2500.0, rise_time: 1.0,
                strike: 0.2, taper_cells: 2,
            },
            0.05,
        );
        let decomp = Decomp3::new(Dims3::new(32, 12, 10), [px, py, pz]);
        let parts = partition_spatial(&src, &decomp);
        let n: usize = parts.iter().map(|p| p.subfaults.len()).sum();
        prop_assert_eq!(n, src.subfaults.len());
        let m: f64 = parts.iter().map(|p| p.total_moment()).sum();
        prop_assert!((m - src.total_moment()).abs() <= 1e-9 * src.total_moment());
    }

    /// Temporal windows reproduce the full moment-rate at arbitrary probe
    /// times for arbitrary window lengths.
    #[test]
    fn temporal_partition_reproduces(window in 2usize..40, probe in 0.0f64..1.0) {
        let src = haskell_rupture(
            &HaskellParams {
                i0: 0, i1: 12, k0: 0, k1: 4, j0: 3, h: 800.0, mu: 3e10,
                slip_max: 3.0, hypo: (2, 2), vr: 2800.0, rise_time: 1.5,
                strike: 0.0, taper_cells: 1,
            },
            0.05,
        );
        let tp = TemporalPartition::new(&src, window);
        let t = probe * src.duration();
        let sf = &src.subfaults[src.subfaults.len() / 2];
        let want = sf.moment_rate_at(t, src.dt);
        let seg = &tp.segments[tp.segment_for(t)];
        let got: f64 = seg
            .subfaults
            .iter()
            .filter(|s| s.idx == sf.idx)
            .map(|s| s.moment_rate_at(t, src.dt))
            .sum();
        prop_assert!((got - want).abs() <= 1e-6 * want.abs().max(1.0));
    }

    /// Moment rescaling hits any target magnitude exactly.
    #[test]
    fn rescaling_hits_target(mw in 5.0f64..9.0) {
        let mut src = haskell_rupture(
            &HaskellParams {
                i0: 0, i1: 10, k0: 0, k1: 4, j0: 3, h: 1000.0, mu: 3e10,
                slip_max: 2.0, hypo: (2, 2), vr: 2800.0, rise_time: 1.0,
                strike: 0.0, taper_cells: 1,
            },
            0.05,
        );
        src.scale_to_magnitude(mw);
        prop_assert!((src.magnitude() - mw).abs() < 1e-6);
    }
}
