//! Rank runtime: spawn N ranks as threads and give each a communicator.

use crate::ledger::{Category, TimeLedger};
use crate::mailbox::Mailbox;
use crate::message::{Message, Payload, Tag};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Communication engine selection (paper §IV.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMode {
    /// Rendezvous sends: the sender blocks until the receiver matches the
    /// message. Mirrors the original cascaded `mpi_send/mpi_recv` model
    /// whose "latency is accumulated along the path".
    Synchronous,
    /// Eager buffered sends with out-of-order completion — the redesigned
    /// model that "effectively removes the interdependency among nodes".
    Asynchronous,
}

/// Cluster-wide message statistics.
#[derive(Debug, Default)]
pub struct ClusterStats {
    pub messages: AtomicU64,
    pub bytes: AtomicU64,
    pub barriers: AtomicU64,
}

impl ClusterStats {
    pub fn messages_sent(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    pub fn bytes_sent(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub fn barriers_passed(&self) -> u64 {
        self.barriers.load(Ordering::Relaxed)
    }
}

struct Shared {
    mailboxes: Vec<Mailbox>,
    barrier: Barrier,
    stats: ClusterStats,
}

/// A virtual cluster of `n` ranks.
///
/// ```
/// use awp_vcluster::{Cluster, CommMode};
/// let cluster = Cluster::new(3, CommMode::Asynchronous);
/// let sums = cluster.run(|ctx| {
///     let next = (ctx.rank() + 1) % ctx.size();
///     let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
///     ctx.send(next, 7, vec![ctx.rank() as f32]);
///     ctx.recv(prev, 7).into_f32()[0]
/// });
/// assert_eq!(sums, vec![2.0, 0.0, 1.0]);
/// ```
pub struct Cluster {
    shared: Arc<Shared>,
    size: usize,
    mode: CommMode,
}

/// Handle to a posted non-blocking receive.
#[derive(Debug, Clone, Copy)]
pub struct RecvReq {
    pub src: usize,
    pub tag: Tag,
}

impl Cluster {
    pub fn new(size: usize, mode: CommMode) -> Self {
        assert!(size > 0, "cluster needs at least one rank");
        let shared = Arc::new(Shared {
            mailboxes: (0..size).map(|_| Mailbox::new()).collect(),
            barrier: Barrier::new(size),
            stats: ClusterStats::default(),
        });
        Self { shared, size, mode }
    }

    pub fn size(&self) -> usize {
        self.size
    }

    pub fn stats(&self) -> &ClusterStats {
        &self.shared.stats
    }

    /// Run `body(rank_ctx)` on every rank concurrently and collect the
    /// per-rank results in rank order. Panics in any rank propagate.
    pub fn run<T, F>(&self, body: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        let shared = &self.shared;
        let mode = self.mode;
        let size = self.size;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let shared = Arc::clone(shared);
                    let body = &body;
                    scope.spawn(move || {
                        let mut ctx = RankCtx { rank, size, mode, shared, ledger: TimeLedger::new() };
                        body(&mut ctx)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
        })
    }
}

/// Per-rank communicator handle (lives on the rank's thread).
pub struct RankCtx {
    rank: usize,
    size: usize,
    mode: CommMode,
    shared: Arc<Shared>,
    /// Wall-time ledger; solvers charge phases through
    /// [`RankCtx::time`]. Communication calls charge themselves.
    pub ledger: TimeLedger,
}

impl RankCtx {
    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn size(&self) -> usize {
        self.size
    }

    pub fn mode(&self) -> CommMode {
        self.mode
    }

    fn count(&self, payload: &Payload) {
        self.shared.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.shared.stats.bytes.fetch_add(payload.byte_len() as u64, Ordering::Relaxed);
    }

    /// Mode-dispatching send: rendezvous in synchronous mode, eager in
    /// asynchronous mode. Time is charged to `Comm`.
    pub fn send(&mut self, dst: usize, tag: Tag, payload: impl Into<Payload>) {
        let payload = payload.into();
        self.count(&payload);
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        assert_ne!(dst, self.rank, "self-sends are not supported");
        let t0 = std::time::Instant::now();
        match self.mode {
            CommMode::Asynchronous => {
                self.shared.mailboxes[dst].deliver(Message {
                    src: self.rank,
                    tag,
                    payload,
                    ack: None,
                });
            }
            CommMode::Synchronous => {
                let (ack_tx, ack_rx) = crossbeam::channel::bounded(1);
                self.shared.mailboxes[dst].deliver(Message {
                    src: self.rank,
                    tag,
                    payload,
                    ack: Some(ack_tx),
                });
                // Rendezvous: block until the receiver matches.
                ack_rx.recv().expect("receiver vanished during rendezvous");
            }
        }
        self.ledger.add(Category::Comm, t0.elapsed());
    }

    /// Blocking matched receive.
    pub fn recv(&mut self, src: usize, tag: Tag) -> Payload {
        let t0 = std::time::Instant::now();
        let p = self.shared.mailboxes[self.rank].recv(src, tag);
        self.ledger.add(Category::Comm, t0.elapsed());
        p
    }

    /// Blocking receive with a deadline (returns `None` on timeout) — used
    /// by deadlock-sensitive tests.
    pub fn recv_timeout(&mut self, src: usize, tag: Tag, timeout: Duration) -> Option<Payload> {
        let t0 = std::time::Instant::now();
        let p = self.shared.mailboxes[self.rank].recv_timeout(src, tag, timeout);
        self.ledger.add(Category::Comm, t0.elapsed());
        p
    }

    /// Post a non-blocking receive (returns a handle for
    /// [`RankCtx::wait`] / [`RankCtx::wait_all`]).
    pub fn irecv(&self, src: usize, tag: Tag) -> RecvReq {
        RecvReq { src, tag }
    }

    /// Complete one posted receive.
    pub fn wait(&mut self, req: RecvReq) -> Payload {
        self.recv(req.src, req.tag)
    }

    /// Complete all posted receives, in any arrival order (MPI_Waitall);
    /// results are returned in request order.
    pub fn wait_all(&mut self, reqs: &[RecvReq]) -> Vec<Payload> {
        let t0 = std::time::Instant::now();
        let mut out: Vec<Option<Payload>> = (0..reqs.len()).map(|_| None).collect();
        let mut remaining: Vec<usize> = (0..reqs.len()).collect();
        // Poll for whichever arrives first; fall back to a blocking wait on
        // the first outstanding request when nothing is ready.
        while !remaining.is_empty() {
            let mut progressed = false;
            remaining.retain(|&i| {
                if let Some(p) = self.shared.mailboxes[self.rank].try_recv(reqs[i].src, reqs[i].tag)
                {
                    out[i] = Some(p);
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            if !progressed {
                if let Some(&i) = remaining.first() {
                    let p = self.shared.mailboxes[self.rank].recv(reqs[i].src, reqs[i].tag);
                    out[i] = Some(p);
                    remaining.remove(0);
                }
            }
        }
        self.ledger.add(Category::Comm, t0.elapsed());
        out.into_iter().map(|p| p.expect("all requests completed")).collect()
    }

    /// Global barrier; time charged to `Sync` (the paper's T_sync is
    /// "mostly composed of a single MPI_Barrier call per iteration").
    pub fn barrier(&mut self) {
        let t0 = std::time::Instant::now();
        self.shared.barrier.wait();
        self.ledger.add(Category::Sync, t0.elapsed());
        if self.rank == 0 {
            self.shared.stats.barriers.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge a closure's duration to a ledger category.
    pub fn time<T>(&mut self, cat: Category, f: impl FnOnce() -> T) -> T {
        let t0 = std::time::Instant::now();
        let out = f();
        self.ledger.add(cat, t0.elapsed());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let c = Cluster::new(4, CommMode::Asynchronous);
        let ids = c.run(|ctx| ctx.rank());
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ring_pass_async() {
        let n = 6;
        let c = Cluster::new(n, CommMode::Asynchronous);
        let sums = c.run(|ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 1, vec![ctx.rank() as f32]);
            let got = ctx.recv(prev, 1).into_f32();
            got[0]
        });
        for (r, v) in sums.iter().enumerate() {
            let prev = (r + n - 1) % n;
            assert_eq!(*v, prev as f32);
        }
    }

    #[test]
    fn ring_pass_sync_rendezvous() {
        // Rendezvous sends in a ring must still complete because every rank
        // posts its receive eventually; but ordering matters: post sends to
        // even/odd phases to avoid deadlock, as real sync-mode codes do.
        let n = 4;
        let c = Cluster::new(n, CommMode::Synchronous);
        let out = c.run(|ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            if ctx.rank() % 2 == 0 {
                ctx.send(next, 9, vec![ctx.rank() as f32]);
                ctx.recv(prev, 9).into_f32()[0]
            } else {
                let v = ctx.recv(prev, 9).into_f32()[0];
                ctx.send(next, 9, vec![ctx.rank() as f32]);
                v
            }
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn waitall_completes_out_of_order() {
        let c = Cluster::new(3, CommMode::Asynchronous);
        let got = c.run(|ctx| {
            if ctx.rank() == 0 {
                // Post receives from both peers before any arrives.
                let reqs = vec![ctx.irecv(1, 100), ctx.irecv(2, 200)];
                let ps = ctx.wait_all(&reqs);
                (ps[0].clone().into_f32()[0], ps[1].clone().into_f32()[0])
            } else if ctx.rank() == 1 {
                std::thread::sleep(Duration::from_millis(30));
                ctx.send(0, 100, vec![1.0f32]);
                (0.0, 0.0)
            } else {
                ctx.send(0, 200, vec![2.0f32]);
                (0.0, 0.0)
            }
        });
        assert_eq!(got[0], (1.0, 2.0));
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::AtomicUsize;
        let c = Cluster::new(5, CommMode::Asynchronous);
        let counter = AtomicUsize::new(0);
        c.run(|ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 5);
        });
        assert_eq!(c.stats().barriers_passed(), 1);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let c = Cluster::new(2, CommMode::Asynchronous);
        c.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![0.0f32; 10]);
            } else {
                ctx.recv(0, 1);
            }
        });
        assert_eq!(c.stats().messages_sent(), 1);
        assert_eq!(c.stats().bytes_sent(), 40);
    }

    #[test]
    fn ledger_records_comm_time() {
        let c = Cluster::new(2, CommMode::Asynchronous);
        let ledgers = c.run(|ctx| {
            if ctx.rank() == 0 {
                std::thread::sleep(Duration::from_millis(20));
                ctx.send(1, 5, vec![1.0f32]);
            } else {
                ctx.recv(0, 5);
            }
            ctx.ledger.clone()
        });
        // Rank 1 blocked ~20ms in recv.
        assert!(ledgers[1].seconds(Category::Comm) >= 0.015);
    }

    #[test]
    // The assertion fires on the rank thread; the harness surfaces it as a
    // "rank panicked" join failure.
    #[should_panic(expected = "rank panicked")]
    fn self_send_rejected() {
        let c = Cluster::new(1, CommMode::Asynchronous);
        c.run(|ctx| ctx.send(0, 0, vec![1.0f32]));
    }
}
