//! The spontaneous-rupture solver.
//!
//! A velocity–stress staggered-grid solver (2nd-order operators — the
//! paper's own accuracy near the fault, §II.C) with a vertical planar
//! fault on the σxy node plane. The fault condition is the
//! traction-at-split-node balance in its staggered "thick-fault" form
//! (the formulation of Olsen's original dynamic code that SGSN verified
//! against): after every stress update the total shear traction on each
//! fault node is bounded by the slip-weakening strength, and slip
//! accumulates from the velocity jump across the fault plane. Rupture
//! nucleates spontaneously where the prestress exceeds strength and
//! propagates (or arrests, or runs super-shear) according to the stress
//! and friction fields — no kinematic prescription anywhere.

use crate::outputs::RuptureResult;
use crate::prestress::FaultPrestress;
use awp_grid::array3::Array3;
use awp_grid::dims::Dims3;
use awp_grid::HALO;
use serde::{Deserialize, Serialize};

/// 1-D (depth-only) medium for the rupture box — the paper embeds the M8
/// fault "in a seismic geologic model representing the average
/// compressional-velocity, shear-velocity and density along the SAF".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DepthModel {
    /// Per-depth-cell (ρ, Vp, Vs), length ≥ nz.
    pub layers: Vec<(f64, f64, f64)>,
}

impl DepthModel {
    pub fn uniform(nz: usize, rho: f64, vp: f64, vs: f64) -> Self {
        Self { layers: vec![(rho, vp, vs); nz] }
    }

    /// A SAF-average-like gradient: soft near the surface, hard rock at
    /// depth.
    pub fn saf_average(nz: usize, h: f64) -> Self {
        let layers = (0..nz)
            .map(|k| {
                let z = (k as f64 + 0.5) * h;
                let vs = (1800.0 + (3500.0 - 1800.0) * (z / 8000.0).min(1.0)).min(3500.0);
                let vp = vs * 1.732;
                let rho = 2400.0 + 300.0 * (z / 8000.0).min(1.0);
                (rho, vp, vs)
            })
            .collect();
        Self { layers }
    }

    pub fn rho(&self, k: usize) -> f64 {
        self.layers[k.min(self.layers.len() - 1)].0
    }

    pub fn vp(&self, k: usize) -> f64 {
        self.layers[k.min(self.layers.len() - 1)].1
    }

    pub fn vs(&self, k: usize) -> f64 {
        self.layers[k.min(self.layers.len() - 1)].2
    }

    pub fn mu(&self, k: usize) -> f64 {
        let (rho, _, vs) = self.layers[k.min(self.layers.len() - 1)];
        rho * vs * vs
    }

    pub fn lam(&self, k: usize) -> f64 {
        let (rho, vp, vs) = self.layers[k.min(self.layers.len() - 1)];
        rho * (vp * vp - 2.0 * vs * vs)
    }

    pub fn vp_max(&self) -> f64 {
        self.layers.iter().map(|l| l.1).fold(0.0, f64::max)
    }
}

/// Rupture-run configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuptureConfig {
    /// Grid extent of the rupture box.
    pub dims: Dims3,
    /// Grid spacing (m); M8 used 100 m, miniatures use coarser.
    pub h: f64,
    /// Time step (s).
    pub dt: f64,
    pub steps: usize,
    /// Fault-normal plane index: the fault is the σxy plane between rows
    /// `j0` and `j0 + 1`.
    pub j0: usize,
    /// Along-strike node range of the frictional fault.
    pub i_range: (usize, usize),
    /// Down-dip node range (k = 0 touches the free surface).
    pub k_range: (usize, usize),
    /// Sponge width on the sides/bottom.
    pub sponge_width: usize,
    /// Slip-rate threshold defining rupture time (m/s); the paper's
    /// standard is 1 mm/s.
    pub rupture_threshold: f64,
    /// Record slip-rate histories every this many steps.
    pub record_decimation: usize,
}

impl RuptureConfig {
    /// CFL-safe dt for a model.
    pub fn stable_dt(h: f64, model: &DepthModel) -> f64 {
        0.45 * h / (3f64.sqrt() * model.vp_max()) * 3f64.sqrt() // = 0.45 h / vp_max
    }
}

/// The rupture solver state.
pub struct RuptureSolver {
    pub cfg: RuptureConfig,
    pub model: DepthModel,
    pub prestress: FaultPrestress,
    vx: Array3,
    vy: Array3,
    vz: Array3,
    sxx: Array3,
    syy: Array3,
    szz: Array3,
    sxy: Array3,
    sxz: Array3,
    syz: Array3,
    /// Fault-local state (x-fastest over the fault extent).
    slip: Vec<f64>,
    sliprate: Vec<f64>,
    peak_sliprate: Vec<f64>,
    rupture_time: Vec<f64>,
    /// Decimated slip-rate histories per fault node.
    histories: Vec<Vec<f32>>,
    step: usize,
    /// Sponge profiles.
    gx: Vec<f32>,
    gy: Vec<f32>,
    gz: Vec<f32>,
}

impl RuptureSolver {
    pub fn new(cfg: RuptureConfig, model: DepthModel, prestress: FaultPrestress) -> Self {
        let (i0, i1) = cfg.i_range;
        let (k0, k1) = cfg.k_range;
        assert!(i1 > i0 && k1 > k0, "empty fault");
        assert!(i1 <= cfg.dims.nx && k1 <= cfg.dims.nz && cfg.j0 + 1 < cfg.dims.ny);
        assert_eq!(prestress.nx, i1 - i0, "prestress extent mismatch (x)");
        assert_eq!(prestress.nz, k1 - k0, "prestress extent mismatch (z)");
        let dt_max = 0.5 * cfg.h / (3f64.sqrt() * model.vp_max());
        assert!(cfg.dt <= dt_max * 1.2, "dt {} unstable (max ≈ {dt_max})", cfg.dt);
        let nf = (i1 - i0) * (k1 - k0);
        let d = cfg.dims;
        let cerjan = |n: usize, idx: usize, lo: bool, hi: bool, w: usize| -> f32 {
            let a = (-(0.92f64).ln()).sqrt() / w.max(1) as f64;
            let mut g = 1.0f64;
            if lo && idx < w {
                let dd = (w - idx) as f64;
                g *= (-(a * dd) * (a * dd)).exp();
            }
            if hi && idx + w >= n {
                let dd = (idx + w + 1 - n) as f64;
                g *= (-(a * dd) * (a * dd)).exp();
            }
            g as f32
        };
        let w = cfg.sponge_width;
        Self {
            gx: (0..d.nx).map(|i| cerjan(d.nx, i, true, true, w)).collect(),
            gy: (0..d.ny).map(|j| cerjan(d.ny, j, true, true, w)).collect(),
            gz: (0..d.nz).map(|k| cerjan(d.nz, k, false, true, w)).collect(),
            vx: Array3::new(d, HALO),
            vy: Array3::new(d, HALO),
            vz: Array3::new(d, HALO),
            sxx: Array3::new(d, HALO),
            syy: Array3::new(d, HALO),
            szz: Array3::new(d, HALO),
            sxy: Array3::new(d, HALO),
            sxz: Array3::new(d, HALO),
            syz: Array3::new(d, HALO),
            slip: vec![0.0; nf],
            sliprate: vec![0.0; nf],
            peak_sliprate: vec![0.0; nf],
            rupture_time: vec![f64::INFINITY; nf],
            histories: vec![Vec::new(); nf],
            step: 0,
            cfg,
            model,
            prestress,
        }
    }

    #[inline]
    fn fault_idx(&self, i: usize, k: usize) -> usize {
        (i - self.cfg.i_range.0) + (self.cfg.i_range.1 - self.cfg.i_range.0) * (k - self.cfg.k_range.0)
    }

    /// One time step.
    pub fn step(&mut self) {
        let d = self.cfg.dims;
        let dth = (self.cfg.dt / self.cfg.h) as f32;
        let t = self.step as f64 * self.cfg.dt;

        // --- Velocity update (2nd order) ---
        for k in 0..d.nz as isize {
            let rho = self.model.rho(k as usize) as f32;
            let rho_z = 0.5 * (rho + self.model.rho((k + 1) as usize) as f32);
            for j in 0..d.ny as isize {
                for i in 0..d.nx as isize {
                    let dvx = (self.sxx.get(i + 1, j, k) - self.sxx.get(i, j, k))
                        + (self.sxy.get(i, j, k) - self.sxy.get(i, j - 1, k))
                        + (self.sxz.get(i, j, k) - self.sxz.get(i, j, k - 1));
                    self.vx.add(i, j, k, dth / rho * dvx);
                    let dvy = (self.sxy.get(i, j, k) - self.sxy.get(i - 1, j, k))
                        + (self.syy.get(i, j + 1, k) - self.syy.get(i, j, k))
                        + (self.syz.get(i, j, k) - self.syz.get(i, j, k - 1));
                    self.vy.add(i, j, k, dth / rho * dvy);
                    let dvz = (self.sxz.get(i, j, k) - self.sxz.get(i - 1, j, k))
                        + (self.syz.get(i, j, k) - self.syz.get(i, j - 1, k))
                        + (self.szz.get(i, j, k + 1) - self.szz.get(i, j, k));
                    self.vz.add(i, j, k, dth / rho_z * dvz);
                }
            }
        }
        // Free-surface velocity images (top).
        for j in 0..d.ny as isize {
            for i in 0..d.nx as isize {
                let vx0 = self.vx.get(i, j, 0);
                self.vx.set(i, j, -1, vx0);
                let vy0 = self.vy.get(i, j, 0);
                self.vy.set(i, j, -1, vy0);
                let lam = self.model.lam(0) as f32;
                let mu = self.model.mu(0) as f32;
                let ratio = lam / (lam + 2.0 * mu);
                let exx = (self.vx.get(i, j, 0) - self.vx.get(i - 1, j, 0)) / self.cfg.h as f32;
                let eyy = (self.vy.get(i, j, 0) - self.vy.get(i, j - 1, 0)) / self.cfg.h as f32;
                let vz0 = self.vz.get(i, j, 0);
                self.vz.set(i, j, -1, vz0 + ratio * self.cfg.h as f32 * (exx + eyy));
            }
        }

        // --- Fault slip-rate measurement (velocity jump across the σxy
        // plane at j0) and rupture-time bookkeeping ---
        let (i0, i1) = self.cfg.i_range;
        let (k0, k1) = self.cfg.k_range;
        let j0 = self.cfg.j0 as isize;
        for k in k0..k1 {
            for i in i0..i1 {
                let rate =
                    (self.vx.get(i as isize, j0 + 1, k as isize) - self.vx.get(i as isize, j0, k as isize)) as f64;
                let f = self.fault_idx(i, k);
                self.sliprate[f] = rate;
                if rate > self.peak_sliprate[f] {
                    self.peak_sliprate[f] = rate;
                }
                if rate > self.cfg.rupture_threshold && self.rupture_time[f].is_infinite() {
                    self.rupture_time[f] = t;
                }
                // Slip accumulates forward motion only (the prestress is
                // uni-directional).
                if rate > 0.0 {
                    self.slip[f] += rate * self.cfg.dt;
                }
                if self.step % self.cfg.record_decimation == 0 {
                    self.histories[f].push(rate.max(0.0) as f32);
                }
            }
        }

        // --- Stress update (2nd order) ---
        for k in 0..d.nz as isize {
            let lam = self.model.lam(k as usize) as f32;
            let mu = self.model.mu(k as usize) as f32;
            let mu_z = 0.5 * (mu + self.model.mu((k + 1) as usize) as f32);
            for j in 0..d.ny as isize {
                for i in 0..d.nx as isize {
                    let exx = self.vx.get(i, j, k) - self.vx.get(i - 1, j, k);
                    let eyy = self.vy.get(i, j, k) - self.vy.get(i, j - 1, k);
                    let ezz = self.vz.get(i, j, k) - self.vz.get(i, j, k - 1);
                    let tr = exx + eyy + ezz;
                    self.sxx.add(i, j, k, dth * (lam * tr + 2.0 * mu * exx));
                    self.syy.add(i, j, k, dth * (lam * tr + 2.0 * mu * eyy));
                    self.szz.add(i, j, k, dth * (lam * tr + 2.0 * mu * ezz));
                    self.sxy.add(
                        i,
                        j,
                        k,
                        dth * mu
                            * ((self.vx.get(i, j + 1, k) - self.vx.get(i, j, k))
                                + (self.vy.get(i + 1, j, k) - self.vy.get(i, j, k))),
                    );
                    self.sxz.add(
                        i,
                        j,
                        k,
                        dth * mu_z
                            * ((self.vx.get(i, j, k + 1) - self.vx.get(i, j, k))
                                + (self.vz.get(i + 1, j, k) - self.vz.get(i, j, k))),
                    );
                    self.syz.add(
                        i,
                        j,
                        k,
                        dth * mu_z
                            * ((self.vy.get(i, j, k + 1) - self.vy.get(i, j, k))
                                + (self.vz.get(i, j + 1, k) - self.vz.get(i, j, k))),
                    );
                }
            }
        }

        // --- Fault traction bound (the SGSN friction balance) ---
        for k in k0..k1 {
            for i in i0..i1 {
                let f = self.fault_idx(i, k);
                let p = self.prestress.idx(i - i0, k - k0);
                let mu_fric = {
                    let s = (self.slip[f] / self.prestress.dc[p]).clamp(0.0, 1.0);
                    self.prestress.mu_s[p]
                        + (self.prestress.mu_d[p] - self.prestress.mu_s[p]) * s
                };
                let strength = self.prestress.cohesion
                    + mu_fric * self.prestress.sigma_n[p].max(0.0);
                let total =
                    self.sxy.get(i as isize, j0, k as isize) as f64 + self.prestress.tau0[p];
                if total > strength {
                    self.sxy.set(i as isize, j0, k as isize, (strength - self.prestress.tau0[p]) as f32);
                } else if total < -strength {
                    self.sxy.set(i as isize, j0, k as isize, (-strength - self.prestress.tau0[p]) as f32);
                }
            }
        }

        // Free-surface stress imaging.
        for j in 0..d.ny as isize {
            for i in 0..d.nx as isize {
                self.szz.set(i, j, 0, 0.0);
                let s1 = self.szz.get(i, j, 1);
                self.szz.set(i, j, -1, -s1);
                let x0 = self.sxz.get(i, j, 0);
                self.sxz.set(i, j, -1, -x0);
                let y0 = self.syz.get(i, j, 0);
                self.syz.set(i, j, -1, -y0);
            }
        }

        // Sponge.
        for k in 0..d.nz {
            let gk = self.gz[k];
            for j in 0..d.ny {
                let gjk = self.gy[j] * gk;
                for i in 0..d.nx {
                    let g = self.gx[i] * gjk;
                    if g < 1.0 {
                        let (ii, jj, kk) = (i as isize, j as isize, k as isize);
                        for arr in [
                            &mut self.vx,
                            &mut self.vy,
                            &mut self.vz,
                            &mut self.sxx,
                            &mut self.syy,
                            &mut self.szz,
                            &mut self.sxy,
                            &mut self.sxz,
                            &mut self.syz,
                        ] {
                            let v = arr.get(ii, jj, kk);
                            arr.set(ii, jj, kk, v * g);
                        }
                    }
                }
            }
        }
        self.step += 1;
    }

    /// Run to completion and collect the results.
    pub fn run(mut self) -> RuptureResult {
        for _ in 0..self.cfg.steps {
            self.step();
        }
        let (i0, i1) = self.cfg.i_range;
        let (k0, k1) = self.cfg.k_range;
        let mu: Vec<f64> = (k0..k1).map(|k| self.model.mu(k)).collect();
        RuptureResult::assemble(
            i1 - i0,
            k1 - k0,
            self.cfg.h,
            self.cfg.dt * self.cfg.record_decimation as f64,
            self.slip,
            self.peak_sliprate,
            self.rupture_time,
            self.histories,
            &mu,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prestress::PrestressConfig;

    fn small_setup(seed: u64, reload_mean: f64) -> (RuptureConfig, DepthModel, FaultPrestress) {
        let h = 500.0;
        let dims = Dims3::new(80, 24, 24);
        let model = DepthModel::uniform(dims.nz, 2700.0, 6000.0, 3464.0);
        let mut pc = PrestressConfig::m8_like(60, 16, h, seed);
        pc.hypo = (12, 8);
        pc.nucleation_radius = 3.0 * h;
        pc.reload_mean = reload_mean;
        pc.reload_amp = 0.15;
        let ps = FaultPrestress::build(&pc);
        let cfg = RuptureConfig {
            dims,
            h,
            dt: 0.022,
            steps: 320,
            j0: 12,
            i_range: (10, 70),
            k_range: (0, 16),
            sponge_width: 6,
            rupture_threshold: 1e-3,
            record_decimation: 2,
        };
        (cfg, model, ps)
    }

    #[test]
    fn rupture_propagates_from_hypocentre() {
        let (cfg, model, ps) = small_setup(7, 0.62);
        let res = RuptureSolver::new(cfg, model, ps).run();
        // The hypocentre ruptures first.
        let t_hypo = res.rupture_time(12, 8);
        assert!(t_hypo.is_finite() && t_hypo < 0.5, "hypocentre time {t_hypo}");
        // Distant along-strike nodes rupture later, in order.
        let t_mid = res.rupture_time(30, 8);
        let t_far = res.rupture_time(50, 8);
        assert!(t_mid.is_finite(), "rupture must reach mid-fault");
        assert!(t_far.is_finite(), "rupture must traverse the fault");
        assert!(t_hypo < t_mid && t_mid < t_far, "{t_hypo} {t_mid} {t_far}");
    }

    #[test]
    fn rupture_speed_is_physical() {
        let (cfg, model, ps) = small_setup(7, 0.62);
        let h = cfg.h;
        let res = RuptureSolver::new(cfg, model, ps).run();
        let t1 = res.rupture_time(25, 8);
        let t2 = res.rupture_time(45, 8);
        let v = 20.0 * h / (t2 - t1);
        // Between the Rayleigh floor and P ceiling.
        assert!(v > 1500.0 && v < 6500.0, "rupture speed {v} m/s");
    }

    #[test]
    fn low_prestress_arrests() {
        // Mean reload barely above residual: the nucleation patch fires
        // but the rupture cannot sustain itself to the fault ends.
        let (mut cfg, model, ps) = small_setup(7, 0.08);
        cfg.steps = 300;
        let res = RuptureSolver::new(cfg, model, ps).run();
        assert!(
            !res.rupture_time(55, 8).is_finite(),
            "far node should never rupture at near-residual prestress"
        );
        // But the patch itself slipped a little.
        assert!(res.slip(12, 8) > 0.0);
    }

    #[test]
    fn higher_prestress_ruptures_faster_and_slips_more() {
        let (cfg_lo, model, ps_lo) = small_setup(7, 0.5);
        let (cfg_hi, _, ps_hi) = small_setup(7, 0.85);
        let lo = RuptureSolver::new(cfg_lo, model.clone(), ps_lo).run();
        let hi = RuptureSolver::new(cfg_hi, model, ps_hi).run();
        assert!(hi.mean_slip() > lo.mean_slip(), "{} vs {}", hi.mean_slip(), lo.mean_slip());
        let t_lo = lo.rupture_time(50, 8);
        let t_hi = hi.rupture_time(50, 8);
        if t_lo.is_finite() && t_hi.is_finite() {
            assert!(t_hi <= t_lo, "higher prestress should not be slower");
        } else {
            assert!(t_hi.is_finite(), "high-prestress run must traverse");
        }
    }

    #[test]
    fn moment_and_magnitude_are_consistent() {
        let (cfg, model, ps) = small_setup(7, 0.62);
        let res = RuptureSolver::new(cfg, model, ps).run();
        let m0 = res.moment();
        assert!(m0 > 0.0);
        // M0 = Σ μ A D ⇒ with μ ≈ 3.24e10, A = 250 000 m², mean slip D:
        let expect = 3.24e10 * 250_000.0 * res.mean_slip() * (60.0 * 16.0);
        assert!((m0 / expect - 1.0).abs() < 0.25, "M0 {m0:.3e} vs {expect:.3e}");
        let mw = res.magnitude();
        assert!(mw > 5.0 && mw < 8.5, "Mw {mw}");
    }

    #[test]
    fn slip_rate_histories_recorded() {
        let (cfg, model, ps) = small_setup(7, 0.62);
        let dec = cfg.record_decimation;
        let steps = cfg.steps;
        let res = RuptureSolver::new(cfg, model, ps).run();
        let h = res.history(12, 8);
        assert_eq!(h.len(), steps / dec);
        assert!(h.iter().any(|&v| v > 0.0), "hypocentre must slip");
        // Peak slip rate matches the history peak within decimation loss.
        let hist_peak = h.iter().cloned().fold(0.0f32, f32::max) as f64;
        assert!(res.peak_sliprate(12, 8) >= hist_peak * 0.99);
    }

    #[test]
    fn healed_fault_stops_slipping() {
        let (cfg, model, ps) = small_setup(7, 0.62);
        let dec = cfg.record_decimation;
        let res = RuptureSolver::new(cfg, model, ps).run();
        // Late-time slip rate at the hypocentre returns near zero.
        let h = res.history(12, 8);
        let n = h.len();
        let late = h[(n * 9 / 10)..].iter().cloned().fold(0.0f32, f32::max);
        let peak = h.iter().cloned().fold(0.0f32, f32::max);
        assert!(late < 0.2 * peak, "late {late} vs peak {peak} (dec {dec})");
    }
}
