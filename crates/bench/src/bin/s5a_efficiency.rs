//! §V.A: the Eq. (8) parallel-efficiency calculation — 98.6 % / 2.20×10⁵
//! speedup on 223,074 Jaguar cores — plus weak scaling (90 % between 200
//! and 204 K cores) and per-machine efficiency tables.

use awp_bench::{save_record, section};
use awp_grid::dims::Dims3;
use awp_perfmodel::evolution::VersionFeatures;
use awp_perfmodel::machines::Machine;
use awp_perfmodel::scaling::weak_scaling;
use awp_perfmodel::speedup::{
    best_parts, efficiency, m8_mesh, m8_parts, speedup, ModelInput, PAPER_C,
};
use serde_json::json;

fn main() {
    section("§V.A — Eq. (8) parallel efficiency");
    let jaguar = Machine::Jaguar.profile();
    let inp = ModelInput { n: m8_mesh(), parts: m8_parts(), machine: jaguar.clone(), c: PAPER_C };
    let s = speedup(&inp);
    let e = efficiency(&inp);
    println!("M8 mesh {:?} on {:?} = 223,074 cores:", m8_mesh(), m8_parts());
    println!("  speedup  {s:.4e}   (paper: 2.20×10⁵)");
    println!("  efficiency {:.1}%  (paper: 98.6%)", e * 100.0);
    println!(
        "  machine constants α = {:.1e} s, β = {:.1e} s, τ = {:.2e} s (paper §V.A values)",
        jaguar.alpha, jaguar.beta, jaguar.tau
    );

    section("weak scaling, 200 → 204,000 cores");
    let per_core = Dims3::new(132, 125, 118);
    let pts = weak_scaling(
        per_core,
        &[200, 2_000, 20_000, 204_000],
        &jaguar,
        PAPER_C,
        VersionFeatures::for_version("7.2"),
    );
    println!("{:>9} {:>12} {:>11}", "cores", "t/step (s)", "efficiency");
    for p in &pts {
        println!("{:>9} {:>12.5} {:>11.3}", p.cores, p.time_per_step, p.efficiency);
    }
    println!("paper: '90% parallel efficiency for weak scaling between 200 and 204K cores'");

    section("strong-scaling efficiency per machine at its Table-1 partition");
    println!("{:>10} {:>9} {:>11}", "machine", "cores", "efficiency");
    let mut per_machine = Vec::new();
    for m in Machine::ALL {
        let p = m.profile();
        // A mesh sized to keep ~2M points per core (M8-like loading).
        let target = 2_000_000usize * p.cores_used;
        let nx = ((target as f64).powf(1.0 / 3.0) * 2.0) as usize;
        let n = Dims3::new(nx, nx / 2, nx / 8);
        let parts = best_parts(n, p.cores_used, &p, PAPER_C);
        let e = efficiency(&ModelInput { n, parts, machine: p.clone(), c: PAPER_C });
        println!("{:>10} {:>9} {:>10.1}%", p.name, p.cores_used, e * 100.0);
        per_machine.push(json!({ "machine": p.name, "cores": p.cores_used, "efficiency": e }));
    }

    save_record(
        "s5a",
        "Eq. (8) efficiency / weak scaling (paper §V.A)",
        json!({
            "m8_speedup": s,
            "m8_efficiency": e,
            "paper_speedup": 2.20e5,
            "paper_efficiency": 0.986,
            "weak_scaling": pts.iter().map(|p| json!({
                "cores": p.cores, "efficiency": p.efficiency })).collect::<Vec<_>>(),
            "per_machine": per_machine,
        }),
    );
}
