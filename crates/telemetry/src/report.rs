//! Cross-rank aggregation: per-phase min/mean/max/p95 of rank totals,
//! load-imbalance ratio, hidden-comm fraction, summed counters, merged
//! comm-latency histograms.

use crate::hist::Log2Hist;
use crate::phase::{Counter, HistKind, Phase};
use crate::recorder::Snapshot;
use std::fmt;

/// Cross-rank aggregate for one local-time-stepping dt-cluster.
#[derive(Debug, Clone, Copy)]
pub struct LtsClusterAgg {
    pub cluster: u8,
    /// Substep cadence (fires every `rate` base ticks).
    pub rate: u32,
    /// z-planes the cluster owns (clusters are z-slabs, identical on every
    /// rank because LTS forbids z decomposition).
    pub planes: u32,
    /// Substeps summed across ranks.
    pub substeps: u64,
    /// Compute time inside this cluster's phases summed across ranks, ns.
    pub ns: u64,
    /// Fraction of all LTS cluster compute time spent in this cluster.
    pub time_share: f64,
}

/// Distribution of one phase's **per-rank totals** across ranks.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseAgg {
    /// Total span count across ranks.
    pub count: u64,
    /// Per-rank-total statistics, seconds.
    pub min_s: f64,
    pub mean_s: f64,
    pub max_s: f64,
    pub p95_s: f64,
}

#[derive(Debug, Clone)]
pub struct TelemetryReport {
    pub ranks: usize,
    /// Indexed by `Phase::index()`.
    pub phases: [PhaseAgg; Phase::COUNT],
    /// Summed across ranks, indexed by `Counter::index()`.
    pub counters: [u64; Counter::COUNT],
    /// Comm-latency histograms merged across ranks.
    pub hists: [Log2Hist; HistKind::COUNT],
    /// max/mean of per-rank compute totals (the paper's §V straggler
    /// metric); 1.0 = perfectly balanced, 0.0 if no compute was recorded.
    pub load_imbalance: f64,
    /// 1 − wait/(send+wait+inject): how much of communication the overlap
    /// hides behind interior compute. 0.0 if no comm was recorded.
    pub hidden_comm_fraction: f64,
    /// Spans evicted from rings (totals remain exact), summed across ranks.
    pub dropped_spans: u64,
    /// Per-dt-cluster substep accounting merged across ranks (empty unless
    /// the run used local time stepping).
    pub lts: Vec<LtsClusterAgg>,
}

/// p95 by nearest-rank on a sorted slice (matches how the bench suite
/// quotes percentiles; exact for our small rank counts).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

impl TelemetryReport {
    pub fn from_snapshots(snaps: &[Snapshot]) -> TelemetryReport {
        let ranks = snaps.len();
        let mut phases = [PhaseAgg::default(); Phase::COUNT];
        for phase in Phase::ALL {
            let i = phase.index();
            let mut totals: Vec<f64> =
                snaps.iter().map(|s| s.phase_ns(phase) as f64 * 1e-9).collect();
            totals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let count: u64 = snaps.iter().map(|s| s.phase_count(phase)).sum();
            if ranks > 0 {
                phases[i] = PhaseAgg {
                    count,
                    min_s: totals[0],
                    mean_s: totals.iter().sum::<f64>() / ranks as f64,
                    max_s: totals[ranks - 1],
                    p95_s: percentile(&totals, 0.95),
                };
            }
        }

        let mut counters = [0u64; Counter::COUNT];
        for s in snaps {
            for c in Counter::ALL {
                counters[c.index()] += s.counter(c);
            }
        }

        let mut hists = [Log2Hist::new(); HistKind::COUNT];
        for s in snaps {
            for k in HistKind::ALL {
                hists[k.index()].merge(s.hist(k));
            }
        }

        let compute: Vec<f64> = snaps.iter().map(|s| s.compute_ns() as f64).collect();
        let mean_compute = if ranks > 0 { compute.iter().sum::<f64>() / ranks as f64 } else { 0.0 };
        let max_compute = compute.iter().cloned().fold(0.0f64, f64::max);
        let load_imbalance = if mean_compute > 0.0 { max_compute / mean_compute } else { 0.0 };

        let send: u64 = snaps.iter().map(|s| s.phase_ns(Phase::Send)).sum();
        let wait: u64 = snaps.iter().map(|s| s.phase_ns(Phase::Wait)).sum();
        let inject: u64 = snaps.iter().map(|s| s.phase_ns(Phase::Inject)).sum();
        let comm = send + wait + inject;
        let hidden_comm_fraction =
            if comm > 0 { (1.0 - wait as f64 / comm as f64).clamp(0.0, 1.0) } else { 0.0 };

        let dropped_spans = snaps.iter().map(|s| s.dropped_spans).sum();

        // Merge LTS cluster stats: identity fields (rate, planes) agree
        // across ranks by construction; substeps and ns accumulate.
        let mut lts: Vec<LtsClusterAgg> = Vec::new();
        for s in snaps {
            for c in &s.lts {
                match lts.iter_mut().find(|a| a.cluster == c.cluster) {
                    Some(a) => {
                        a.substeps += c.fires;
                        a.ns += c.ns;
                    }
                    None => lts.push(LtsClusterAgg {
                        cluster: c.cluster,
                        rate: c.rate,
                        planes: c.planes,
                        substeps: c.fires,
                        ns: c.ns,
                        time_share: 0.0,
                    }),
                }
            }
        }
        lts.sort_by_key(|a| a.cluster);
        let lts_total_ns: u64 = lts.iter().map(|a| a.ns).sum();
        if lts_total_ns > 0 {
            for a in &mut lts {
                a.time_share = a.ns as f64 / lts_total_ns as f64;
            }
        }

        TelemetryReport {
            ranks,
            phases,
            counters,
            hists,
            load_imbalance,
            hidden_comm_fraction,
            dropped_spans,
            lts,
        }
    }

    #[inline]
    pub fn phase(&self, p: Phase) -> &PhaseAgg {
        &self.phases[p.index()]
    }

    #[inline]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    #[inline]
    pub fn hist(&self, k: HistKind) -> &Log2Hist {
        &self.hists[k.index()]
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

impl fmt::Display for TelemetryReport {
    /// Human-readable table printed by `awp --profile`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TelemetryReport ({} ranks)", self.ranks)?;
        writeln!(
            f,
            "  {:<18} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "phase", "count", "min(s)", "mean(s)", "max(s)", "p95(s)"
        )?;
        for phase in Phase::ALL {
            let a = self.phase(phase);
            if a.count == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<18} {:>10} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
                phase.name(),
                a.count,
                a.min_s,
                a.mean_s,
                a.max_s,
                a.p95_s
            )?;
        }
        writeln!(f, "  load imbalance (max/mean compute): {:.3}", self.load_imbalance)?;
        writeln!(f, "  hidden-comm fraction:              {:.3}", self.hidden_comm_fraction)?;
        writeln!(
            f,
            "  messages: {} sent / {} recv   bytes: {} sent / {} recv",
            self.counter(Counter::MsgsSent),
            self.counter(Counter::MsgsRecv),
            fmt_bytes(self.counter(Counter::BytesSent)),
            fmt_bytes(self.counter(Counter::BytesRecv)),
        )?;
        writeln!(
            f,
            "  checkpoint bytes: {}   output bytes: {}   arena allocs: {}",
            fmt_bytes(self.counter(Counter::CheckpointBytes)),
            fmt_bytes(self.counter(Counter::OutputBytes)),
            self.counter(Counter::ArenaAllocs),
        )?;
        writeln!(
            f,
            "  fault events: {}   io retries: {}   dropped spans: {}",
            self.counter(Counter::FaultEvents),
            self.counter(Counter::IoRetries),
            self.dropped_spans,
        )?;
        writeln!(
            f,
            "  recoveries: {}   dead letters: {}",
            self.counter(Counter::Recoveries),
            self.counter(Counter::DeadLetters),
        )?;
        if !self.lts.is_empty() {
            writeln!(f, "  dt-clusters (local time stepping):")?;
            writeln!(
                f,
                "    {:<8} {:>5} {:>7} {:>10} {:>11}",
                "cluster", "rate", "planes", "substeps", "time-share"
            )?;
            for c in &self.lts {
                writeln!(
                    f,
                    "    {:<8} {:>5} {:>7} {:>10} {:>10.1}%",
                    c.cluster,
                    c.rate,
                    c.planes,
                    c.substeps,
                    c.time_share * 100.0
                )?;
            }
        }
        for k in HistKind::ALL {
            let h = self.hist(k);
            if h.count() == 0 {
                continue;
            }
            if k == HistKind::QueueDepth {
                writeln!(
                    f,
                    "  {:<7} depth:   n={:<8} mean={:>9.1}   p50={:>9}   p95={:>9}   max={:>9}",
                    k.name(),
                    h.count(),
                    h.mean_ns(),
                    h.quantile_ns(0.50),
                    h.quantile_ns(0.95),
                    h.max_ns(),
                )?;
                continue;
            }
            writeln!(
                f,
                "  {:<7} latency: n={:<8} mean={:>9.1}us p50={:>9.1}us p95={:>9.1}us max={:>9.1}us",
                k.name(),
                h.count(),
                h.mean_ns() / 1e3,
                h.quantile_ns(0.50) as f64 / 1e3,
                h.quantile_ns(0.95) as f64 / 1e3,
                h.max_ns() as f64 / 1e3,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn snap(rank: usize, send_ns: u64, wait_ns: u64, comp_ns: u64) -> Snapshot {
        let epoch = Instant::now();
        let mut r = crate::recorder::Recorder::enabled(rank, epoch, 64);
        r.span_at(Phase::Send, epoch, Duration::from_nanos(send_ns));
        r.span_at(Phase::Wait, epoch, Duration::from_nanos(wait_ns));
        r.span_at(Phase::VelocityInterior, epoch, Duration::from_nanos(comp_ns));
        r.count(Counter::MsgsSent, 4);
        r.observe(HistKind::Send, Duration::from_nanos(send_ns));
        r.snapshot()
    }

    #[test]
    fn aggregates_across_ranks() {
        // 4 ranks; rank 3 is a 2x straggler in compute.
        let snaps: Vec<Snapshot> = vec![
            snap(0, 100, 300, 1_000),
            snap(1, 100, 300, 1_000),
            snap(2, 100, 300, 1_000),
            snap(3, 100, 300, 2_000),
        ];
        let rep = TelemetryReport::from_snapshots(&snaps);
        assert_eq!(rep.ranks, 4);
        let v = rep.phase(Phase::VelocityInterior);
        assert_eq!(v.count, 4);
        assert!((v.min_s - 1e-6).abs() < 1e-12);
        assert!((v.max_s - 2e-6).abs() < 1e-12);
        assert!((v.mean_s - 1.25e-6).abs() < 1e-12);
        assert!((v.p95_s - 2e-6).abs() < 1e-12, "p95 nearest-rank hits the straggler");
        // imbalance = 2000 / 1250 = 1.6
        assert!((rep.load_imbalance - 1.6).abs() < 1e-9);
        // hidden comm = 1 - wait/(send+wait+inject) = 1 - 1200/1600 = 0.25
        assert!((rep.hidden_comm_fraction - 0.25).abs() < 1e-9);
        assert_eq!(rep.counter(Counter::MsgsSent), 16);
        assert_eq!(rep.hist(HistKind::Send).count(), 4);
    }

    #[test]
    fn empty_is_well_defined() {
        let rep = TelemetryReport::from_snapshots(&[]);
        assert_eq!(rep.ranks, 0);
        assert_eq!(rep.load_imbalance, 0.0);
        assert_eq!(rep.hidden_comm_fraction, 0.0);
        let text = format!("{rep}");
        assert!(text.contains("load imbalance"));
    }

    #[test]
    fn lts_cluster_table_aggregates_and_prints() {
        use crate::recorder::LtsClusterStat;
        let epoch = Instant::now();
        let mk = |rank: usize| {
            let mut r = crate::recorder::Recorder::enabled(rank, epoch, 16);
            r.span_at(Phase::VelocityInterior, epoch, Duration::from_nanos(100));
            r.set_lts_stats(vec![
                LtsClusterStat { cluster: 0, rate: 1, planes: 8, fires: 32, ns: 3_000 },
                LtsClusterStat { cluster: 1, rate: 4, planes: 24, fires: 8, ns: 1_000 },
            ]);
            r.snapshot()
        };
        let rep = TelemetryReport::from_snapshots(&[mk(0), mk(1)]);
        assert_eq!(rep.lts.len(), 2);
        assert_eq!(rep.lts[0].substeps, 64, "substeps sum across ranks");
        assert_eq!(rep.lts[1].substeps, 16);
        assert_eq!((rep.lts[0].rate, rep.lts[1].rate), (1, 4));
        assert!((rep.lts[0].time_share - 0.75).abs() < 1e-12);
        assert!((rep.lts[1].time_share - 0.25).abs() < 1e-12);
        let text = format!("{rep}");
        assert!(text.contains("dt-clusters"), "{text}");
        assert!(text.contains("substeps"), "{text}");
    }

    #[test]
    fn display_contains_headline_metrics() {
        let snaps = vec![snap(0, 10, 10, 100), snap(1, 10, 10, 100)];
        let rep = TelemetryReport::from_snapshots(&snaps);
        let text = format!("{rep}");
        assert!(text.contains("velocity_interior"));
        assert!(text.contains("load imbalance"));
        assert!(text.contains("hidden-comm fraction"));
        assert!(text.contains("send    latency"));
    }
}
