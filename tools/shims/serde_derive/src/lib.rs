//! Offline dev shim for `serde_derive`: emits real field-wise JSON
//! (de)serialisation through the shim `serde` traits, so shim-mode runs
//! produce correct output instead of `null` placeholders. Handles the
//! shapes this workspace derives on — non-generic named-field structs and
//! enums with unit / named-field / tuple variants (serde's external
//! tagging). Anything else is rejected at expansion time with a clear
//! error. Never shipped.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Body {
    /// `struct Name;`
    Unit,
    /// `struct Name { a: A, b: B }`
    Named(Vec<String>),
}

enum VariantShape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

enum Item {
    Struct(Body),
    Enum(Vec<(String, VariantShape)>),
}

struct Parsed {
    name: String,
    item: Item,
}

/// Advance past any `#[...]` attribute pairs starting at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 2; // '#' + the [...] group
    }
}

fn is_punct(tt: Option<&TokenTree>, c: char) -> bool {
    matches!(tt, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

/// Field names of a `{ ... }` body (struct or enum variant). Commas inside
/// angle brackets (`Map<K, V>`) do not split fields.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        // Idents up to the first ':' are visibility + the field name.
        let mut name = None;
        while i < tokens.len() && !is_punct(tokens.get(i), ':') {
            if let TokenTree::Ident(id) = &tokens[i] {
                name = Some(id.to_string());
            }
            i += 1;
        }
        fields.push(name.expect("serde shim derive: field without a name"));
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Number of fields in a `( ... )` tuple body.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut depth = 0i32;
    for tt in &tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => arity += 1,
            _ => {}
        }
    }
    arity
}

fn variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = VariantShape::Named(named_fields(g.stream()));
                i += 1;
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = VariantShape::Tuple(tuple_arity(g.stream()));
                i += 1;
                s
            }
            _ => VariantShape::Unit,
        };
        // Skip any discriminant (`= expr`) up to the separating comma.
        while i < tokens.len() && !is_punct(tokens.get(i), ',') {
            i += 1;
        }
        i += 1; // the comma
        out.push((name, shape));
    }
    out
}

fn parse_item(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let is_enum = loop {
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => i += 1,
            None => panic!("serde shim derive: no struct/enum keyword found"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;
    if is_punct(tokens.get(i), '<') {
        panic!("serde shim derive: generic type {name} is unsupported");
    }
    let item = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Item::Enum(variants(g.stream()))
            } else {
                Item::Struct(Body::Named(named_fields(g.stream())))
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && !is_enum => {
            Item::Struct(Body::Unit)
        }
        other => panic!(
            "serde shim derive: unsupported body for {name} (tuple struct?): {other:?}"
        ),
    };
    Parsed { name, item }
}

/// `out.push_str("<text>");` with `text` escaped as a Rust literal.
fn emit_lit(code: &mut String, text: &str) {
    code.push_str(&format!("out.push_str({text:?});"));
}

/// `out.push_str(&::serde::Serialize::shim_json(<expr>));`
fn emit_field(code: &mut String, expr: &str) {
    code.push_str(&format!(
        "out.push_str(&::serde::Serialize::shim_json({expr}));"
    ));
}

/// Body text serialising named fields reachable as `{prefix}{field}` into
/// an `out` string already positioned after an opening '{'.
fn emit_named_body(code: &mut String, fields: &[String], prefix: &str) {
    for (k, f) in fields.iter().enumerate() {
        if k > 0 {
            code.push_str("out.push(',');");
        }
        emit_lit(code, &format!("\"{f}\":"));
        emit_field(code, &format!("{prefix}{f}"));
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Parsed { name, item } = parse_item(input);
    let mut body = String::new();
    match &item {
        Item::Struct(Body::Unit) => {
            body.push_str("let out = String::from(\"null\");");
        }
        Item::Struct(Body::Named(fields)) => {
            body.push_str("let mut out = String::from(\"{\");");
            emit_named_body(&mut body, fields, "&self.");
            body.push_str("out.push('}');");
        }
        Item::Enum(vars) => {
            body.push_str("let out = match self {");
            for (v, shape) in vars {
                match shape {
                    VariantShape::Unit => {
                        body.push_str(&format!(
                            "{name}::{v} => String::from({:?}),",
                            format!("\"{v}\"")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let pat: Vec<&str> = fields.iter().map(|s| s.as_str()).collect();
                        body.push_str(&format!(
                            "{name}::{v} {{ {} }} => {{",
                            pat.join(", ")
                        ));
                        body.push_str("let mut out = String::new();");
                        emit_lit(&mut body, &format!("{{\"{v}\":{{"));
                        emit_named_body(&mut body, fields, "");
                        emit_lit(&mut body, "}}");
                        body.push_str("out},");
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("v{k}")).collect();
                        body.push_str(&format!(
                            "{name}::{v}({}) => {{",
                            binds.join(", ")
                        ));
                        body.push_str("let mut out = String::new();");
                        if *n == 1 {
                            emit_lit(&mut body, &format!("{{\"{v}\":"));
                            emit_field(&mut body, "v0");
                        } else {
                            emit_lit(&mut body, &format!("{{\"{v}\":["));
                            for (k, b) in binds.iter().enumerate() {
                                if k > 0 {
                                    body.push_str("out.push(',');");
                                }
                                emit_field(&mut body, b);
                            }
                            body.push_str("out.push(']');");
                        }
                        body.push_str("out.push('}');");
                        body.push_str("out},");
                    }
                }
            }
            body.push_str("};");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn shim_json(&self) -> String {{ {body} out }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

const SV: &str = "::serde::value::ShimValue";

/// `<field>: ::serde::Deserialize::shim_from_value(obj.get("<field>")...)?,`
fn emit_named_de(code: &mut String, fields: &[String]) {
    for f in fields {
        code.push_str(&format!(
            "{f}: ::serde::Deserialize::shim_from_value(\
                 obj.get({f:?}).unwrap_or(&{SV}::Null))?,"
        ));
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Parsed { name, item } = parse_item(input);
    let mut body = String::new();
    match &item {
        Item::Struct(Body::Unit) => {
            body.push_str(&format!("Ok({name})"));
        }
        Item::Struct(Body::Named(fields)) => {
            body.push_str(&format!(
                "let obj = match v {{ {SV}::Object(m) => m, other => \
                     return Err(format!(\"expected object for {name}, got {{other:?}}\")) }};"
            ));
            body.push_str(&format!("Ok({name} {{"));
            emit_named_de(&mut body, fields);
            body.push_str("})");
        }
        Item::Enum(vars) => {
            let has_data = vars
                .iter()
                .any(|(_, s)| !matches!(s, VariantShape::Unit));
            body.push_str("match v {");
            // Unit variants arrive as plain strings.
            body.push_str(&format!("{SV}::String(s) => match s.as_str() {{"));
            for (v, shape) in vars {
                if matches!(shape, VariantShape::Unit) {
                    body.push_str(&format!("{v:?} => Ok({name}::{v}),"));
                }
            }
            body.push_str(&format!(
                "other => Err(format!(\"unknown unit variant {{other:?}} for {name}\")), }},"
            ));
            // Data variants arrive as single-key objects.
            if has_data {
                body.push_str(&format!(
                    "{SV}::Object(m) if m.len() == 1 => {{\
                         let (k, inner) = m.iter().next().unwrap();\
                         match k.as_str() {{"
                ));
                for (v, shape) in vars {
                    match shape {
                        VariantShape::Unit => {}
                        VariantShape::Named(fields) => {
                            body.push_str(&format!(
                                "{v:?} => {{ let obj = match inner {{ \
                                     {SV}::Object(m2) => m2, other => return Err(format!(\
                                     \"expected object for {name}::{v}, got {{other:?}}\")) }};"
                            ));
                            body.push_str(&format!("Ok({name}::{v} {{"));
                            emit_named_de(&mut body, fields);
                            body.push_str("})},");
                        }
                        VariantShape::Tuple(1) => {
                            body.push_str(&format!(
                                "{v:?} => Ok({name}::{v}(\
                                     ::serde::Deserialize::shim_from_value(inner)?)),"
                            ));
                        }
                        VariantShape::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!(
                                        "::serde::Deserialize::shim_from_value(&a[{k}])?"
                                    )
                                })
                                .collect();
                            body.push_str(&format!(
                                "{v:?} => match inner {{ \
                                     {SV}::Array(a) if a.len() == {n} => \
                                         Ok({name}::{v}({})), \
                                     other => Err(format!(\"expected {n}-element array \
                                         for {name}::{v}, got {{other:?}}\")) }},",
                                elems.join(", ")
                            ));
                        }
                    }
                }
                body.push_str(&format!(
                    "other => Err(format!(\"unknown variant {{other:?}} for {name}\")), }} }},"
                ));
            }
            body.push_str(&format!(
                "other => Err(format!(\"expected enum value for {name}, got {{other:?}}\")), }}"
            ));
        }
    }
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn shim_from_value(v: &{SV}) -> ::std::result::Result<Self, String> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
