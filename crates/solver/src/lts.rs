//! Clustered local time stepping (LTS): rate-2ᵏ dt-clusters keyed to the
//! velocity model's depth structure.
//!
//! The paper's solver advances the whole grid at the single global CFL
//! step dictated by the stiffest material (§II.B: `dt ≤ 6h/(7√3·Vp_max)`).
//! In a basin-over-rock medium most z-planes tolerate a step 2–8× larger;
//! this module partitions the grid into horizontal *dt-clusters* whose
//! steps are power-of-two multiples of the base `dt` (the clustering pass
//! lives in `awp_cvm::lts`), and advances each cluster only on the base
//! ticks it "fires" on (tick `n` fires cluster `c` iff `n % rate_c == 0`).
//!
//! # Schedule and interface coupling
//!
//! One base tick runs in lock-step sub-phases across all firing clusters:
//!
//! 1. **prev-capture** — for every interface whose coarse side fires, the
//!    two coarse edge planes of `v` and of the z-coupled stresses are
//!    snapshotted (they become the `prev` endpoint for interpolation
//!    during the coarse cluster's next `rate` ticks);
//! 2. **velocity phases** of every firing cluster;
//! 3. **stress phases** of every firing cluster (free-surface velocity
//!    imaging runs just before the surface cluster's stress phase);
//! 4. **velocity sponge** of every firing cluster (after *all* stress
//!    phases, so same-tick stress reads see undamped velocities — the
//!    fused schedule's semantics).
//!
//! Because adjacent clusters always differ by exactly one octave (the
//! clustering pass enforces the 2× adjacency rule), cross-cluster ghost
//! reads need only two interpolation cases; all other reads use live
//! neighbour values, which sub-phase ordering makes either exact or a
//! clamped O(Δt) extrapolation:
//!
//! * a fine **velocity** phase on a tick where the coarse neighbour is
//!   idle reads the coarse z-coupled stresses (σxz, σyz, σzz — the only
//!   components the z-derivatives reach across the interface) at the
//!   midpoint `½·prev + ½·live` (exact for the 2× ratio);
//! * a fine **stress** phase on a tick where the coarse neighbour also
//!   fires reads the coarse velocities at `¼·prev + ¾·live` (exact: the
//!   fine half-step time lands three quarters of the way between the
//!   coarse cluster's previous and current half-step velocities).
//!
//! The ghosts are realised as save → overwrite → kernel → restore on the
//! two coarse edge planes (interior columns only: kernels reach
//! neighbour-cluster k-planes solely through z-derivatives, which never
//! offset i/j, so halo columns of foreign planes are never read).
//!
//! A direction note: the issue motivating this work sketches soft basins
//! as the *fine* clusters. The physics runs the other way — `dt_CFL`
//! scales with `1/Vp`, so the stiff high-Vp basement pins the base step
//! and the soft low-Vp basin coarsens — and the machinery is agnostic:
//! clusters come from the per-plane CFL profile, whichever way it slopes.

use crate::attenuation::Attenuation;
use crate::boundary::Sponge;
use crate::config::{AbcKind, LtsOpts, SolverConfig};
use crate::medium::Medium;
use crate::pml::Mpml;
use crate::shell::Win;
use crate::state::WaveState;
use awp_cvm::lts::{clusters_from_profile, rate_profile, theoretical_speedup, ClusterSpec};
use awp_cvm::mesh::Mesh;
use awp_grid::array3::Array3;
use awp_grid::decomp::Subdomain;
use awp_grid::stagger::Component;

/// Highest cluster count the runtime accepts: cluster indices share the
/// message-tag step field with the tick number (`step = tick << 4 | c`),
/// so they must fit in 4 bits. Real CFL profiles produce a handful of
/// octave bands; an adversarial profile that exceeds this simply falls
/// back to global time stepping.
pub const MAX_CLUSTERS: usize = 16;

/// The velocity components interpolated across a coarse interface plane.
const V_COMPS: [Component; 3] = [Component::Vx, Component::Vy, Component::Vz];
/// The stress components the velocity z-derivatives read across an
/// interface (σxz, σyz, σzz — no other stress crosses a k-plane).
const S_COMPS: [Component; 3] = [Component::Sxz, Component::Syz, Component::Szz];

/// A solver-agnostic cluster schedule: the dt-clusters (k-ranges + rates)
/// plus derived quantities. Built once from the *global* per-plane Vp
/// profile so every rank of a decomposed run derives the identical
/// partition.
#[derive(Debug, Clone, PartialEq)]
pub struct LtsPlan {
    pub clusters: Vec<ClusterSpec>,
}

impl LtsPlan {
    /// Build from a per-k-plane maximum-Vp profile (global extent).
    pub fn from_profile(vp_max_per_k: &[f64], h: f64, dt: f64, opts: LtsOpts) -> Self {
        let rates = rate_profile(vp_max_per_k, h, dt, opts.max_rate_log2);
        Self { clusters: clusters_from_profile(&rates, opts.min_slab) }
    }

    /// Build from a (global) mesh.
    pub fn from_mesh(mesh: &Mesh, dt: f64, opts: LtsOpts) -> Self {
        Self::from_profile(&mesh.vp_max_per_k(), mesh.h, dt, opts)
    }

    /// More than one rate band ⇒ the LTS schedule differs from fused.
    pub fn is_multi_rate(&self) -> bool {
        self.clusters.len() > 1
    }

    /// Slowest cadence in the ladder (ticks between the coarsest cluster's
    /// fires). Every `max_rate` ticks the whole grid aligns: all clusters
    /// fire and every interface re-captures `prev`, so checkpoints cut at
    /// multiples of this need no interpolation state.
    pub fn max_rate(&self) -> u32 {
        self.clusters.iter().map(|c| c.rate).max().unwrap_or(1)
    }

    /// Ideal update-count speedup of this schedule over global stepping.
    pub fn theoretical_speedup(&self) -> f64 {
        theoretical_speedup(&self.clusters)
    }
}

/// One cluster's runtime state: its window, cadence, and — for rates > 1 —
/// private dt-dependent operators (attenuation coefficients, M-PML
/// profiles and sponge amplitudes are all functions of the step size, so a
/// cluster stepping `rate·dt` needs its own). Rate-1 clusters borrow the
/// solver's global-dt operators.
pub(crate) struct LtsCluster {
    pub win: Win,
    pub rate: u32,
    pub atten: Option<Attenuation>,
    pub mpml: Option<Mpml>,
    pub sponge: Option<Sponge>,
    /// Substeps executed (telemetry).
    pub fires: u64,
    /// Compute nanoseconds accumulated inside this cluster's phases.
    pub ns: u64,
}

/// One fine↔coarse interface: the bookkeeping for the two ghost
/// interpolation cases on the coarse side's two edge planes.
pub(crate) struct LtsInterface {
    /// Cluster indices into `LtsRuntime::clusters`.
    pub fine: usize,
    pub coarse: usize,
    /// Interior k of the two coarse planes adjacent to the fine cluster,
    /// nearest to the interface first.
    pub planes: [usize; 2],
    /// Snapshots captured at the coarse cluster's firing tick:
    /// `[v × 3][plane × 2]` then `[σ × 3][plane × 2]`.
    prev: Vec<Vec<f32>>,
    /// Scratch holding live values while an overwrite is active.
    save: Vec<Vec<f32>>,
}

impl LtsInterface {
    fn new(fine: usize, coarse: usize, planes: [usize; 2], plane_len: usize) -> Self {
        Self {
            fine,
            coarse,
            planes,
            prev: (0..12).map(|_| vec![0.0; plane_len]).collect(),
            save: (0..12).map(|_| vec![0.0; plane_len]).collect(),
        }
    }

    /// Index into `prev`/`save`: component slot `c` (0..6 over v then σ),
    /// plane slot `p` (0..2).
    fn slot(c: usize, p: usize) -> usize {
        c * 2 + p
    }

    /// Sub-phase 0: snapshot the coarse edge planes (runs on the coarse
    /// cluster's firing ticks, before any update).
    pub fn capture_prev(&mut self, state: &WaveState) {
        for (ci, comp) in V_COMPS.iter().chain(S_COMPS.iter()).enumerate() {
            let arr = state.field(*comp);
            for (pi, &k) in self.planes.iter().enumerate() {
                copy_plane(arr, k, &mut self.prev[Self::slot(ci, pi)]);
            }
        }
    }

    /// Overwrite the coarse edge planes of `comps` (offset `c0` into the
    /// snapshot slots) with `w_prev·prev + (1−w_prev)·live`, saving the
    /// live values for [`Self::restore`].
    fn blend(&mut self, state: &mut WaveState, comps: &[Component], c0: usize, w_prev: f32) {
        for (ci, comp) in comps.iter().enumerate() {
            let arr = state.field_mut(*comp);
            for (pi, &k) in self.planes.iter().enumerate() {
                let s = Self::slot(c0 + ci, pi);
                copy_plane(arr, k, &mut self.save[s]);
                blend_plane(arr, k, &self.prev[s], w_prev);
            }
        }
    }

    fn restore(&mut self, state: &mut WaveState, comps: &[Component], c0: usize) {
        for (ci, comp) in comps.iter().enumerate() {
            let arr = state.field_mut(*comp);
            for (pi, &k) in self.planes.iter().enumerate() {
                write_plane(arr, k, &self.save[Self::slot(c0 + ci, pi)]);
            }
        }
    }

    /// Fine velocity phase, coarse idle: σ ghosts at the midpoint.
    pub fn blend_stress(&mut self, state: &mut WaveState) {
        self.blend(state, &S_COMPS, 3, 0.5);
    }

    pub fn restore_stress(&mut self, state: &mut WaveState) {
        self.restore(state, &S_COMPS, 3);
    }

    /// Fine stress phase, coarse firing: v ghosts at the ¾ point.
    pub fn blend_velocity(&mut self, state: &mut WaveState) {
        self.blend(state, &V_COMPS, 0, 0.25);
    }

    pub fn restore_velocity(&mut self, state: &mut WaveState) {
        self.restore(state, &V_COMPS, 0);
    }
}

/// Copy interior plane `k` of `a` (x-fastest, row-contiguous) into `out`.
fn copy_plane(a: &Array3, k: usize, out: &mut [f32]) {
    let d = a.interior();
    debug_assert_eq!(out.len(), d.nx * d.ny);
    let data = a.as_slice();
    for j in 0..d.ny {
        let row = a.offset(0, j as isize, k as isize);
        out[j * d.nx..(j + 1) * d.nx].copy_from_slice(&data[row..row + d.nx]);
    }
}

fn write_plane(a: &mut Array3, k: usize, src: &[f32]) {
    let d = a.interior();
    debug_assert_eq!(src.len(), d.nx * d.ny);
    for j in 0..d.ny {
        let row = a.offset(0, j as isize, k as isize);
        a.as_mut_slice()[row..row + d.nx].copy_from_slice(&src[j * d.nx..(j + 1) * d.nx]);
    }
}

/// `plane ← w_prev·prev + (1−w_prev)·plane` over interior columns.
fn blend_plane(a: &mut Array3, k: usize, prev: &[f32], w_prev: f32) {
    let d = a.interior();
    let w_live = 1.0 - w_prev;
    for j in 0..d.ny {
        let row = a.offset(0, j as isize, k as isize);
        let live = &mut a.as_mut_slice()[row..row + d.nx];
        for (v, p) in live.iter_mut().zip(&prev[j * d.nx..(j + 1) * d.nx]) {
            *v = w_prev * p + w_live * *v;
        }
    }
}

/// Per-rank LTS runtime the solver steps through. Built by
/// `Solver::enable_lts` from an [`LtsPlan`]; `None` (single cluster,
/// or a plan too fragmented for the tag space) means the solver keeps the
/// fused global-dt path bit-exactly.
pub struct LtsRuntime {
    pub(crate) clusters: Vec<LtsCluster>,
    pub(crate) interfaces: Vec<LtsInterface>,
    pub max_rate: u32,
    pub specs: Vec<ClusterSpec>,
}

impl LtsRuntime {
    /// Build the runtime for one rank. `specs` must come from the global
    /// profile (identical on every rank); the rank's subdomain must span
    /// the full z extent (enforced by the drivers via the single-z-part
    /// config rule).
    pub(crate) fn build(cfg: &SolverConfig, sub: &Subdomain, med: &Medium, specs: &[ClusterSpec]) -> Option<Self> {
        if specs.len() < 2 || specs.len() > MAX_CLUSTERS {
            return None;
        }
        debug_assert_eq!(
            specs.last().unwrap().k1,
            sub.dims.nz,
            "cluster partition must cover the rank's full z extent"
        );
        let d = sub.dims;
        let clusters: Vec<LtsCluster> = specs
            .iter()
            .map(|c| {
                let rate = c.rate;
                let dt_c = cfg.dt * f64::from(rate);
                let (atten, mpml, sponge) = if rate == 1 {
                    // Borrow the solver's global-dt operators.
                    (None, None, None)
                } else {
                    let atten = cfg.attenuation.then(|| {
                        Attenuation::new(med, dt_c, cfg.q_band.0, cfg.q_band.1, sub.origin)
                    });
                    let (mpml, sponge) = match cfg.abc {
                        AbcKind::Sponge { width, amp } => (
                            None,
                            // amp^rate: the Cerjan profile is exp(−(a·d)²)
                            // with a ∝ √(−ln amp), so raising amp to the
                            // rate yields exactly profile^rate per fire —
                            // the damping a rate-1 cluster accumulates
                            // over the same interval.
                            Some(Sponge::new(sub, width, amp.powi(rate as i32), cfg.free_surface)),
                        ),
                        AbcKind::Mpml { width, pmax } => (
                            Some(Mpml::new(sub, med, width, pmax, dt_c, cfg.q_band.1.max(0.5), 1e-4)),
                            None,
                        ),
                        AbcKind::None => (None, None),
                    };
                    (atten, mpml, sponge)
                };
                LtsCluster {
                    win: Win { i0: 0, i1: d.nx, j0: 0, j1: d.ny, k0: c.k0, k1: c.k1 },
                    rate,
                    atten,
                    mpml,
                    sponge,
                    fires: 0,
                    ns: 0,
                }
            })
            .collect();
        let plane_len = d.nx * d.ny;
        let mut interfaces = Vec::new();
        for i in 0..specs.len() - 1 {
            let (up, dn) = (&specs[i], &specs[i + 1]);
            debug_assert_eq!(up.k1, dn.k0, "clusters must tile contiguously");
            debug_assert_ne!(up.rate, dn.rate, "adjacent clusters must differ in rate");
            // The coarser (slower) side owns the interpolated edge planes.
            let (fine, coarse, planes) = if up.rate < dn.rate {
                (i, i + 1, [dn.k0, dn.k0 + 1])
            } else {
                (i + 1, i, [up.k1 - 1, up.k1 - 2])
            };
            interfaces.push(LtsInterface::new(fine, coarse, planes, plane_len));
        }
        Some(Self {
            max_rate: specs.iter().map(|c| c.rate).max().unwrap_or(1),
            specs: specs.to_vec(),
            clusters,
            interfaces,
        })
    }

    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Does cluster `c` advance on base tick `n`?
    pub fn fires(&self, c: usize, tick: u64) -> bool {
        tick % u64::from(self.clusters[c].rate) == 0
    }

    /// Per-cluster accounting for telemetry.
    pub fn stats(&self) -> Vec<awp_telemetry::LtsClusterStat> {
        self.clusters
            .iter()
            .enumerate()
            .map(|(i, c)| awp_telemetry::LtsClusterStat {
                cluster: i as u8,
                rate: c.rate,
                planes: (c.win.k1 - c.win.k0) as u32,
                fires: c.fires,
                ns: c.ns,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use awp_grid::dims::Dims3;

    #[test]
    fn plan_from_profile_collapses_uniform_media() {
        let prof = vec![6000.0; 32];
        let dt = 6.0 * 100.0 / (7.0 * 3.0f64.sqrt() * 6000.0);
        let plan = LtsPlan::from_profile(&prof, 100.0, dt, LtsOpts::new());
        assert_eq!(plan.clusters.len(), 1);
        assert!(!plan.is_multi_rate());
        assert_eq!(plan.max_rate(), 1);
        assert!((plan.theoretical_speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plan_from_contrast_profile_is_multi_rate() {
        let mut prof = vec![1500.0; 24];
        prof.extend(vec![6000.0; 8]);
        let dt = 6.0 * 100.0 / (7.0 * 3.0f64.sqrt() * 6000.0);
        let plan = LtsPlan::from_profile(&prof, 100.0, dt, LtsOpts::new());
        assert!(plan.is_multi_rate());
        assert!(plan.max_rate() >= 2);
        assert!(plan.theoretical_speedup() > 1.5);
    }

    #[test]
    fn blend_plane_midpoint_and_restore_roundtrip() {
        let d = Dims3::new(4, 3, 3);
        let mut a = Array3::new(d, 2);
        a.map_interior(|idx, _| (idx.i + 10 * idx.j + 100 * idx.k) as f32);
        let n = d.nx * d.ny;
        let mut prev = vec![0.0f32; n];
        let mut live = vec![0.0f32; n];
        copy_plane(&a, 1, &mut live);
        // prev = live + 2 ⇒ midpoint blend = live + 1 everywhere.
        for (p, l) in prev.iter_mut().zip(&live) {
            *p = l + 2.0;
        }
        blend_plane(&mut a, 1, &prev, 0.5);
        let mut blended = vec![0.0f32; n];
        copy_plane(&a, 1, &mut blended);
        for (b, l) in blended.iter().zip(&live) {
            assert_eq!(*b, l + 1.0);
        }
        // Other planes untouched.
        assert_eq!(a.get(0, 0, 0), 0.0);
        assert_eq!(a.get(1, 1, 2), 1.0 + 10.0 + 200.0);
        // Restore.
        write_plane(&mut a, 1, &live);
        let mut back = vec![0.0f32; n];
        copy_plane(&a, 1, &mut back);
        assert_eq!(back, live);
    }
}
