//! Time-series utilities: resampling, calculus, and the aVal L2 misfit.

/// Linear-interpolation resampling of a series sampled at `dt_in` onto
/// `n_out` samples at `dt_out`, both starting at t = 0. Samples beyond the
/// input extent are held at the last input value.
pub fn resample_linear(x: &[f64], dt_in: f64, dt_out: f64, n_out: usize) -> Vec<f64> {
    assert!(dt_in > 0.0 && dt_out > 0.0);
    if x.is_empty() {
        return vec![0.0; n_out];
    }
    (0..n_out)
        .map(|i| {
            let t = i as f64 * dt_out;
            let s = t / dt_in;
            let i0 = s.floor() as usize;
            if i0 + 1 >= x.len() {
                *x.last().unwrap()
            } else {
                let f = s - i0 as f64;
                x[i0] * (1.0 - f) + x[i0 + 1] * f
            }
        })
        .collect()
}

/// Cumulative trapezoidal integration: `y[i] = ∫₀^{t_i} x dt`.
pub fn integrate_trapezoid(x: &[f64], dt: f64) -> Vec<f64> {
    let mut y = Vec::with_capacity(x.len());
    let mut acc = 0.0;
    for i in 0..x.len() {
        if i > 0 {
            acc += 0.5 * (x[i] + x[i - 1]) * dt;
        }
        y.push(acc);
    }
    y
}

/// Central-difference derivative (one-sided at the ends).
pub fn differentiate(x: &[f64], dt: f64) -> Vec<f64> {
    let n = x.len();
    if n < 2 {
        return vec![0.0; n];
    }
    (0..n)
        .map(|i| {
            if i == 0 {
                (x[1] - x[0]) / dt
            } else if i == n - 1 {
                (x[n - 1] - x[n - 2]) / dt
            } else {
                (x[i + 1] - x[i - 1]) / (2.0 * dt)
            }
        })
        .collect()
}

/// Relative L2 misfit between a trial waveform and a reference — the
/// acceptance-test metric of the paper's aVal toolkit (§III.H: "a simple
/// least-squares (L2 norm) fit of the waveforms from the new simulation and
/// the 'correct' result in the reference solution").
///
/// Returns `‖a − b‖₂ / ‖b‖₂`; 0 means identical, and a reference of all
/// zeros yields the absolute norm of `a`.
pub fn l2_misfit(trial: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(trial.len(), reference.len(), "waveform length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in trial.iter().zip(reference) {
        num += (a - b) * (a - b);
        den += b * b;
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Peak absolute value of a series.
pub fn peak_abs(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Root-sum-of-squares of two horizontal components, per sample — the PGVH
/// measure of the paper's Fig. 21 ("as the root sum of squares of the
/// horizontal components").
pub fn horizontal_rss(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a.hypot(*b)).collect()
}

/// Geometric mean of the two horizontal peak values — the measure used by
/// the NGA relations in Fig. 23 ("we use the geometric mean of the PGVHs").
pub fn geometric_mean_peak(x: &[f64], y: &[f64]) -> f64 {
    (peak_abs(x) * peak_abs(y)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resample_identity_when_same_rate() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = resample_linear(&x, 0.1, 0.1, 4);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_interpolates_midpoints() {
        let x = vec![0.0, 2.0];
        let y = resample_linear(&x, 1.0, 0.5, 3);
        assert_eq!(y, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn resample_holds_last_value() {
        let x = vec![1.0, 5.0];
        let y = resample_linear(&x, 1.0, 1.0, 4);
        assert_eq!(y, vec![1.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn integral_of_constant_is_line() {
        let x = vec![2.0; 11];
        let y = integrate_trapezoid(&x, 0.5);
        assert!((y[10] - 10.0).abs() < 1e-12);
        assert_eq!(y[0], 0.0);
    }

    #[test]
    fn derivative_of_line_is_constant() {
        let x: Vec<f64> = (0..20).map(|i| 3.0 * i as f64 * 0.1).collect();
        let d = differentiate(&x, 0.1);
        for v in &d {
            assert!((v - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn derivative_inverts_integral_approximately() {
        let dt = 0.01;
        let x: Vec<f64> = (0..1000).map(|i| (i as f64 * dt * 3.0).sin()).collect();
        let xi = integrate_trapezoid(&x, dt);
        let xd = differentiate(&xi, dt);
        // Interior samples should match well.
        for i in 10..990 {
            assert!((xd[i] - x[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn l2_misfit_zero_for_identical() {
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(l2_misfit(&x, &x), 0.0);
    }

    #[test]
    fn l2_misfit_scales() {
        let r = vec![1.0, 1.0, 1.0, 1.0];
        let t = vec![1.1, 1.1, 1.1, 1.1];
        assert!((l2_misfit(&t, &r) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn rss_and_geomean() {
        let x = vec![3.0, 0.0];
        let y = vec![4.0, 1.0];
        assert_eq!(horizontal_rss(&x, &y), vec![5.0, 1.0]);
        assert!((geometric_mean_peak(&x, &y) - (3.0f64 * 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn peak_abs_handles_negatives() {
        assert_eq!(peak_abs(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(peak_abs(&[]), 0.0);
    }
}
