//! Material samples and empirical crustal relations.

use serde::{Deserialize, Serialize};

/// One queried material point: wave speeds (m/s), density (kg/m³) and
/// quality factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaterialSample {
    pub vp: f32,
    pub vs: f32,
    pub rho: f32,
    pub qs: f32,
    pub qp: f32,
}

impl MaterialSample {
    /// Build a sample from wave speeds, deriving Q from the paper's
    /// on-the-fly rules: "Qs = 50 Vs where Vs is in units of km/s, and
    /// Qp = 2 Qs" (§VII.B).
    pub fn from_speeds(vp: f32, vs: f32, rho: f32) -> Self {
        let qs = qs_from_vs(vs);
        Self { vp, vs, rho, qs, qp: 2.0 * qs }
    }

    /// Physical admissibility: positive density, Vp > √2·Vs (positive λ),
    /// positive Q.
    pub fn is_physical(&self) -> bool {
        self.rho > 0.0
            && self.vs > 0.0
            && self.vp > self.vs * std::f32::consts::SQRT_2
            && self.qs > 0.0
            && self.qp > 0.0
    }
}

/// The paper's empirical attenuation rule (V_s in m/s here).
pub fn qs_from_vs(vs_mps: f32) -> f32 {
    50.0 * (vs_mps / 1000.0)
}

/// Brocher (2005) regression: V_p from V_s, both km/s. Standard crustal
/// scaling used by SCEC velocity models.
pub fn brocher_vp_from_vs(vs_km: f64) -> f64 {
    0.9409 + 2.0947 * vs_km - 0.8206 * vs_km.powi(2) + 0.2683 * vs_km.powi(3)
        - 0.0251 * vs_km.powi(4)
}

/// Nafe–Drake regression: density (g/cm³) from V_p (km/s).
pub fn nafe_drake_rho_from_vp(vp_km: f64) -> f64 {
    1.6612 * vp_km - 0.4721 * vp_km.powi(2) + 0.0671 * vp_km.powi(3) - 0.0043 * vp_km.powi(4)
        + 0.000106 * vp_km.powi(5)
}

/// Full sample from V_s alone via the Brocher/Nafe–Drake chain (V_s in
/// m/s).
pub fn sample_from_vs(vs_mps: f64) -> MaterialSample {
    let vs_km = vs_mps / 1000.0;
    let vp_km = brocher_vp_from_vs(vs_km);
    let rho = nafe_drake_rho_from_vp(vp_km) * 1000.0; // g/cc → kg/m³
    MaterialSample::from_speeds((vp_km * 1000.0) as f32, vs_mps as f32, rho as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_rules_match_paper() {
        // Vs = 400 m/s → Qs = 20, Qp = 40.
        let s = MaterialSample::from_speeds(1600.0, 400.0, 1900.0);
        assert!((s.qs - 20.0).abs() < 1e-4);
        assert!((s.qp - 40.0).abs() < 1e-4);
    }

    #[test]
    fn brocher_rock_values_reasonable() {
        // Vs = 3.5 km/s → Vp ≈ 6.0–6.3 km/s for typical crust.
        let vp = brocher_vp_from_vs(3.5);
        assert!(vp > 5.7 && vp < 6.5, "vp {vp}");
    }

    #[test]
    fn nafe_drake_rock_density() {
        // Vp = 6 km/s → ρ ≈ 2.6–2.8 g/cc.
        let rho = nafe_drake_rho_from_vp(6.0);
        assert!(rho > 2.5 && rho < 2.9, "rho {rho}");
    }

    #[test]
    fn sediment_sample_is_physical() {
        let s = sample_from_vs(400.0);
        assert!(s.is_physical(), "{s:?}");
        assert!(s.vp > 1200.0 && s.vp < 2500.0, "vp {}", s.vp);
        assert!(s.rho > 1500.0 && s.rho < 2400.0, "rho {}", s.rho);
    }

    #[test]
    fn chain_monotone_in_vs() {
        let mut prev = sample_from_vs(300.0);
        for vs in [500.0, 1000.0, 2000.0, 3000.0, 4000.0] {
            let s = sample_from_vs(vs);
            assert!(s.vp > prev.vp);
            assert!(s.rho > prev.rho);
            assert!(s.qs > prev.qs);
            prev = s;
        }
    }

    #[test]
    fn unphysical_detected() {
        let bad = MaterialSample { vp: 500.0, vs: 400.0, rho: 2000.0, qs: 20.0, qp: 40.0 };
        assert!(!bad.is_physical(), "vp < √2 vs must be rejected");
        let bad2 = MaterialSample { vp: 1600.0, vs: 400.0, rho: -1.0, qs: 20.0, qp: 40.0 };
        assert!(!bad2.is_physical());
    }
}
