//! Earthquake source description for the AWP-ODC reproduction.
//!
//! The wave-propagation solver (AWM) "requires a kinematic source
//! description formulated as moment rate time histories at a finite number
//! of points (sub-faults)" (paper §III.D). This crate provides:
//!
//! * [`stf`] — source time functions (triangle, Brune, cosine);
//! * [`moment`] — moment tensors, strike rotation, and the
//!   moment–magnitude relation;
//! * [`kinematic`] — the dSrcG kinematic source generator: point sources,
//!   Haskell-style propagating ruptures with tapered slip (the TeraShake-K
//!   "Denali-style" parameterisation), and conversion from dynamic-rupture
//!   output;
//! * [`segments`] — the segmented fault-trace mapping used to insert a
//!   planar dynamic rupture "onto a 47-segment approximation of the
//!   southern SAF" (§VII.B);
//! * [`srcfile`] — the moment-rate file written by dSrcG;
//! * [`partition`] — PetaSrcP: spatial partitioning to owning ranks plus
//!   temporal partitioning ("we further decompose the spatially partitioned
//!   source files by time", §III.D — M8 used 36 temporal segments).

pub mod kinematic;
pub mod moment;
pub mod partition;
pub mod segments;
pub mod srcfile;
pub mod stf;

pub use kinematic::{KinematicSource, Subfault};
pub use moment::{moment_magnitude, MomentTensor};
pub use partition::{partition_spatial, TemporalPartition};
pub use segments::SegmentedTrace;
pub use stf::Stf;
