//! Offline dev shim for `rand_chacha`: a real ChaCha8 keystream behind the
//! shim `rand` traits (deterministic per seed; not guaranteed bit-compatible
//! with the registry crate). Never shipped.

use rand::{RngCore, SeedableRng};

#[derive(Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            0x61707865,
            0x3320646e,
            0x79622d32,
            0x6b206574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let init = s;
        for _ in 0..4 {
            // Column round + diagonal round = one double round; 4 double
            // rounds = ChaCha8.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = s[i].wrapping_add(init[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaCha8Rng { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}
