//! Workspace-level telemetry integration: an instrumented E2E workflow
//! run must produce cross-rank aggregates, per-rank comm/checkpoint
//! counters, and a Chrome trace-event JSON that parses back with one
//! track per rank carrying the solver phases.

use awp_odc::scenario::Scenario;
use awp_odc::telemetry::{Counter, Phase, Registry};
use awp_odc::workflow::{scratch_dir, E2EWorkflow};
use std::collections::{BTreeMap, BTreeSet};

#[test]
fn workflow_telemetry_end_to_end() {
    let sc = Scenario::shakeout_k(24, 0.3).with_duration(15.0);
    let run = sc.prepare();
    let dir = scratch_dir("wf-telemetry");
    let reg = Registry::new(4);
    let mut wf = E2EWorkflow::new(run, [2, 2, 1], &dir).with_telemetry(reg.clone());
    wf.session.checkpoint_every = Some(8);
    let rep = wf.execute().expect("workflow must complete");
    assert!(rep.archive_verified, "telemetry must not disturb the run itself");

    // Cross-rank aggregation.
    let telem = reg.report();
    assert_eq!(telem.ranks, 4);
    assert!(telem.load_imbalance >= 1.0, "max/mean is at least 1");
    assert!(
        (0.0..=1.0).contains(&telem.hidden_comm_fraction),
        "hidden-comm fraction is a fraction, got {}",
        telem.hidden_comm_fraction
    );
    for ph in [
        Phase::VelocityShell,
        Phase::StressShell,
        Phase::Send,
        Phase::Wait,
        Phase::Inject,
        Phase::Checkpoint,
    ] {
        assert!(
            telem.phases[ph.index()].count > 0,
            "phase {} must have recorded spans",
            ph.name()
        );
    }
    let printed = telem.to_string();
    assert!(printed.contains("load imbalance"), "report prints the imbalance ratio");
    assert!(printed.contains("hidden-comm"), "report prints the hidden-comm fraction");

    let snaps = reg.snapshots();
    assert_eq!(snaps.len(), 4);
    assert!(snaps.iter().all(|s| s.enabled));
    assert!(snaps.iter().map(|s| s.counter(Counter::MsgsSent)).sum::<u64>() > 0);
    assert!(snaps.iter().map(|s| s.counter(Counter::BytesSent)).sum::<u64>() > 0);
    assert!(snaps.iter().map(|s| s.counter(Counter::CheckpointBytes)).sum::<u64>() > 0);

    // The Chrome trace parses back: one virtual pid per rank, and each
    // rank's track carries the solver + checkpoint phases.
    let trace = reg.chrome_trace();
    let v: serde_json::Value = serde_json::from_str(&trace).expect("trace must be valid JSON");
    let events = v["traceEvents"].as_array().expect("traceEvents must be an array");
    assert!(!events.is_empty());
    let mut names_by_pid: BTreeMap<i64, BTreeSet<String>> = BTreeMap::new();
    for ev in events {
        let pid = ev["pid"].as_f64().expect("every event has a pid") as i64;
        let ph = ev["ph"].as_str().expect("every event has a ph");
        if ph == "X" {
            assert!(ev["ts"].as_f64().is_some(), "X events carry ts");
            assert!(ev["dur"].as_f64().map(|d| d >= 0.0).unwrap_or(false), "X events carry dur");
            let name = ev["name"].as_str().expect("X events carry the phase name");
            names_by_pid.entry(pid).or_default().insert(name.to_string());
        }
    }
    assert_eq!(
        names_by_pid.keys().copied().collect::<Vec<_>>(),
        vec![0, 1, 2, 3],
        "one track per rank"
    );
    for (pid, names) in &names_by_pid {
        for want in
            ["velocity_shell", "stress_shell", "send", "wait", "inject", "boundary", "checkpoint"]
        {
            assert!(names.contains(want), "rank {pid} track missing phase '{want}': {names:?}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
