//! Quantitative verification subsystem.
//!
//! Three independent evidence streams, one report:
//!
//! 1. **Analytic accuracy** ([`accuracy`]): solver seismograms for point
//!    sources in a homogeneous full space compared against the closed-form
//!    Aki & Richards (2002, eq. 4.29) solution ([`analytic`]), scored with
//!    time-shift-tolerant L2 and Hilbert-envelope misfits ([`misfit`]) and
//!    judged against hard thresholds.
//! 2. **Convergence order** ([`convergence`]): the same smooth scenario at
//!    h, h/2, h/4 (dt scaled with h, constant CFL fraction); the observed
//!    order is fitted from the error-vs-h series and asserted against the
//!    scheme's design order.
//! 3. **Schedule fuzzing** ([`fuzz`]): the deterministic
//!    `awp_vcluster::SchedulePlan` permutes message delivery and wait-all
//!    polling per seed; an 8-rank overlap run must stay bit-exact across
//!    every seed. The same module hosts the **steal sweep**: the
//!    work-stealing tile scheduler replayed across 1/2/4/8-rank
//!    decompositions under seeded steal-order permutations (composed with
//!    message-order perturbation, and with the multi-rate LTS basin
//!    workload under `--lts`), bit-exact against scheduler-off baselines.
//!
//! [`report::VerifyReport`] aggregates the three into `results/verify.json`
//! (schema-checked on write); the `awp verify` subcommand drives it.

pub mod accuracy;
pub mod analytic;
pub mod convergence;
pub mod fuzz;
pub mod misfit;
pub mod report;

pub use report::VerifyReport;

/// Top-level knobs for one `awp verify` invocation.
#[derive(Debug, Clone)]
pub struct VerifySpec {
    /// Smoke mode: smaller grids, fewer fuzz seeds — the CI budget.
    pub smoke: bool,
    /// Override the fuzz seed count (`None` → mode default).
    pub seeds: Option<u64>,
    /// Override the first fuzz seed (`None` → mode default). With
    /// `seeds: Some(1)` this replays exactly one reported schedule.
    pub base_seed: Option<u64>,
    /// Arm clustered local time stepping in the accuracy and convergence
    /// streams. The analytic scenarios use homogeneous media, so the plan
    /// collapses to one cluster and the run asserts LTS's delegation
    /// contract under the same misfit thresholds and convergence band as
    /// the fused path.
    pub lts: bool,
}

/// Run all three verification streams and aggregate the report.
pub fn run(spec: &VerifySpec) -> VerifyReport {
    let mut acc_spec =
        if spec.smoke { accuracy::AccuracySpec::smoke() } else { accuracy::AccuracySpec::full() };
    acc_spec.lts = spec.lts;
    let mut conv_spec = if spec.smoke {
        convergence::ConvergenceSpec::smoke()
    } else {
        convergence::ConvergenceSpec::full()
    };
    conv_spec.lts = spec.lts;
    let mut fuzz_spec = if spec.smoke { fuzz::FuzzSpec::smoke() } else { fuzz::FuzzSpec::full() };
    if let Some(n) = spec.seeds {
        fuzz_spec.seeds = n;
    }
    if let Some(s) = spec.base_seed {
        fuzz_spec.base_seed = s;
    }
    let steal_spec = {
        let base =
            if spec.smoke { fuzz::StealFuzzSpec::smoke() } else { fuzz::StealFuzzSpec::full() };
        if spec.lts { base.with_lts() } else { base }
    };
    let accuracy = accuracy::run_accuracy(&acc_spec);
    let convergence = convergence::run_convergence(&conv_spec);
    let fuzz = fuzz::run_fuzz(&fuzz_spec);
    let steal = fuzz::run_steal_fuzz(&steal_spec);
    VerifyReport::new(
        if spec.smoke { "smoke" } else { "full" },
        accuracy,
        convergence,
        fuzz,
        steal,
    )
}
