//! Deterministic, seed-driven fault injection (paper §III.F context).
//!
//! At petascale, MTBF makes component failure routine: the M8 run survived
//! 24 hours on 223,074 cores only because checkpoint/restart machinery was
//! in place. This module lets the virtual cluster *rehearse* those
//! failures: a [`FaultPlan`] injects rank crashes, rank stalls and
//! message-level faults (drop/delay/duplicate) at schedule points that are
//! a pure function of the seed — the same `--chaos-seed` always produces
//! the byte-identical fault schedule, regardless of thread interleaving.
//!
//! Design notes:
//! * Step faults (crash/stall) are one-shot: they fire on the first pass
//!   that reaches the step and are suppressed afterwards, so a restarted
//!   run can make progress past the original failure point.
//! * Message faults are decided by hashing `(seed, generation, src, dst,
//!   tag)` — no shared RNG stream exists, so scheduling nondeterminism
//!   cannot reorder the fault schedule. The `generation` counter is bumped
//!   by the restart logic so a retried pass is not re-broken identically.

use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The kinds of fault the plan can inject or the harness can detect.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum FaultKind {
    /// Fail-stop: the rank dies at a step (injected).
    Crash,
    /// The rank stops making progress for a while (injected).
    Stall { secs: f64 },
    /// A point-to-point message was silently dropped (injected).
    MsgDrop,
    /// A point-to-point message was delayed (injected).
    MsgDelay { micros: u64 },
    /// A point-to-point message was delivered twice (injected).
    MsgDuplicate,
    /// Watchdog verdict: no heartbeat within the timeout (detected).
    Hang,
    /// The rank body panicked — a genuine bug, not an injection (detected).
    Panic,
    /// The rank was torn down because a peer faulted first (detected).
    Aborted,
    /// A rendezvous partner vanished mid-handshake (detected).
    PeerVanished,
}

/// Structured outcome for one failed rank — the harness-level replacement
/// for `expect("rank panicked")`.
#[derive(Debug, Clone, Serialize)]
pub struct FaultReport {
    pub rank: usize,
    /// Solver step at which the fault fired, when known.
    pub step: Option<u64>,
    pub kind: FaultKind,
    pub detail: String,
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.step {
            Some(s) => write!(f, "rank {} {:?} at step {}: {}", self.rank, self.kind, s, self.detail),
            None => write!(f, "rank {} {:?}: {}", self.rank, self.kind, self.detail),
        }
    }
}

impl std::error::Error for FaultReport {}

/// Panic payload used to unwind a rank out of an injected fault; the
/// cluster catches it at the rank boundary and converts it to the report.
pub(crate) struct FaultUnwind(pub FaultReport);

/// Panic payload used to unwind a rank blocked on a poisoned (torn-down)
/// cluster.
pub(crate) struct AbortUnwind;

/// Panic payload used by the supervisor to interrupt a surviving rank
/// mid-pass for an in-flight recovery: the rank unwinds to its worker
/// loop, parks at the rollback gate, and re-runs its body from the last
/// validated checkpoint epoch. Unlike `AbortUnwind` this is recoverable —
/// the rank is not dead, it is being rewound.
pub(crate) struct RollbackUnwind;

/// One scheduled step fault.
#[derive(Debug)]
struct StepFault {
    rank: usize,
    step: u64,
    kind: FaultKind,
    fired: AtomicBool,
}

/// SplitMix64 — the plan's only entropy source.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless mixer for per-message decisions (also reused by the
/// supervisor's deterministic backoff jitter).
pub(crate) fn mix(seed: u64, generation: u64, src: u64, dst: u64, tag: u64) -> u64 {
    let mut s = seed ^ 0xA076_1D64_78BD_642F;
    for v in [generation, src, dst, tag] {
        s ^= v.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        s = s.rotate_left(23).wrapping_mul(0x8EBC_6AF0_9C88_C6E3);
    }
    let mut st = s;
    splitmix64(&mut st)
}

pub(crate) fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Message-level fault decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MsgFault {
    Drop,
    Delay { micros: u64 },
    Duplicate,
}

/// A deterministic, seeded fault schedule.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    step_faults: Vec<StepFault>,
    drop_prob: f64,
    delay_prob: f64,
    dup_prob: f64,
    max_delay_micros: u64,
    /// Bumped once per restart pass so retries see a fresh message-fault
    /// schedule (otherwise a deterministic drop would re-kill every retry).
    generation: AtomicU64,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Default::default() }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Schedule a fail-stop crash of `rank` at `step` (one-shot).
    pub fn with_crash(mut self, rank: usize, step: u64) -> Self {
        self.step_faults.push(StepFault { rank, step, kind: FaultKind::Crash, fired: AtomicBool::new(false) });
        self
    }

    /// Schedule a stall of `rank` at `step` for `secs` (one-shot).
    pub fn with_stall(mut self, rank: usize, step: u64, secs: f64) -> Self {
        self.step_faults.push(StepFault {
            rank,
            step,
            kind: FaultKind::Stall { secs },
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Enable probabilistic message faults (per-message, identity-hashed).
    pub fn with_msg_faults(mut self, drop: f64, delay: f64, dup: f64, max_delay_micros: u64) -> Self {
        assert!(drop + delay + dup <= 1.0, "fault probabilities exceed 1");
        self.drop_prob = drop;
        self.delay_prob = delay;
        self.dup_prob = dup;
        self.max_delay_micros = max_delay_micros;
        self
    }

    /// Generate a random schedule for a cluster of `ranks` × `steps`:
    /// one crash, one stall, and mild message perturbation, all derived
    /// from the seed.
    pub fn random(seed: u64, ranks: usize, steps: u64) -> Self {
        let mut s = seed;
        let crash_rank = (splitmix64(&mut s) as usize) % ranks;
        let crash_step = 1 + splitmix64(&mut s) % steps.max(1);
        let stall_rank = (splitmix64(&mut s) as usize) % ranks;
        let stall_step = 1 + splitmix64(&mut s) % steps.max(1);
        FaultPlan::new(seed)
            .with_crash(crash_rank, crash_step)
            .with_stall(stall_rank, stall_step, 0.05)
            .with_msg_faults(0.0, 0.02, 0.01, 500)
    }

    /// Advance the restart generation (call once per restart pass).
    pub fn next_generation(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Step-fault lookup for `rank` at `step`; one-shot (at most one
    /// caller ever sees a given entry).
    pub fn step_fault(&self, rank: usize, step: u64) -> Option<FaultKind> {
        for f in &self.step_faults {
            if f.rank == rank
                && f.step == step
                && f.fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return Some(f.kind.clone());
            }
        }
        None
    }

    /// Message-fault decision for one `(src, dst, tag)` identity. Pure in
    /// `(seed, generation, identity)` — no internal stream — so the fault
    /// schedule is immune to thread interleaving.
    pub fn msg_fault(&self, src: usize, dst: usize, tag: u64) -> Option<MsgFault> {
        if self.drop_prob + self.delay_prob + self.dup_prob == 0.0 {
            return None;
        }
        let h = mix(self.seed, self.generation(), src as u64, dst as u64, tag);
        let u = unit(h);
        if u < self.drop_prob {
            Some(MsgFault::Drop)
        } else if u < self.drop_prob + self.delay_prob {
            let micros = 1 + h.rotate_left(17) % self.max_delay_micros.max(1);
            Some(MsgFault::Delay { micros })
        } else if u < self.drop_prob + self.delay_prob + self.dup_prob {
            Some(MsgFault::Duplicate)
        } else {
            None
        }
    }

    /// Canonical rendering of the full schedule: step faults plus the
    /// probabilistic parameters. Two plans with the same seed and builder
    /// calls render byte-identically — the determinism regression anchor.
    pub fn schedule_digest(&self) -> String {
        let mut out = format!(
            "seed={} gen={} drop={} delay={} dup={} maxdelay={}",
            self.seed,
            self.generation(),
            self.drop_prob,
            self.delay_prob,
            self.dup_prob,
            self.max_delay_micros
        );
        let mut faults: Vec<String> = self
            .step_faults
            .iter()
            .map(|f| format!("\n  rank {} step {} {:?}", f.rank, f.step, f.kind))
            .collect();
        faults.sort();
        for f in faults {
            out.push_str(&f);
        }
        out
    }

    /// True when the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        !self.step_faults.is_empty()
            || self.drop_prob + self.delay_prob + self.dup_prob > 0.0
    }
}

/// Watchdog configuration: how long a rank may go without a heartbeat
/// before the cluster is declared hung and torn down.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    pub timeout: std::time::Duration,
    pub poll: std::time::Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            timeout: std::time::Duration::from_secs(30),
            poll: std::time::Duration::from_millis(50),
        }
    }
}

impl WatchdogConfig {
    pub fn with_timeout(timeout: std::time::Duration) -> Self {
        Self { timeout, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::random(42, 8, 1000);
        let b = FaultPlan::random(42, 8, 1000);
        assert_eq!(a.schedule_digest(), b.schedule_digest());
    }

    #[test]
    fn different_seed_different_schedule() {
        let a = FaultPlan::random(42, 8, 1000);
        let b = FaultPlan::random(43, 8, 1000);
        assert_ne!(a.schedule_digest(), b.schedule_digest());
    }

    #[test]
    fn msg_faults_are_identity_pure() {
        let plan = FaultPlan::new(7).with_msg_faults(0.2, 0.2, 0.2, 100);
        for src in 0..4 {
            for dst in 0..4 {
                for tag in 0..50 {
                    assert_eq!(plan.msg_fault(src, dst, tag), plan.msg_fault(src, dst, tag));
                }
            }
        }
    }

    #[test]
    fn msg_fault_rates_roughly_match() {
        let plan = FaultPlan::new(99).with_msg_faults(0.25, 0.0, 0.0, 0);
        let n = 10_000;
        let drops = (0..n).filter(|&t| plan.msg_fault(0, 1, t) == Some(MsgFault::Drop)).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "drop rate {rate} far from 0.25");
    }

    #[test]
    fn generation_changes_msg_schedule() {
        let plan = FaultPlan::new(7).with_msg_faults(0.3, 0.0, 0.0, 0);
        let before: Vec<_> = (0..200).map(|t| plan.msg_fault(0, 1, t)).collect();
        plan.next_generation();
        let after: Vec<_> = (0..200).map(|t| plan.msg_fault(0, 1, t)).collect();
        assert_ne!(before, after, "restart generation must reshuffle message faults");
    }

    #[test]
    fn step_faults_are_one_shot() {
        let plan = FaultPlan::new(1).with_crash(2, 10);
        assert_eq!(plan.step_fault(2, 10), Some(FaultKind::Crash));
        assert_eq!(plan.step_fault(2, 10), None, "second query must not re-fire");
        assert_eq!(plan.step_fault(1, 10), None);
        assert_eq!(plan.step_fault(2, 11), None);
    }

    #[test]
    fn inactive_plan_injects_nothing() {
        let plan = FaultPlan::new(5);
        assert!(!plan.is_active());
        assert_eq!(plan.msg_fault(0, 1, 42), None);
        assert_eq!(plan.step_fault(0, 0), None);
    }
}
