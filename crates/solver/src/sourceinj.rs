//! Kinematic moment-rate source insertion.
//!
//! Each subfault couples its moment-rate, distributed by its mechanism,
//! into the stress components of its grid cell via the stress-glut
//! convention: `σ_ij −= Δt · M_ij ṁ(t) / V` with `V = h³` the cell volume
//! (Graves 1996; the modelled stress is the elastic stress minus the
//! moment glut). Shear components land on the nearest staggered node.
//! The sign matters: with `+=` an explosion radiates an *implosion* —
//! the `awp-verify` accuracy suite pins the polarity against the analytic
//! full-space solution, which is how the original `+=` was caught.

use crate::state::WaveState;
use awp_grid::dims::Idx3;
use awp_source::kinematic::KinematicSource;

/// One precomputed injection entry.
#[derive(Debug, Clone)]
struct Entry {
    idx: Idx3,
    /// Mechanism scaled by 1/V (so `inject` just multiplies by Δt·ṁ).
    m: [f32; 6],
    t0: f64,
    rate: Vec<f32>,
}

/// Injects a (rank-local) kinematic source into the wavefield.
#[derive(Debug, Clone)]
pub struct SourceInjector {
    entries: Vec<Entry>,
    dt_src: f64,
}

impl SourceInjector {
    /// Build from a rank-local source. `h` is the grid spacing.
    pub fn new(src: &KinematicSource, h: f64) -> Self {
        let inv_v = 1.0 / (h * h * h);
        let entries = src
            .subfaults
            .iter()
            .map(|sf| Entry {
                idx: sf.idx,
                m: [
                    (sf.tensor.mxx * inv_v) as f32,
                    (sf.tensor.myy * inv_v) as f32,
                    (sf.tensor.mzz * inv_v) as f32,
                    (sf.tensor.mxy * inv_v) as f32,
                    (sf.tensor.mxz * inv_v) as f32,
                    (sf.tensor.myz * inv_v) as f32,
                ],
                t0: sf.t0,
                rate: sf.rate.clone(),
            })
            .collect();
        Self { entries, dt_src: src.dt }
    }

    /// An injector with no sources (ranks without subfaults).
    pub fn empty() -> Self {
        Self { entries: Vec::new(), dt_src: 1.0 }
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Moment release restricted to subfaults inside `win` (the
    /// shell/interior split injects each window's sources right after that
    /// window's stress update; windows partition the grid, so every entry
    /// fires exactly once per step).
    pub fn inject_win(&self, state: &mut WaveState, t: f64, dt: f64, win: crate::shell::Win) {
        for e in &self.entries {
            if !win.contains(e.idx) {
                continue;
            }
            let rate = sample_rate(&e.rate, t - e.t0, self.dt_src);
            if rate == 0.0 {
                continue;
            }
            let s = -(rate * dt) as f32;
            let (i, j, k) = (e.idx.i as isize, e.idx.j as isize, e.idx.k as isize);
            if e.m[0] != 0.0 {
                state.sxx.add(i, j, k, e.m[0] * s);
            }
            if e.m[1] != 0.0 {
                state.syy.add(i, j, k, e.m[1] * s);
            }
            if e.m[2] != 0.0 {
                state.szz.add(i, j, k, e.m[2] * s);
            }
            if e.m[3] != 0.0 {
                state.sxy.add(i, j, k, e.m[3] * s);
            }
            if e.m[4] != 0.0 {
                state.sxz.add(i, j, k, e.m[4] * s);
            }
            if e.m[5] != 0.0 {
                state.syz.add(i, j, k, e.m[5] * s);
            }
        }
    }

    /// Add this time step's moment release to the stress field. `t` is the
    /// current simulation time, `dt` the solver step.
    pub fn inject(&self, state: &mut WaveState, t: f64, dt: f64) {
        for e in &self.entries {
            let rate = sample_rate(&e.rate, t - e.t0, self.dt_src);
            if rate == 0.0 {
                continue;
            }
            let s = -(rate * dt) as f32;
            let (i, j, k) = (e.idx.i as isize, e.idx.j as isize, e.idx.k as isize);
            if e.m[0] != 0.0 {
                state.sxx.add(i, j, k, e.m[0] * s);
            }
            if e.m[1] != 0.0 {
                state.syy.add(i, j, k, e.m[1] * s);
            }
            if e.m[2] != 0.0 {
                state.szz.add(i, j, k, e.m[2] * s);
            }
            if e.m[3] != 0.0 {
                state.sxy.add(i, j, k, e.m[3] * s);
            }
            if e.m[4] != 0.0 {
                state.sxz.add(i, j, k, e.m[4] * s);
            }
            if e.m[5] != 0.0 {
                state.syz.add(i, j, k, e.m[5] * s);
            }
        }
    }
}

/// Linear interpolation of a local-time moment-rate history.
fn sample_rate(rate: &[f32], tl: f64, dt: f64) -> f64 {
    if tl < 0.0 || rate.is_empty() {
        return 0.0;
    }
    let s = tl / dt;
    let i = s.floor() as usize;
    if i + 1 >= rate.len() {
        return if i < rate.len() { rate[i] as f64 } else { 0.0 };
    }
    let f = s - i as f64;
    rate[i] as f64 * (1.0 - f) + rate[i + 1] as f64 * f
}

#[cfg(test)]
mod tests {
    use super::*;
    use awp_grid::dims::Dims3;
    use awp_source::moment::MomentTensor;
    use awp_source::stf::Stf;

    fn point_source(moment: f64, tensor: MomentTensor) -> KinematicSource {
        KinematicSource {
            dt: 0.01,
            subfaults: vec![awp_source::kinematic::Subfault {
                idx: Idx3::new(2, 2, 2),
                tensor,
                moment,
                t0: 0.0,
                rate: Stf::Triangle { rise_time: 0.2 }.sample(moment, 0.01, 25),
            }],
        }
    }

    #[test]
    fn explosion_adds_equal_normal_stress() {
        let src = point_source(1e15, MomentTensor::explosion());
        let inj = SourceInjector::new(&src, 100.0);
        let mut s = WaveState::new(Dims3::new(5, 5, 5), false);
        inj.inject(&mut s, 0.1, 1e-3);
        let xx = s.sxx.get(2, 2, 2);
        // Stress-glut sign: positive moment release *subtracts* stress.
        assert!(xx < 0.0);
        assert_eq!(xx, s.syy.get(2, 2, 2));
        assert_eq!(xx, s.szz.get(2, 2, 2));
        assert_eq!(s.sxy.get(2, 2, 2), 0.0);
    }

    #[test]
    fn strike_slip_adds_only_sxy() {
        let src = point_source(1e15, MomentTensor::strike_slip(0.0));
        let inj = SourceInjector::new(&src, 100.0);
        let mut s = WaveState::new(Dims3::new(5, 5, 5), false);
        inj.inject(&mut s, 0.1, 1e-3);
        assert!(s.sxy.get(2, 2, 2) < 0.0, "stress-glut sign");
        assert_eq!(s.sxx.get(2, 2, 2), 0.0);
        assert_eq!(s.szz.get(2, 2, 2), 0.0);
    }

    #[test]
    fn injection_respects_onset_time() {
        let mut src = point_source(1e15, MomentTensor::explosion());
        src.subfaults[0].t0 = 0.5;
        let inj = SourceInjector::new(&src, 100.0);
        let mut s = WaveState::new(Dims3::new(5, 5, 5), false);
        inj.inject(&mut s, 0.4, 1e-3);
        assert_eq!(s.sxx.get(2, 2, 2), 0.0, "before onset");
        inj.inject(&mut s, 0.6, 1e-3);
        assert!(s.sxx.get(2, 2, 2) != 0.0, "after onset");
    }

    #[test]
    fn total_injected_stress_scales_with_moment_over_volume() {
        // Integrate injections over the full STF: Σ Δσ = −M0/V (glut).
        let m0 = 2.0e15;
        let h = 100.0;
        let src = point_source(m0, MomentTensor::explosion());
        let inj = SourceInjector::new(&src, h);
        let mut s = WaveState::new(Dims3::new(5, 5, 5), false);
        let dt = 1e-3;
        for step in 0..400 {
            inj.inject(&mut s, step as f64 * dt, dt);
        }
        let want = (-m0 / (h * h * h)) as f32;
        let got = s.sxx.get(2, 2, 2);
        assert!((got / want - 1.0).abs() < 0.02, "got {got} want {want}");
    }

    #[test]
    fn empty_injector_is_noop() {
        let inj = SourceInjector::empty();
        assert!(inj.is_empty());
        assert_eq!(inj.len(), 0);
        let mut s = WaveState::new(Dims3::new(3, 3, 3), false);
        inj.inject(&mut s, 0.0, 1e-3);
        assert_eq!(s.sxx.max_abs(), 0.0);
    }
}
