//! Rupture-velocity fields and super-shear detection (paper Fig. 19c,
//! Fig. 22).
//!
//! Given the rupture-time field t(i, k) on the fault plane, the local
//! rupture speed is `v_r = h / |∇t|`. The paper normalises by the local
//! shear-wave speed: "yellow areas are dominated by sub-Rayleigh rupture
//! velocities, while red and blue patches indicate areas where the rupture
//! propagates at super-shear speed."

use serde::{Deserialize, Serialize};

/// Rupture-time field on a fault plane (along-strike × down-dip,
/// x-fastest). Cells that never ruptured hold `f64::INFINITY`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuptureTimeField {
    pub nx: usize,
    pub nz: usize,
    pub h: f64,
    pub t: Vec<f64>,
}

impl RuptureTimeField {
    pub fn new(nx: usize, nz: usize, h: f64, t: Vec<f64>) -> Self {
        assert_eq!(t.len(), nx * nz);
        Self { nx, nz, h, t }
    }

    #[inline]
    pub fn at(&self, i: usize, k: usize) -> f64 {
        self.t[i + self.nx * k]
    }

    /// Local rupture speed (m/s) by central differences of rupture time;
    /// `None` for unruptured or edge-degenerate cells.
    pub fn speed(&self, i: usize, k: usize) -> Option<f64> {
        if !self.at(i, k).is_finite() {
            return None;
        }
        let dx = if i == 0 || i + 1 >= self.nx {
            return None;
        } else {
            (self.at(i + 1, k) - self.at(i - 1, k)) / (2.0 * self.h)
        };
        let dz = if k == 0 || k + 1 >= self.nz {
            0.0
        } else {
            (self.at(i, k + 1) - self.at(i, k - 1)) / (2.0 * self.h)
        };
        if !dx.is_finite() || !dz.is_finite() {
            return None;
        }
        let grad = (dx * dx + dz * dz).sqrt();
        if grad <= 1e-12 {
            None
        } else {
            Some(1.0 / grad)
        }
    }

    /// Rupture speed normalised by the local shear speed `vs(i, k)`
    /// (the Fig. 19c colouring).
    pub fn normalized_speed(&self, i: usize, k: usize, vs: f64) -> Option<f64> {
        self.speed(i, k).map(|v| v / vs)
    }

    /// Fraction of ruptured cells propagating super-shear (`v_r > vs`).
    pub fn supershear_fraction(&self, vs: impl Fn(usize, usize) -> f64) -> f64 {
        let mut ss = 0usize;
        let mut total = 0usize;
        for k in 0..self.nz {
            for i in 0..self.nx {
                if let Some(v) = self.speed(i, k) {
                    total += 1;
                    if v > vs(i, k) {
                        ss += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            ss as f64 / total as f64
        }
    }

    /// Along-strike intervals (cell ranges) whose depth-averaged rupture
    /// speed exceeds the local shear speed — the paper's "large ~100 km
    /// patch of super-shear rupture velocity".
    pub fn supershear_patches(&self, vs: impl Fn(usize, usize) -> f64) -> Vec<(usize, usize)> {
        let mut flags: Vec<bool> = Vec::with_capacity(self.nx);
        for i in 0..self.nx {
            let mut ss = 0usize;
            let mut n = 0usize;
            for k in 0..self.nz {
                if let Some(v) = self.speed(i, k) {
                    n += 1;
                    if v > vs(i, k) {
                        ss += 1;
                    }
                }
            }
            flags.push(n > 0 && ss * 2 > n);
        }
        let mut patches = Vec::new();
        let mut start = None;
        for (i, &f) in flags.iter().enumerate() {
            match (f, start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    patches.push((s, i));
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            patches.push((s, self.nx));
        }
        patches
    }

    /// Time of complete rupture (max finite time).
    pub fn final_time(&self) -> f64 {
        self.t.iter().copied().filter(|t| t.is_finite()).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A rupture expanding at constant speed v from (i0, k0).
    fn circular(nx: usize, nz: usize, h: f64, v: f64, i0: usize, k0: usize) -> RuptureTimeField {
        let t = (0..nx * nz)
            .map(|p| {
                let (i, k) = (p % nx, p / nx);
                let dx = (i as f64 - i0 as f64) * h;
                let dz = (k as f64 - k0 as f64) * h;
                (dx * dx + dz * dz).sqrt() / v
            })
            .collect();
        RuptureTimeField::new(nx, nz, h, t)
    }

    #[test]
    fn constant_speed_recovered() {
        let f = circular(40, 20, 100.0, 2800.0, 20, 10);
        // Away from the hypocentre singularity the estimated speed is v.
        let v = f.speed(35, 10).unwrap();
        assert!((v - 2800.0).abs() / 2800.0 < 0.02, "v = {v}");
        let v2 = f.speed(20, 17).unwrap();
        assert!((v2 - 2800.0).abs() / 2800.0 < 0.05, "v = {v2}");
    }

    #[test]
    fn supershear_classification() {
        let f = circular(40, 20, 100.0, 4000.0, 20, 10);
        // vs = 3464 → everything supershear.
        let frac = f.supershear_fraction(|_, _| 3464.0);
        assert!(frac > 0.9, "frac {frac}");
        // vs = 5000 → only the hypocentre-neighbour cells (where central
        // differences underestimate |∇t|) may misclassify.
        assert!(f.supershear_fraction(|_, _| 5000.0) < 0.15);
    }

    #[test]
    fn patches_detected_in_mixed_field() {
        // Left half slow, right half fast.
        let (nx, nz, h) = (40, 8, 100.0);
        let mut t = vec![0.0; nx * nz];
        let mut acc: f64 = 0.0;
        let mut col_time = vec![0.0f64; nx];
        for (i, ct) in col_time.iter_mut().enumerate().skip(1) {
            let v = if i < 20 { 2500.0 } else { 5000.0 };
            acc += h / v;
            *ct = acc;
        }
        for k in 0..nz {
            for i in 0..nx {
                t[i + nx * k] = col_time[i];
            }
        }
        let f = RuptureTimeField::new(nx, nz, h, t);
        let patches = f.supershear_patches(|_, _| 3464.0);
        assert_eq!(patches.len(), 1, "{patches:?}");
        let (s, e) = patches[0];
        assert!((19..=22).contains(&s), "patch start {s}");
        assert!(e >= nx - 1, "patch extends to the end: {e}");
    }

    #[test]
    fn unruptured_cells_ignored() {
        let mut f = circular(20, 10, 100.0, 3000.0, 10, 5);
        for k in 0..10 {
            f.t[19 + 20 * k] = f64::INFINITY;
        }
        assert!(f.speed(19, 5).is_none());
        assert!(f.final_time().is_finite());
    }
}
