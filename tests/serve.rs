//! `awp serve` protocol pins: hello-first version negotiation, schema-
//! checked query/response round trips over a real socket, cache-hit
//! accounting on repeated queries, and error responses that keep the
//! connection alive.

use awp_ensemble::engine::EnsembleEngine;
use awp_ensemble::serve::{
    hello_json, validate_hello, ServeClient, ServeServer, SERVE_PROTO_VERSION,
};
use awp_odc::stats::StatsAddr;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn tmp_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("awp-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn hello_negotiation_rejects_foreign_and_future_servers() {
    validate_hello(&hello_json()).expect("own hello validates");
    let foreign = r#"{"v":1,"kind":"hello","proto":"awp-stats"}"#;
    assert!(validate_hello(foreign).unwrap_err().contains("proto"));
    let future = r#"{"v":999,"kind":"hello","proto":"awp-serve"}"#;
    assert!(validate_hello(future).unwrap_err().contains("version"));
    let not_hello = r#"{"v":1,"kind":"snapshot","proto":"awp-serve"}"#;
    assert!(validate_hello(not_hello).unwrap_err().contains("hello"));
    assert!(validate_hello("garbage").unwrap_err().contains("JSON"));
}

#[test]
fn server_round_trips_schema_checked_queries_and_counts_cache_hits() {
    let root = tmp_root("roundtrip");
    let engine = EnsembleEngine::open(&root, [2, 1, 1]).unwrap();
    let server =
        ServeServer::serve(&StatsAddr::parse("127.0.0.1:0"), Arc::clone(&engine)).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();

    // stats: schema check on the trivially cheap request first.
    let stats = client.request(&serde_json::json!({"kind": "stats"})).unwrap();
    assert_eq!(stats["kind"].as_str(), Some("stats"));
    assert_eq!(stats["v"].as_f64(), Some(SERVE_PROTO_VERSION as f64));
    assert_eq!(stats["stats"]["cache_hits"].as_f64(), Some(0.0));

    // A malformed request gets an error response and the connection lives.
    let err = client.request(&serde_json::json!({"kind": "florp"})).unwrap_err();
    assert!(err.to_string().contains("unknown request kind"), "got: {err}");

    // query: first compute, then a cache hit with identical identity.
    let spec = serde_json::json!({"family": "shakeout-k", "nx": 16, "duration_s": 20.0});
    let q1 = client
        .request(&serde_json::json!({"kind": "query", "spec": spec, "site": "Los Angeles"}))
        .unwrap();
    assert_eq!(q1["kind"].as_str(), Some("result"));
    assert_eq!(q1["cached"].as_bool(), Some(false));
    assert_eq!(q1["hash"].as_str().map(str::len), Some(32), "MD5 content address");
    assert!(q1["pgvh"].as_f64().unwrap() >= 0.0);
    assert!(q1["pgv_max"].as_f64().unwrap() >= q1["pgvh"].as_f64().unwrap());

    let q2 = client
        .request(&serde_json::json!({"kind": "query", "spec": spec, "site": "Los Angeles"}))
        .unwrap();
    assert_eq!(q2["cached"].as_bool(), Some(true), "repeat query must hit the cache");
    assert_eq!(q1["hash"], q2["hash"]);
    assert_eq!(q1["pgvh"], q2["pgvh"], "cached answer must be the stored answer");
    assert_eq!(engine.stats.cache_hits.load(Ordering::Relaxed), 1);

    // hazard: the stored scenario shows up in the site's curve.
    let hz = client
        .request(&serde_json::json!({"kind": "hazard", "site": "Los Angeles"}))
        .unwrap();
    let curve = hz["curve"].as_array().unwrap();
    assert_eq!(curve.len(), 1);
    assert_eq!(curve[0]["hash"], q1["hash"]);
    assert_eq!(curve[0]["pgvh"], q1["pgvh"]);

    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn serve_works_over_unix_domain_sockets_and_unlinks() {
    let root = tmp_root("uds");
    let sock = std::env::temp_dir().join(format!("awp-serve-{}.sock", std::process::id()));
    let engine = EnsembleEngine::open(&root, [2, 1, 1]).unwrap();
    let addr = StatsAddr::Unix(sock.clone());
    let server = ServeServer::serve(&addr, engine).unwrap();
    let mut client = ServeClient::connect(&addr).unwrap();
    let stats = client.request(&serde_json::json!({"kind": "stats"})).unwrap();
    assert_eq!(stats["kind"].as_str(), Some("stats"));
    drop(client);
    server.stop();
    assert!(!sock.exists(), "socket file unlinked on shutdown");
    let _ = std::fs::remove_dir_all(&root);
}
