//! Per-rank span recorder.
//!
//! One `Recorder` lives on each rank's `RankCtx` (thread-local by
//! construction: ranks are threads and the recorder is never shared).
//! Every probe branches on `enabled` first; when telemetry is off the
//! recorder holds zero-capacity buffers and a probe is a predictable
//! not-taken branch with **no clock read and no allocation** (enforced by
//! `tests/zero_alloc.rs`). When on, spans go into a preallocated ring
//! buffer (fixed-size records, phase enums not strings) so steady-state
//! recording never touches the allocator either.

use crate::causal::{CausalEvent, CausalKind};
use crate::flightrec::{EnvDir, EnvelopeRec, FlightRecorder, SpanTailRec};
use crate::hist::Log2Hist;
use crate::live::LiveRank;
use crate::phase::{Counter, HistKind, Phase};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Cluster tag value meaning "not inside any dt-cluster's phase".
pub const NO_CLUSTER: u8 = u8::MAX;

/// One recorded span. `step` lets the trace viewer correlate spans with
/// timestep numbers; `cluster` tags spans emitted inside a local-time-
/// stepping dt-cluster's phase ([`NO_CLUSTER`] otherwise).
#[derive(Debug, Clone, Copy)]
pub struct SpanRec {
    pub phase: Phase,
    /// Start offset from the registry epoch, ns.
    pub start_ns: u64,
    pub dur_ns: u64,
    pub step: u32,
    pub cluster: u8,
}

/// Per-dt-cluster accounting from a local-time-stepping run: how often the
/// cluster fired and how much compute time its substeps took. Set once at
/// the end of a rank's run via [`Recorder::set_lts_stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LtsClusterStat {
    pub cluster: u8,
    /// Substep cadence: the cluster fires every `rate` base ticks.
    pub rate: u32,
    /// Number of z-planes the cluster owns.
    pub planes: u32,
    /// Substeps actually executed (velocity+stress pairs).
    pub fires: u64,
    /// Wall time spent inside this cluster's compute phases, ns.
    pub ns: u64,
}

/// Per-phase running totals — always exact even when the span ring wraps.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTotal {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

/// Drained/cloned state of one rank's recorder. This is what crosses the
/// rank boundary: `RankResult` carries one and the `Registry` aggregates
/// them into a `TelemetryReport`.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub rank: usize,
    pub enabled: bool,
    /// Spans in chronological order (oldest first). If the ring wrapped,
    /// only the newest `capacity` spans survive and `dropped_spans` counts
    /// the evicted ones; phase totals stay exact regardless.
    pub spans: Vec<SpanRec>,
    pub dropped_spans: u64,
    pub totals: [PhaseTotal; Phase::COUNT],
    pub counters: [u64; Counter::COUNT],
    pub hists: [Log2Hist; HistKind::COUNT],
    /// Per-dt-cluster substep accounting (empty unless the run used local
    /// time stepping and called [`Recorder::set_lts_stats`]).
    pub lts: Vec<LtsClusterStat>,
    /// Causal events (message lineage, steal/cluster/rollback/health
    /// marks) in chronological order; ring-bounded like `spans`.
    pub causal: Vec<CausalEvent>,
    pub dropped_causal: u64,
}

impl Snapshot {
    #[inline]
    pub fn phase_ns(&self, p: Phase) -> u64 {
        self.totals[p.index()].total_ns
    }

    #[inline]
    pub fn phase_count(&self, p: Phase) -> u64 {
        self.totals[p.index()].count
    }

    #[inline]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    #[inline]
    pub fn hist(&self, k: HistKind) -> &Log2Hist {
        &self.hists[k.index()]
    }

    /// Total compute time (the four stencil passes), for load-imbalance.
    pub fn compute_ns(&self) -> u64 {
        Phase::COMPUTE.iter().map(|p| self.phase_ns(*p)).sum()
    }

    /// Total communication time (send + wait + inject).
    pub fn comm_ns(&self) -> u64 {
        Phase::COMM.iter().map(|p| self.phase_ns(*p)).sum()
    }
}

#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    rank: usize,
    epoch: Instant,
    cur_step: u32,
    cur_cluster: u8,
    /// Per-cluster LTS accounting, set once at end of run (empty ⇒ no LTS).
    lts: Vec<LtsClusterStat>,
    /// Ring storage, preallocated to capacity at registration.
    spans: Vec<SpanRec>,
    /// Next overwrite position once the ring is full.
    next: usize,
    dropped: u64,
    totals: [PhaseTotal; Phase::COUNT],
    counters: [u64; Counter::COUNT],
    hists: [Log2Hist; HistKind::COUNT],
    /// Optional liveness pulse: bumped on every probe (even with recording
    /// disabled) so a watchdog can distinguish a rank that is slow but
    /// emitting phase spans from one that is wedged. `None` (the default)
    /// keeps every probe's overhead at a single not-taken branch.
    pulse: Option<Arc<AtomicU64>>,
    /// Optional live-stats cells (streaming stats endpoint). Finished spans
    /// fold into coarse per-rank buckets; `None` (the default) keeps the
    /// extra cost at one not-taken branch per span — zero allocation.
    live: Option<Arc<LiveRank>>,
    /// Lamport logical clock: ticked on every causal event, merged on
    /// receive. Maintained unconditionally (plain integer math) so message
    /// envelopes are stamped even when recording is disarmed — the flight
    /// recorder and any armed peer's trace still see coherent lineage.
    clock: u64,
    /// Causal-event ring, preallocated like `spans`.
    causal: Vec<CausalEvent>,
    causal_next: usize,
    dropped_causal: u64,
    /// Optional always-on flight recorder (black box). Armed by the
    /// supervised-run path independently of `enabled`; `None` (the
    /// default) keeps disarmed probes allocation- and clock-read-free.
    flight: Option<Arc<Mutex<FlightRecorder>>>,
}

impl Recorder {
    /// Recorder for a registered rank; `capacity` spans are preallocated
    /// here, off the hot path.
    pub(crate) fn enabled(rank: usize, epoch: Instant, capacity: usize) -> Self {
        Recorder {
            enabled: true,
            rank,
            epoch,
            cur_step: 0,
            cur_cluster: NO_CLUSTER,
            lts: Vec::new(),
            spans: Vec::with_capacity(capacity),
            next: 0,
            dropped: 0,
            totals: [PhaseTotal::default(); Phase::COUNT],
            counters: [0; Counter::COUNT],
            hists: [Log2Hist::new(); HistKind::COUNT],
            pulse: None,
            live: None,
            clock: 0,
            // Sends + receives outnumber spans per step; double the ring.
            causal: Vec::with_capacity(capacity.saturating_mul(2)),
            causal_next: 0,
            dropped_causal: 0,
            flight: None,
        }
    }

    /// The default, telemetry-off recorder: every probe is a not-taken
    /// branch; nothing is allocated (zero-capacity `Vec` holds no heap).
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            rank: 0,
            epoch: Instant::now(),
            cur_step: 0,
            cur_cluster: NO_CLUSTER,
            lts: Vec::new(),
            spans: Vec::new(),
            next: 0,
            dropped: 0,
            totals: [PhaseTotal::default(); Phase::COUNT],
            counters: [0; Counter::COUNT],
            hists: [Log2Hist::new(); HistKind::COUNT],
            pulse: None,
            live: None,
            clock: 0,
            causal: Vec::new(),
            causal_next: 0,
            dropped_causal: 0,
            flight: None,
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Attach a liveness pulse cell. Every subsequent probe — span start,
    /// span record, counter bump, histogram observation — increments the
    /// cell, whether or not recording is enabled, so a watchdog polling it
    /// sees activity from ranks that are busy inside long phase windows.
    pub fn set_pulse(&mut self, cell: Arc<AtomicU64>) {
        self.pulse = Some(cell);
    }

    /// Attach this rank's live-stats cells (streaming stats endpoint).
    /// Finished spans then also fold into the coarse live buckets — like
    /// the pulse, this works whether or not span recording is enabled, so
    /// `awp run --stats-addr` without `--profile` still streams steps and
    /// steal counters.
    pub fn set_live(&mut self, cells: Arc<LiveRank>) {
        self.live = Some(cells);
    }

    /// Arm the always-on flight recorder (black box). Subsequent message
    /// envelopes and finished spans are mirrored into its rings whether or
    /// not span recording is enabled, so a supervised run without
    /// `--profile` still leaves a dump-worthy tail on crash.
    pub fn set_flight(&mut self, rec: Arc<Mutex<FlightRecorder>>) {
        self.flight = Some(rec);
    }

    /// Current Lamport clock (diagnostics/tests).
    #[inline]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Tick the Lamport clock for a send and return the envelope stamp.
    /// Always maintained — integer math only, no allocation, no clock
    /// read — so envelopes stay coherently stamped when tracing is off.
    #[inline]
    pub fn clock_send(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Merge a received envelope stamp: `clock = max(clock, peer) + 1`.
    /// Returns the merged local clock.
    #[inline]
    pub fn clock_recv(&mut self, peer_clock: u64) -> u64 {
        self.clock = self.clock.max(peer_clock) + 1;
        self.clock
    }

    #[inline]
    fn beat_pulse(&self) {
        if let Some(p) = &self.pulse {
            p.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Tag subsequent spans with the current timestep. The step gauge is
    /// kept even when recording is disabled (plain store) so flight-
    /// recorder envelopes carry the right step.
    #[inline]
    pub fn set_step(&mut self, step: u64) {
        if let Some(l) = &self.live {
            l.step.store(step, Ordering::Relaxed);
        }
        self.cur_step = step.min(u32::MAX as u64) as u32;
    }

    /// Tag subsequent spans with a dt-cluster id (local time stepping);
    /// pass [`NO_CLUSTER`] when leaving a cluster's phase.
    #[inline]
    pub fn set_cluster(&mut self, cluster: u8) {
        if self.enabled {
            self.cur_cluster = cluster;
        }
    }

    /// Install the per-cluster substep accounting for this rank's run.
    /// Guarded on `enabled` so the telemetry-off recorder stays
    /// allocation-free (the zero-alloc invariant).
    pub fn set_lts_stats(&mut self, stats: Vec<LtsClusterStat>) {
        if self.enabled {
            self.lts = stats;
        }
    }

    /// Begin timing a span. Returns `None` (no clock read) when neither
    /// span recording, live streaming, nor the flight recorder wants the
    /// interval.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.beat_pulse();
        if self.enabled || self.live.is_some() || self.flight.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// End a span begun with [`start`](Self::start).
    #[inline]
    pub fn finish(&mut self, t0: Option<Instant>, phase: Phase) {
        if let Some(t0) = t0 {
            self.span_at(phase, t0, t0.elapsed());
        }
    }

    /// Record a span with an explicit start and duration (used when one
    /// measured interval feeds both the vcluster `TimeLedger` and
    /// telemetry, or when a wait interval is split into wait + inject).
    #[inline]
    pub fn span_at(&mut self, phase: Phase, t0: Instant, dur: Duration) {
        self.beat_pulse();
        // The live fold happens regardless of `enabled`: a monitoring-only
        // run streams phase timers without paying for span recording.
        if let Some(l) = &self.live {
            l.add_phase(phase, dur.as_nanos() as u64);
        }
        // Likewise the flight-recorder tail: the black box stays current
        // on supervised runs even without `--profile`.
        if let Some(f) = &self.flight {
            if let Ok(mut fr) = f.lock() {
                fr.record_span(SpanTailRec {
                    phase,
                    step: self.cur_step,
                    start_ns: t0.saturating_duration_since(self.epoch).as_nanos() as u64,
                    dur_ns: dur.as_nanos() as u64,
                });
            }
        }
        if !self.enabled {
            return;
        }
        let rec = SpanRec {
            phase,
            start_ns: t0.saturating_duration_since(self.epoch).as_nanos() as u64,
            dur_ns: dur.as_nanos() as u64,
            step: self.cur_step,
            cluster: self.cur_cluster,
        };
        let t = &mut self.totals[phase.index()];
        t.count += 1;
        t.total_ns += rec.dur_ns;
        t.max_ns = t.max_ns.max(rec.dur_ns);
        if self.spans.len() < self.spans.capacity() {
            self.spans.push(rec);
        } else if self.spans.capacity() > 0 {
            // Ring is full: overwrite the oldest record in place.
            self.spans[self.next] = rec;
            self.next = (self.next + 1) % self.spans.capacity();
            self.dropped += 1;
        } else {
            // Capacity 0 (counters-only recorder): totals stay exact.
            self.dropped += 1;
        }
    }

    /// Time a closure as one span.
    #[inline]
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let t0 = self.start();
        let out = f();
        self.finish(t0, phase);
        out
    }

    /// Bump a monotonic counter.
    #[inline]
    pub fn count(&mut self, c: Counter, n: u64) {
        self.beat_pulse();
        // Recovery accounting also feeds the live stream (the stats
        // endpoint publishes recoveries/dead_letters per rank).
        if let Some(l) = &self.live {
            match c {
                Counter::Recoveries => {
                    l.recoveries.fetch_add(n, Ordering::Relaxed);
                }
                Counter::DeadLetters => {
                    l.dead_letters.fetch_add(n, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        if self.enabled {
            self.counters[c.index()] += n;
        }
    }

    /// Push one causal record into the preallocated ring (enabled only).
    #[inline]
    fn push_causal(&mut self, ev: CausalEvent) {
        if self.causal.len() < self.causal.capacity() {
            self.causal.push(ev);
        } else if self.causal.capacity() > 0 {
            self.causal[self.causal_next] = ev;
            self.causal_next = (self.causal_next + 1) % self.causal.capacity();
            self.dropped_causal += 1;
        } else {
            self.dropped_causal += 1;
        }
    }

    /// Record a message-send causal event. `clock` is the stamp returned
    /// by [`clock_send`](Self::clock_send) and carried on the envelope.
    /// Free when disarmed: one pulse bump and a not-taken branch.
    #[inline]
    pub fn causal_send(&mut self, peer: u32, tag: u64, bytes: u64, clock: u64) {
        self.beat_pulse();
        if !self.enabled && self.flight.is_none() {
            return;
        }
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        if let Some(f) = &self.flight {
            if let Ok(mut fr) = f.lock() {
                fr.record_env(EnvelopeRec {
                    dir: EnvDir::Send,
                    peer,
                    tag,
                    bytes,
                    clock,
                    step: self.cur_step,
                    t_ns,
                });
            }
        }
        if self.enabled {
            self.push_causal(CausalEvent {
                kind: CausalKind::Send,
                clock,
                peer,
                peer_clock: 0,
                tag,
                bytes,
                step: self.cur_step,
                t_ns,
            });
        }
    }

    /// Record a message-receive causal event. `peer_clock` is the stamp
    /// from the envelope, `clock` the merged local clock returned by
    /// [`clock_recv`](Self::clock_recv).
    #[inline]
    pub fn causal_recv(&mut self, peer: u32, tag: u64, bytes: u64, peer_clock: u64, clock: u64) {
        self.beat_pulse();
        if !self.enabled && self.flight.is_none() {
            return;
        }
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        if let Some(f) = &self.flight {
            if let Ok(mut fr) = f.lock() {
                fr.record_env(EnvelopeRec {
                    dir: EnvDir::Recv,
                    peer,
                    tag,
                    bytes,
                    clock,
                    step: self.cur_step,
                    t_ns,
                });
            }
        }
        if self.enabled {
            self.push_causal(CausalEvent {
                kind: CausalKind::Recv,
                clock,
                peer,
                peer_clock,
                tag,
                bytes,
                step: self.cur_step,
                t_ns,
            });
        }
    }

    /// Record a local causal mark (steal aggregate, LTS cluster tick,
    /// recovery rollback, health probe). Ticks the Lamport clock.
    #[inline]
    pub fn causal_mark(&mut self, kind: CausalKind, peer: u32, tag: u64, bytes: u64) {
        self.beat_pulse();
        self.clock += 1;
        if !self.enabled {
            return;
        }
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        let (clock, step) = (self.clock, self.cur_step);
        self.push_causal(CausalEvent { kind, clock, peer, peer_clock: 0, tag, bytes, step, t_ns });
    }

    /// Record one latency observation in a log2 histogram.
    #[inline]
    pub fn observe(&mut self, kind: HistKind, dur: Duration) {
        self.beat_pulse();
        if self.enabled {
            self.hists[kind.index()].record_ns(dur.as_nanos() as u64);
        }
    }

    /// Record a raw (non-duration) value in a log2 histogram — e.g. the
    /// dispatch-queue depth at a tile-batch submit ([`HistKind::QueueDepth`]).
    #[inline]
    pub fn observe_count(&mut self, kind: HistKind, value: u64) {
        self.beat_pulse();
        if self.enabled {
            self.hists[kind.index()].record_ns(value);
        }
    }

    /// Clone the current state into a `Snapshot` with spans rotated into
    /// chronological order. Non-destructive: the recorder keeps recording.
    pub fn snapshot(&self) -> Snapshot {
        let mut spans = Vec::with_capacity(self.spans.len());
        if self.dropped > 0 && self.spans.len() == self.spans.capacity() {
            // Wrapped ring: oldest record sits at `next`.
            spans.extend_from_slice(&self.spans[self.next..]);
            spans.extend_from_slice(&self.spans[..self.next]);
        } else {
            spans.extend_from_slice(&self.spans);
        }
        let mut causal = Vec::with_capacity(self.causal.len());
        if self.dropped_causal > 0 && self.causal.len() == self.causal.capacity() {
            causal.extend_from_slice(&self.causal[self.causal_next..]);
            causal.extend_from_slice(&self.causal[..self.causal_next]);
        } else {
            causal.extend_from_slice(&self.causal);
        }
        Snapshot {
            rank: self.rank,
            enabled: self.enabled,
            spans,
            dropped_spans: self.dropped,
            totals: self.totals,
            counters: self.counters,
            hists: self.hists,
            lts: self.lts.clone(),
            causal,
            dropped_causal: self.dropped_causal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraparound_keeps_newest_and_exact_totals() {
        let epoch = Instant::now();
        let mut r = Recorder::enabled(3, epoch, 4);
        for i in 0..10u64 {
            r.set_step(i);
            r.span_at(Phase::Send, epoch, Duration::from_nanos(100 + i));
        }
        let s = r.snapshot();
        assert_eq!(s.rank, 3);
        assert_eq!(s.spans.len(), 4, "ring holds exactly capacity");
        assert_eq!(s.dropped_spans, 6);
        // Newest 4 spans survive, in chronological order.
        let steps: Vec<u32> = s.spans.iter().map(|x| x.step).collect();
        assert_eq!(steps, vec![6, 7, 8, 9]);
        // Totals are exact despite the drops.
        assert_eq!(s.phase_count(Phase::Send), 10);
        assert_eq!(s.phase_ns(Phase::Send), (0..10).map(|i| 100 + i).sum::<u64>());
        assert_eq!(s.totals[Phase::Send.index()].max_ns, 109);
    }

    #[test]
    fn partial_ring_is_chronological() {
        let epoch = Instant::now();
        let mut r = Recorder::enabled(0, epoch, 8);
        r.span_at(Phase::Wait, epoch, Duration::from_nanos(5));
        r.set_step(1);
        r.span_at(Phase::Inject, epoch, Duration::from_nanos(7));
        let s = r.snapshot();
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.dropped_spans, 0);
        assert_eq!(s.spans[0].phase, Phase::Wait);
        assert_eq!(s.spans[1].phase, Phase::Inject);
        assert_eq!(s.spans[1].step, 1);
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let mut r = Recorder::disabled();
        assert!(!r.is_enabled());
        assert!(r.start().is_none());
        r.set_step(9);
        let t0 = r.start();
        r.finish(t0, Phase::Send);
        r.count(Counter::BytesSent, 1 << 20);
        r.observe(HistKind::Barrier, Duration::from_millis(1));
        let v = r.time(Phase::Wait, || 42);
        assert_eq!(v, 42);
        let s = r.snapshot();
        assert!(!s.enabled);
        assert!(s.spans.is_empty());
        assert_eq!(s.counter(Counter::BytesSent), 0);
        assert_eq!(s.phase_count(Phase::Wait), 0);
        assert_eq!(s.hist(HistKind::Barrier).count(), 0);
    }

    #[test]
    fn counters_and_hists_accumulate() {
        let mut r = Recorder::enabled(1, Instant::now(), 16);
        r.count(Counter::MsgsSent, 2);
        r.count(Counter::MsgsSent, 3);
        r.observe(HistKind::Send, Duration::from_nanos(100));
        r.observe(HistKind::Send, Duration::from_nanos(200));
        let s = r.snapshot();
        assert_eq!(s.counter(Counter::MsgsSent), 5);
        assert_eq!(s.hist(HistKind::Send).count(), 2);
        assert_eq!(s.hist(HistKind::Send).sum_ns(), 300);
    }
}
