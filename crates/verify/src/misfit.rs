//! Waveform misfit measures for the accuracy suite.
//!
//! Two complementary scores per trace pair:
//!
//! - **Shift-tolerant L2** ([`shifted_l2`]): the normalised L2 residual
//!   minimised over a sub-sample time shift. The leapfrog scheme carries a
//!   small constant phase offset (the injector's and recorder's half-step
//!   conventions cancel only nominally); the search absorbs it and
//!   *reports* it, so the suite can both score waveform fit and assert the
//!   residual offset stays sub-dt.
//! - **Envelope misfit** ([`envelope_misfit`]): L2 distance between
//!   Hilbert envelopes — phase-blind, so it isolates amplitude/dispersion
//!   errors from pure arrival-time error and catches polarity-style
//!   pathologies the shifted L2 could trade away.

use awp_signal::fft::{fft, ifft, next_pow2, Complex};

/// Plain L2 norm `√Σx²` (no `dt` factor — every use is a ratio).
pub fn l2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Result of the shift search.
#[derive(Debug, Clone, Copy)]
pub struct ShiftScore {
    /// Minimised `‖sim − ref(t+shift)‖ / denom`.
    pub misfit: f64,
    /// The minimising shift (seconds; positive = reference delayed).
    pub shift: f64,
}

/// Reference trace value at time `t` by linear interpolation (zero outside
/// the sampled window — traces are causal and windowed to quiescence).
fn interp(r: &[f64], dt: f64, t: f64) -> f64 {
    if t < 0.0 || r.is_empty() {
        return 0.0;
    }
    let s = t / dt;
    let i = s.floor() as usize;
    if i + 1 >= r.len() {
        return if i < r.len() { r[i] } else { 0.0 };
    }
    let f = s - i as f64;
    r[i] * (1.0 - f) + r[i + 1] * f
}

/// Normalised L2 misfit minimised over time shifts in
/// `[-max_shift, +max_shift]` (grid search at dt/16 resolution).
pub fn shifted_l2(sim: &[f64], refr: &[f64], dt: f64, max_shift: f64, denom: f64) -> ShiftScore {
    assert_eq!(sim.len(), refr.len(), "trace lengths must match");
    assert!(denom > 0.0, "normalisation must be positive");
    let step = dt / 16.0;
    let n = (max_shift / step).ceil() as i64;
    let mut best = ShiftScore { misfit: f64::INFINITY, shift: 0.0 };
    for k in -n..=n {
        let tau = k as f64 * step;
        let mut ss = 0.0;
        for (s, x) in sim.iter().enumerate() {
            let d = x - interp(refr, dt, s as f64 * dt + tau);
            ss += d * d;
        }
        let m = ss.sqrt() / denom;
        if m < best.misfit {
            best = ShiftScore { misfit: m, shift: tau };
        }
    }
    best
}

/// Hilbert-transform magnitude envelope via FFT: zero the negative
/// frequencies, double the positive ones, inverse-transform, take `|·|`.
/// The trace is zero-padded to twice the next power of two to push the
/// circular-convolution wraparound out of the window.
pub fn hilbert_envelope(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let n = x.len();
    let m = next_pow2(2 * n);
    let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
    buf.resize(m, Complex::new(0.0, 0.0));
    fft(&mut buf);
    for (k, c) in buf.iter_mut().enumerate() {
        if k == 0 || (m % 2 == 0 && k == m / 2) {
            // DC and Nyquist stay as-is.
        } else if k < m / 2 {
            *c = c.scale(2.0);
        } else {
            *c = Complex::new(0.0, 0.0);
        }
    }
    ifft(&mut buf);
    buf[..n].iter().map(|c| (c.re * c.re + c.im * c.im).sqrt()).collect()
}

/// Normalised L2 distance between the Hilbert envelopes of two traces.
pub fn envelope_misfit(sim: &[f64], refr: &[f64], denom: f64) -> f64 {
    assert_eq!(sim.len(), refr.len(), "trace lengths must match");
    assert!(denom > 0.0, "normalisation must be positive");
    let es = hilbert_envelope(sim);
    let er = hilbert_envelope(refr);
    es.iter().zip(&er).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt() / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse(n: usize, dt: f64, t0: f64, f: f64) -> Vec<f64> {
        // Gaussian-windowed sine: a clean transient for shift/envelope tests.
        (0..n)
            .map(|s| {
                let t = s as f64 * dt - t0;
                (-t * t / 0.02).exp() * (2.0 * std::f64::consts::PI * f * t).sin()
            })
            .collect()
    }

    #[test]
    fn identical_traces_score_zero() {
        let x = pulse(256, 0.01, 1.2, 2.0);
        let d = l2(&x);
        let s = shifted_l2(&x, &x, 0.01, 0.02, d);
        // Interpolation at nominal sample times carries an ulp of jitter,
        // so "zero" means ≪ any physical misfit, not bitwise 0.
        assert!(s.misfit < 1e-12, "misfit {}", s.misfit);
        assert!(s.shift.abs() <= 0.01 / 16.0 + 1e-12, "shift {}", s.shift);
        assert!(envelope_misfit(&x, &x, d) < 1e-12);
    }

    #[test]
    fn shift_search_recovers_known_offset() {
        let dt = 0.01;
        let r = pulse(512, dt, 2.0, 1.5);
        let delayed = pulse(512, dt, 2.0 + 0.004, 1.5); // sim delayed 0.4 dt
        // Convention: sim(t) ≈ ref(t + shift), so a *delayed* sim is
        // aligned by a *negative* shift.
        let s = shifted_l2(&delayed, &r, dt, 2.0 * dt, l2(&r));
        assert!((s.shift + 0.004).abs() <= dt / 16.0 + 1e-12, "shift {}", s.shift);
        assert!(s.misfit < 0.02, "residual after alignment: {}", s.misfit);
        // Without the search the same pair scores an order of magnitude worse.
        let raw = shifted_l2(&delayed, &r, dt, 0.0, l2(&r));
        assert!(raw.misfit > 5.0 * s.misfit);
    }

    #[test]
    fn envelope_is_phase_blind_but_amplitude_aware() {
        let dt = 0.01;
        let r = pulse(512, dt, 2.0, 2.0);
        let flipped: Vec<f64> = r.iter().map(|v| -v).collect();
        let d = l2(&r);
        // Polarity flip: maximal L2 misfit, near-zero envelope misfit.
        assert!(shifted_l2(&flipped, &r, dt, 2.0 * dt, d).misfit > 1.0);
        assert!(envelope_misfit(&flipped, &r, d) < 1e-9);
        // A 30% amplitude error shows up in the envelope at ~30% when
        // normalised by the reference *envelope* energy.
        let d_env = l2(&hilbert_envelope(&r));
        let scaled: Vec<f64> = r.iter().map(|v| 1.3 * v).collect();
        let e = envelope_misfit(&scaled, &r, d_env);
        assert!((e - 0.3).abs() < 0.02, "envelope misfit {e}");
    }

    #[test]
    fn envelope_bounds_the_carrier() {
        let n = 512;
        let x: Vec<f64> =
            (0..n).map(|s| (2.0 * std::f64::consts::PI * 8.0 * s as f64 / n as f64).sin()).collect();
        let env = hilbert_envelope(&x);
        // Away from the edges the envelope of a pure sine is ~1.
        for s in n / 8..7 * n / 8 {
            assert!(env[s] >= x[s].abs() - 1e-6, "envelope under carrier at {s}");
            assert!((env[s] - 1.0).abs() < 0.06, "env[{s}] = {}", env[s]);
        }
        assert!(hilbert_envelope(&[]).is_empty());
    }

    #[test]
    fn interp_handles_edges() {
        let r = [1.0, 3.0, 5.0];
        assert_eq!(interp(&r, 0.5, -0.1), 0.0);
        assert_eq!(interp(&r, 0.5, 0.25), 2.0);
        assert_eq!(interp(&r, 0.5, 1.0), 5.0);
        assert_eq!(interp(&r, 0.5, 1.7), 0.0);
    }
}
