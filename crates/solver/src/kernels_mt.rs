//! Hybrid (multithreaded) kernels — the paper's MPI/OpenMP hybrid mode
//! (§IV.D): "multiple OpenMP threads, spawned from a single MPI process,
//! directly access shared memory space within a node".
//!
//! Rayon stands in for OpenMP. Each pass parallelises over z-planes of the
//! *written* array while reading the other fields through shared slices —
//! every cell computes exactly the expression of the single-threaded
//! optimized kernels, so results are bit-identical (tests pin this). Like
//! the paper found, the hybrid path trades intra-rank imbalance for thread
//! overhead: it is exposed as an option (`SolverOpts::hybrid`), not a
//! default.

use crate::attenuation::Attenuation;
use crate::kernels::layout;
use crate::medium::Medium;
use crate::shell::Win;
use crate::state::WaveState;
use awp_grid::{C1, C2};
use rayon::prelude::*;
use std::sync::{Arc, Mutex, OnceLock};

/// Run `f` on a dedicated pool of `threads` workers (0 = rayon's global
/// pool). Pools are built once per distinct size and cached, so hybrid
/// runs pinned to an explicit thread count (`SolverOpts::threads`, for
/// deterministic CI on small machines) pay the spawn cost only once.
fn with_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    if threads == 0 {
        return f();
    }
    type PoolCache = Mutex<Vec<(usize, Arc<rayon::ThreadPool>)>>;
    static POOLS: OnceLock<PoolCache> = OnceLock::new();
    let pool = {
        let mut pools = POOLS.get_or_init(Default::default).lock().unwrap();
        match pools.iter().find(|(n, _)| *n == threads) {
            Some((_, p)) => Arc::clone(p),
            None => {
                let p = Arc::new(
                    rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .expect("hybrid thread pool"),
                );
                pools.push((threads, Arc::clone(&p)));
                p
            }
        }
    };
    pool.install(f)
}

/// Multithreaded velocity update (optimized path only: precomputed
/// reciprocal media required). `threads` pins the worker count (0 = global
/// pool).
pub fn update_velocity_mt(state: &mut WaveState, med: &Medium, dth: f32, threads: usize) {
    let win = Win::full(state.dims);
    update_velocity_mt_win(state, med, dth, win, threads);
}

/// Windowed multithreaded velocity update (shell/interior split): planes
/// outside `win.k0..win.k1` are skipped, rows clipped to the window. Same
/// per-cell expression as the fused pass, hence bit-identical on the
/// window.
pub fn update_velocity_mt_win(
    state: &mut WaveState,
    med: &Medium,
    dth: f32,
    win: Win,
    threads: usize,
) {
    if win.is_empty() {
        return;
    }
    with_pool(threads, || velocity_mt_body(state, med, dth, win));
}

fn velocity_mt_body(state: &mut WaveState, med: &Medium, dth: f32, win: Win) {
    let (sy, sz, _) = layout(state);
    let rx = med.rhox_inv.as_ref().expect("precompute() not called").as_slice();
    let ry = med.rhoy_inv.as_ref().expect("precompute() not called").as_slice();
    let rz = med.rhoz_inv.as_ref().expect("precompute() not called").as_slice();
    let WaveState { vx, vy, vz, sxx, syy, szz, sxy, sxz, syz, .. } = state;
    let (sxx, syy, szz) = (sxx.as_slice(), syy.as_slice(), szz.as_slice());
    let (sxy, sxz_s, syz_s) = (sxy.as_slice(), sxz.as_slice(), syz.as_slice());

    // vx pass.
    vx.as_mut_slice().par_chunks_mut(sz).enumerate().for_each(|(kp, plane)| {
        if kp < 2 + win.k0 || kp >= 2 + win.k1 {
            return;
        }
        let zoff = kp * sz;
        for j in win.j0..win.j1 {
            let row = 2 + sy * (j + 2);
            for i in win.i0..win.i1 {
                let ol = row + i;
                let o = zoff + ol;
                plane[ol] += dth
                    * rx[o]
                    * (C1 * (sxx[o + 1] - sxx[o])
                        + C2 * (sxx[o + 2] - sxx[o - 1])
                        + C1 * (sxy[o] - sxy[o - sy])
                        + C2 * (sxy[o + sy] - sxy[o - 2 * sy])
                        + C1 * (sxz_s[o] - sxz_s[o - sz])
                        + C2 * (sxz_s[o + sz] - sxz_s[o - 2 * sz]));
            }
        }
    });
    // vy pass.
    vy.as_mut_slice().par_chunks_mut(sz).enumerate().for_each(|(kp, plane)| {
        if kp < 2 + win.k0 || kp >= 2 + win.k1 {
            return;
        }
        let zoff = kp * sz;
        for j in win.j0..win.j1 {
            let row = 2 + sy * (j + 2);
            for i in win.i0..win.i1 {
                let ol = row + i;
                let o = zoff + ol;
                plane[ol] += dth
                    * ry[o]
                    * (C1 * (sxy[o] - sxy[o - 1])
                        + C2 * (sxy[o + 1] - sxy[o - 2])
                        + C1 * (syy[o + sy] - syy[o])
                        + C2 * (syy[o + 2 * sy] - syy[o - sy])
                        + C1 * (syz_s[o] - syz_s[o - sz])
                        + C2 * (syz_s[o + sz] - syz_s[o - 2 * sz]));
            }
        }
    });
    // vz pass.
    vz.as_mut_slice().par_chunks_mut(sz).enumerate().for_each(|(kp, plane)| {
        if kp < 2 + win.k0 || kp >= 2 + win.k1 {
            return;
        }
        let zoff = kp * sz;
        for j in win.j0..win.j1 {
            let row = 2 + sy * (j + 2);
            for i in win.i0..win.i1 {
                let ol = row + i;
                let o = zoff + ol;
                plane[ol] += dth
                    * rz[o]
                    * (C1 * (sxz_s[o] - sxz_s[o - 1])
                        + C2 * (sxz_s[o + 1] - sxz_s[o - 2])
                        + C1 * (syz_s[o] - syz_s[o - sy])
                        + C2 * (syz_s[o + sy] - syz_s[o - 2 * sy])
                        + C1 * (szz[o + sz] - szz[o])
                        + C2 * (szz[o + 2 * sz] - szz[o - sz]));
            }
        }
    });
}

/// Multithreaded stress update (optimized path; optional attenuation).
/// `threads` pins the worker count (0 = global pool).
pub fn update_stress_mt(
    state: &mut WaveState,
    med: &Medium,
    atten: Option<&Attenuation>,
    dth: f32,
    dt: f32,
    threads: usize,
) {
    let win = Win::full(state.dims);
    update_stress_mt_win(state, med, atten, dth, dt, win, threads);
}

/// Windowed multithreaded stress update — see [`update_velocity_mt_win`].
pub fn update_stress_mt_win(
    state: &mut WaveState,
    med: &Medium,
    atten: Option<&Attenuation>,
    dth: f32,
    dt: f32,
    win: Win,
    threads: usize,
) {
    if win.is_empty() {
        return;
    }
    with_pool(threads, || stress_mt_body(state, med, atten, dth, dt, win));
}

fn stress_mt_body(
    state: &mut WaveState,
    med: &Medium,
    atten: Option<&Attenuation>,
    dth: f32,
    dt: f32,
    win: Win,
) {
    let (sy, sz, _) = layout(state);
    let lam = med.lam.as_slice();
    let mu = med.mu.as_slice();
    let mxy = med.mu_xy.as_ref().expect("precompute() not called").as_slice();
    let mxz = med.mu_xz.as_ref().expect("precompute() not called").as_slice();
    let myz = med.mu_yz.as_ref().expect("precompute() not called").as_slice();
    let WaveState { vx, vy, vz, sxx, syy, szz, sxy, sxz, syz, mem, .. } = state;
    let (vx, vy, vz) = (vx.as_slice(), vy.as_slice(), vz.as_slice());
    let at = atten.map(|a| (a.decay.as_slice(), a.cs.as_slice(), a.cp.as_slice()));

    #[inline(always)]
    fn anelastic(delta: f32, zeta: &mut f32, a: f32, c: f32, dt: f32) -> f32 {
        let z = a * *zeta + (1.0 - a) * c * (delta / dt);
        *zeta = z;
        delta - dt * z
    }

    // A plane-parallel pass over one written array (+ its memory array).
    macro_rules! pass {
        ($field:expr, $memfield:expr, $csel:ident, $expr:expr) => {{
            let mem_slice: Option<&mut [f32]> = $memfield;
            match (mem_slice, &at) {
                (Some(zarr), Some((a, cs, cp))) => {
                    let _ = cs;
                    let _ = cp;
                    $field
                        .as_mut_slice()
                        .par_chunks_mut(sz)
                        .zip(zarr.par_chunks_mut(sz))
                        .enumerate()
                        .for_each(|(kp, (plane, zplane))| {
                            if kp < 2 + win.k0 || kp >= 2 + win.k1 {
                                return;
                            }
                            let zoff = kp * sz;
                            for j in win.j0..win.j1 {
                                let row = 2 + sy * (j + 2);
                                for i in win.i0..win.i1 {
                                    let ol = row + i;
                                    let o = zoff + ol;
                                    let delta: f32 = $expr(o);
                                    let c = $csel(o);
                                    plane[ol] += anelastic(delta, &mut zplane[ol], a[o], c, dt);
                                }
                            }
                        });
                }
                _ => {
                    $field.as_mut_slice().par_chunks_mut(sz).enumerate().for_each(
                        |(kp, plane)| {
                            if kp < 2 + win.k0 || kp >= 2 + win.k1 {
                                return;
                            }
                            let zoff = kp * sz;
                            for j in win.j0..win.j1 {
                                let row = 2 + sy * (j + 2);
                                for i in win.i0..win.i1 {
                                    let ol = row + i;
                                    let o = zoff + ol;
                                    plane[ol] += $expr(o);
                                }
                            }
                        },
                    );
                }
            }
        }};
    }

    let exx = |o: usize| C1 * (vx[o] - vx[o - 1]) + C2 * (vx[o + 1] - vx[o - 2]);
    let eyy = |o: usize| C1 * (vy[o] - vy[o - sy]) + C2 * (vy[o + sy] - vy[o - 2 * sy]);
    let ezz = |o: usize| C1 * (vz[o] - vz[o - sz]) + C2 * (vz[o + sz] - vz[o - 2 * sz]);
    let cp_sel = |o: usize| at.map(|(_, _, cp)| cp[o]).unwrap_or(0.0);
    let cs_sel = |o: usize| at.map(|(_, cs, _)| cs[o]).unwrap_or(0.0);

    let mem_parts = mem.as_mut().map(|m| {
        (
            m.xx.as_mut_slice() as *mut [f32],
            m.yy.as_mut_slice() as *mut [f32],
            m.zz.as_mut_slice() as *mut [f32],
            m.xy.as_mut_slice() as *mut [f32],
            m.xz.as_mut_slice() as *mut [f32],
            m.yz.as_mut_slice() as *mut [f32],
        )
    });
    // Safety: each raw pointer is used exactly once, in its own pass, and
    // never aliases the written stress array.
    let (zxx, zyy, zzz, zxy, zxz, zyz) = match mem_parts {
        Some((a, b, c, d2, e, f)) => unsafe {
            (
                Some(&mut *a),
                Some(&mut *b),
                Some(&mut *c),
                Some(&mut *d2),
                Some(&mut *e),
                Some(&mut *f),
            )
        },
        None => (None, None, None, None, None, None),
    };

    pass!(sxx, zxx, cp_sel, |o: usize| {
        let tr = exx(o) + eyy(o) + ezz(o);
        dth * (lam[o] * tr + 2.0 * mu[o] * exx(o))
    });
    pass!(syy, zyy, cp_sel, |o: usize| {
        let tr = exx(o) + eyy(o) + ezz(o);
        dth * (lam[o] * tr + 2.0 * mu[o] * eyy(o))
    });
    pass!(szz, zzz, cp_sel, |o: usize| {
        let tr = exx(o) + eyy(o) + ezz(o);
        dth * (lam[o] * tr + 2.0 * mu[o] * ezz(o))
    });
    pass!(sxy, zxy, cs_sel, |o: usize| {
        dth * mxy[o]
            * (C1 * (vx[o + sy] - vx[o])
                + C2 * (vx[o + 2 * sy] - vx[o - sy])
                + C1 * (vy[o + 1] - vy[o])
                + C2 * (vy[o + 2] - vy[o - 1]))
    });
    pass!(sxz, zxz, cs_sel, |o: usize| {
        dth * mxz[o]
            * (C1 * (vx[o + sz] - vx[o])
                + C2 * (vx[o + 2 * sz] - vx[o - sz])
                + C1 * (vz[o + 1] - vz[o])
                + C2 * (vz[o + 2] - vz[o - 1]))
    });
    pass!(syz, zyz, cs_sel, |o: usize| {
        dth * myz[o]
            * (C1 * (vy[o + sz] - vy[o])
                + C2 * (vy[o + 2 * sz] - vy[o - sz])
                + C1 * (vz[o + sy] - vz[o])
                + C2 * (vz[o + 2 * sy] - vz[o - sy]))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{update_stress, update_velocity};
    use awp_cvm::mesh::MeshGenerator;
    use awp_cvm::model::LayeredModel;
    use awp_grid::blocking::BlockSpec;
    use awp_grid::dims::{Dims3, Idx3};
    use awp_grid::stagger::Component;

    fn setup(d: Dims3) -> (Medium, WaveState) {
        let m = LayeredModel::loh1();
        let mesh = MeshGenerator::new(&m, d, 150.0).generate();
        let mut med = Medium::from_mesh(&mesh);
        med.precompute();
        let mut st = WaveState::new(d, false);
        let mut x = 12345u64;
        for c in Component::ALL {
            let f = st.field_mut(c);
            for v in f.as_mut_slice() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *v = ((x % 2000) as f32 / 1000.0 - 1.0) * 1e4;
            }
        }
        (med, st)
    }

    #[test]
    fn mt_velocity_matches_st_bitwise() {
        let d = Dims3::new(17, 13, 11);
        let (med, st) = setup(d);
        let mut a = st.clone();
        let mut b = st;
        update_velocity(&mut a, &med, 0.01, BlockSpec::JAGUAR, true);
        update_velocity_mt(&mut b, &med, 0.01, 0);
        assert_eq!(a.vx, b.vx);
        assert_eq!(a.vy, b.vy);
        assert_eq!(a.vz, b.vz);
    }

    #[test]
    fn mt_stress_matches_st_bitwise_elastic() {
        let d = Dims3::new(14, 12, 10);
        let (med, st) = setup(d);
        let mut a = st.clone();
        let mut b = st;
        update_stress(&mut a, &med, None, 0.01, 1e-3, BlockSpec::JAGUAR, true);
        update_stress_mt(&mut b, &med, None, 0.01, 1e-3, 2);
        for c in Component::STRESSES {
            assert_eq!(a.field(c), b.field(c), "{c:?}");
        }
    }

    #[test]
    fn mt_stress_matches_st_bitwise_anelastic() {
        let d = Dims3::new(12, 10, 9);
        let (med, st) = setup(d);
        let at = Attenuation::new(&med, 1e-3, 0.1, 3.0, Idx3::new(0, 0, 0));
        let mut a = st.clone();
        a.mem = Some(crate::state::MemoryVars::new(d));
        let mut b = a.clone();
        // Two steps so memory-variable state feeds back.
        for _ in 0..2 {
            update_stress(&mut a, &med, Some(&at), 0.01, 1e-3, BlockSpec::JAGUAR, true);
            update_stress_mt(&mut b, &med, Some(&at), 0.01, 1e-3, 2);
        }
        for c in Component::STRESSES {
            assert_eq!(a.field(c), b.field(c), "{c:?}");
        }
        let (ma, mb) = (a.mem.unwrap(), b.mem.unwrap());
        assert_eq!(ma.xy, mb.xy);
        assert_eq!(ma.zz, mb.zz);
    }

    #[test]
    fn mt_full_step_sequence_stable() {
        let d = Dims3::new(16, 16, 16);
        let (med, _) = setup(d);
        let mut st = WaveState::new(d, false);
        st.sxx.set(8, 8, 8, 1e6);
        // dth = dt/h with dt = 0.0075 s, h = 150 m — inside the CFL bound.
        for _ in 0..20 {
            update_velocity_mt(&mut st, &med, 5e-5, 2);
            update_stress_mt(&mut st, &med, None, 5e-5, 0.0075, 2);
        }
        assert!(!st.has_nan());
        assert!(st.max_velocity() > 0.0);
    }

    #[test]
    fn mt_windowed_union_matches_fused_and_pool_is_pinned() {
        use crate::shell::ShellPlan;
        let d = Dims3::new(13, 11, 9);
        let (med, st) = setup(d);
        let at = Attenuation::new(&med, 1e-3, 0.1, 3.0, Idx3::new(0, 0, 0));
        let mut fused = st.clone();
        fused.mem = Some(crate::state::MemoryVars::new(d));
        let mut split = fused.clone();
        let plan = ShellPlan::from_widths(d, [2, 0, 2, 2, 0, 2], false);
        update_velocity_mt(&mut fused, &med, 0.01, 2);
        update_stress_mt(&mut fused, &med, Some(&at), 0.01, 1e-3, 2);
        for w in plan.shells.iter().chain(std::iter::once(&plan.interior)) {
            update_velocity_mt_win(&mut split, &med, 0.01, *w, 2);
        }
        for w in plan.shells.iter().chain(std::iter::once(&plan.interior)) {
            update_stress_mt_win(&mut split, &med, Some(&at), 0.01, 1e-3, *w, 2);
        }
        for c in Component::ALL {
            assert_eq!(fused.field(c), split.field(c), "{c:?}");
        }
        let (mf, ms) = (fused.mem.unwrap(), split.mem.unwrap());
        assert_eq!(mf.xx, ms.xx);
        assert_eq!(mf.yz, ms.yz);
        // A pinned pool really runs with the requested width.
        let seen = with_pool(3, rayon::current_num_threads);
        assert_eq!(seen, 3);
    }
}
