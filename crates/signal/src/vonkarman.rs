//! Von Kármán autocorrelated random fields (2-D spectral synthesis).
//!
//! The M8 initial shear stress was "a random stress field using a Van Karman
//! autocorrelation function with lateral and vertical correlation lengths of
//! 50 km and 10 km" (paper §VII.A). We synthesise such fields by shaping
//! white Gaussian noise with the von Kármán power spectrum
//! `P(k) ∝ (1 + (k_x a_x)² + (k_z a_z)²)^{-(H+1)}` (2-D form, Hurst
//! exponent `H`), then normalising to zero mean and unit variance.

use crate::fft::{fft2, next_pow2, Complex};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a 2-D von Kármán random field.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VonKarman2D {
    /// Grid extent along x (e.g. along-strike).
    pub nx: usize,
    /// Grid extent along z (e.g. down-dip).
    pub nz: usize,
    /// Grid spacing (same units as the correlation lengths).
    pub dx: f64,
    /// Correlation length along x.
    pub ax: f64,
    /// Correlation length along z.
    pub az: f64,
    /// Hurst exponent (0 < H ≤ 1); M8 used smooth large-scale structure,
    /// H ≈ 0.75 is a common choice for stress heterogeneity.
    pub hurst: f64,
}

impl VonKarman2D {
    /// Synthesize the field for a given RNG seed. Returns `nx*nz` values in
    /// row-major (x fastest) order, normalised to zero mean, unit variance.
    pub fn generate(&self, seed: u64) -> Vec<f64> {
        assert!(self.nx > 0 && self.nz > 0);
        assert!(self.dx > 0.0 && self.ax > 0.0 && self.az > 0.0);
        assert!(self.hurst > 0.0 && self.hurst <= 1.0, "Hurst exponent in (0,1]");
        let px = next_pow2(self.nx.max(2));
        let pz = next_pow2(self.nz.max(2));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        // White Gaussian noise (Box–Muller from uniform pairs).
        let mut data: Vec<Complex> = (0..px * pz)
            .map(|_| {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                Complex::new(g, 0.0)
            })
            .collect();

        fft2(&mut data, px, pz, false);

        // Shape by sqrt of the von Kármán spectrum.
        let exp = -(self.hurst + 1.0) / 2.0;
        for kz in 0..pz {
            // Signed wavenumbers (cycles → rad via 2π/L).
            let fz = if kz <= pz / 2 { kz as f64 } else { kz as f64 - pz as f64 };
            let wz = 2.0 * std::f64::consts::PI * fz / (pz as f64 * self.dx);
            for kx in 0..px {
                let fx = if kx <= px / 2 { kx as f64 } else { kx as f64 - px as f64 };
                let wx = 2.0 * std::f64::consts::PI * fx / (px as f64 * self.dx);
                let kr2 = (wx * self.ax).powi(2) + (wz * self.az).powi(2);
                let shape = (1.0 + kr2).powf(exp);
                data[kx + px * kz] = data[kx + px * kz].scale(shape);
            }
        }

        fft2(&mut data, px, pz, true);

        // Crop to requested size and normalise (real part; imaginary part is
        // numerically ~0 because the input was real and the filter is
        // Hermitian-symmetric in magnitude, but we discard it regardless).
        let mut out = Vec::with_capacity(self.nx * self.nz);
        for z in 0..self.nz {
            for x in 0..self.nx {
                out.push(data[x + px * z].re);
            }
        }
        normalize(&mut out);
        out
    }
}

/// In-place zero-mean, unit-variance normalisation (no-op on constant
/// fields).
fn normalize(v: &mut [f64]) {
    let n = v.len() as f64;
    if v.is_empty() {
        return;
    }
    let mean = v.iter().sum::<f64>() / n;
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd == 0.0 {
        for x in v.iter_mut() {
            *x = 0.0;
        }
        return;
    }
    for x in v.iter_mut() {
        *x = (*x - mean) / sd;
    }
}

/// Empirical autocorrelation of a row-major field at integer lag along one
/// axis (`axis` 0 = x, 1 = z). Used by tests and diagnostics.
pub fn autocorrelation(field: &[f64], nx: usize, nz: usize, axis: usize, lag: usize) -> f64 {
    assert_eq!(field.len(), nx * nz);
    let mut num = 0.0;
    let mut cnt = 0usize;
    for z in 0..nz {
        for x in 0..nx {
            let (x2, z2) = if axis == 0 { (x + lag, z) } else { (x, z + lag) };
            if x2 < nx && z2 < nz {
                num += field[x + nx * z] * field[x2 + nx * z2];
                cnt += 1;
            }
        }
    }
    let var = field.iter().map(|v| v * v).sum::<f64>() / field.len() as f64;
    if cnt == 0 || var == 0.0 {
        0.0
    } else {
        (num / cnt as f64) / var
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m8_like() -> VonKarman2D {
        // 545 km × 16 km fault at 1 km spacing, ax = 50 km, az = 10 km.
        VonKarman2D { nx: 256, nz: 16, dx: 1000.0, ax: 50_000.0, az: 10_000.0, hurst: 0.75 }
    }

    #[test]
    fn normalized_to_zero_mean_unit_variance() {
        let f = m8_like().generate(42);
        let n = f.len() as f64;
        let mean = f.iter().sum::<f64>() / n;
        let var = f.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let vk = m8_like();
        assert_eq!(vk.generate(7), vk.generate(7));
        assert_ne!(vk.generate(7), vk.generate(8));
    }

    #[test]
    fn correlated_at_short_lags() {
        let vk = m8_like();
        let f = vk.generate(3);
        // One grid cell = 1 km ≪ ax = 50 km → strong correlation.
        let r1 = autocorrelation(&f, vk.nx, vk.nz, 0, 1);
        assert!(r1 > 0.8, "lag-1 x correlation {r1}");
    }

    #[test]
    fn anisotropy_follows_correlation_lengths() {
        // ax ≫ az → correlation decays slower along x than along z at the
        // same physical lag.
        let vk = VonKarman2D { nx: 128, nz: 128, dx: 1000.0, ax: 40_000.0, az: 4_000.0, hurst: 0.75 };
        let f = vk.generate(11);
        let rx = autocorrelation(&f, vk.nx, vk.nz, 0, 8);
        let rz = autocorrelation(&f, vk.nx, vk.nz, 1, 8);
        assert!(rx > rz + 0.1, "rx={rx} rz={rz}");
    }

    #[test]
    fn higher_hurst_is_smoother() {
        let rough = VonKarman2D { nx: 128, nz: 64, dx: 500.0, ax: 5_000.0, az: 5_000.0, hurst: 0.1 };
        let smooth = VonKarman2D { hurst: 1.0, ..rough };
        let fr = rough.generate(5);
        let fs = smooth.generate(5);
        // Mean squared lag-1 increment (roughness proxy).
        let inc = |f: &[f64]| -> f64 {
            let mut s = 0.0;
            let mut c = 0;
            for z in 0..64 {
                for x in 0..127 {
                    let d = f[x + 1 + 128 * z] - f[x + 128 * z];
                    s += d * d;
                    c += 1;
                }
            }
            s / c as f64
        };
        assert!(inc(&fs) < inc(&fr), "smooth {} rough {}", inc(&fs), inc(&fr));
    }

    #[test]
    fn crop_smaller_than_pow2_works() {
        let vk = VonKarman2D { nx: 100, nz: 37, dx: 1.0, ax: 10.0, az: 10.0, hurst: 0.5 };
        let f = vk.generate(1);
        assert_eq!(f.len(), 100 * 37);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "Hurst")]
    fn invalid_hurst_rejected() {
        let vk = VonKarman2D { nx: 8, nz: 8, dx: 1.0, ax: 1.0, az: 1.0, hurst: 0.0 };
        vk.generate(0);
    }
}
