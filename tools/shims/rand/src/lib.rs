//! Offline dev shim for `rand` 0.8 (core trait subset). Never shipped.

pub trait RngCore {
    fn next_u32(&mut self) -> u32;

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// PCG32-filled seed expansion (matches rand_core's default).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable by `Rng::gen`.
pub trait ShimStandard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl ShimStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl ShimStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl ShimStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl ShimStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl ShimStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait ShimSampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {
        $(
            impl ShimSampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    self.start + (self.end - self.start) * u
                }
            }
        )*
    };
}

impl_float_range!(f32, f64);

/// Unbiased integer sampling in `[lo, lo + span)` via rejection: draws are
/// accepted only below the largest multiple of `span` that fits in 2^64,
/// so no residue class is over-represented (plain modulo would bias small
/// values). `span` ≤ 2^64 always fits in u128, so a full-domain inclusive
/// range (e.g. `i64::MIN..=i64::MAX`, span exactly 2^64) is handled
/// instead of wrapping to a mod-by-zero.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, lo: i128, span: u128) -> i128 {
    debug_assert!(span > 0 && span <= 1u128 << 64);
    let zone = {
        let limit = 1u128 << 64;
        limit - limit % span
    };
    loop {
        let x = rng.next_u64() as u128;
        if x < zone {
            return lo + (x % span) as i128;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {
        $(
            impl ShimSampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let (lo, hi) = (self.start as i128, self.end as i128);
                    sample_span(rng, lo, (hi - lo) as u128) as $t
                }
            }
            impl ShimSampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "gen_range: empty range");
                    sample_span(rng, lo, (hi - lo) as u128 + 1) as $t
                }
            }
        )*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

pub trait Rng: RngCore {
    fn gen<T: ShimStandard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: ShimSampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Minimal xoshiro-style small RNG (not bit-compatible with rand's).
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng { state: u64::from_le_bytes(seed) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn full_domain_inclusive_ranges_do_not_panic() {
        let mut rng = SmallRng::seed_from_u64(7);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(10u8..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let draw = || {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..32).map(|_| rng.gen_range(0u32..1000)).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
