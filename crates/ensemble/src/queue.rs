//! Persistent priority job queue with cancellation.
//!
//! State machine (pinned in `DESIGN.md` and `tests/ensemble.rs`):
//!
//! ```text
//!            submit            claim              complete
//! (new) ──────────→ Pending ─────────→ Running ───────────→ Done
//!                      │                  │        └───────→ Failed
//!                      │ cancel           │ cancel (token)
//!                      ▼                  ▼
//!                  Cancelled          Cancelled   (worker observes the
//!                                                  token and discards)
//!        reopen after crash: Running ─→ Pending  (dead-process recovery)
//! ```
//!
//! Every transition rewrites the job's own file (`job-<id>.json`) via
//! write-to-temp + rename, so the on-disk queue is always a consistent
//! snapshot: a process killed mid-transition leaves either the old or the
//! new state, never a torn file. [`JobQueue::open`] reloads a directory
//! and demotes `Running` jobs back to `Pending` — a claim held by a dead
//! worker is not a claim.
//!
//! Claim order: highest `priority` first, FIFO (lowest id) within a
//! priority. In-flight cancellation is cooperative: [`JobQueue::cancel`]
//! flips the claim's [`CancelToken`]; the worker observes it at its next
//! check and completes the job as `Cancelled` without publishing results.

use crate::spec::ScenarioSpec;
use serde_json::Value;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Pending,
    Running,
    Done,
    Cancelled,
    Failed,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "pending" => JobState::Pending,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "cancelled" => JobState::Cancelled,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }
}

/// One queued scenario run.
#[derive(Debug, Clone)]
pub struct Job {
    pub id: u64,
    pub priority: i32,
    pub state: JobState,
    pub spec: ScenarioSpec,
    /// Content hash of the stored result (set on `Done`).
    pub result_hash: Option<String>,
    /// Failure detail (set on `Failed`).
    pub error: Option<String>,
}

/// Cooperative in-flight cancellation flag, shared between the queue and
/// the worker holding the claim.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Terminal outcome a worker reports back for a claimed job.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    Done { hash: String },
    Cancelled,
    Failed { error: String },
}

/// A claimed job: the snapshot to execute plus the cancellation token the
/// worker must poll.
#[derive(Debug, Clone)]
pub struct ClaimedJob {
    pub job: Job,
    pub token: CancelToken,
}

struct Inner {
    jobs: Vec<Job>,
    tokens: HashMap<u64, CancelToken>,
    next_id: u64,
}

/// The queue. All mutation goes through one mutex; persistence is one
/// file per job so concurrent workers never contend on a shared file.
pub struct JobQueue {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

impl JobQueue {
    /// Open (or create) a queue directory, reloading any persisted jobs.
    /// `Running` jobs are demoted to `Pending`: if this process can open
    /// the directory, the worker that claimed them is gone.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<JobQueue> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut jobs = Vec::new();
        let mut next_id = 1u64;
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("job-") && n.ends_with(".json"))
            })
            .collect();
        entries.sort();
        for path in entries {
            let text = std::fs::read_to_string(&path)?;
            let mut job = parse_job(&text)
                .map_err(|e| io::Error::other(format!("{}: {e}", path.display())))?;
            if job.state == JobState::Running {
                job.state = JobState::Pending;
                persist(&dir, &job)?;
            }
            next_id = next_id.max(job.id + 1);
            jobs.push(job);
        }
        Ok(JobQueue {
            dir,
            inner: Mutex::new(Inner { jobs, tokens: HashMap::new(), next_id }),
        })
    }

    /// Submit a scenario at `priority` (higher runs earlier). Returns the
    /// job id.
    pub fn submit(&self, spec: ScenarioSpec, priority: i32) -> io::Result<u64> {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        let job = Job {
            id,
            priority,
            state: JobState::Pending,
            spec,
            result_hash: None,
            error: None,
        };
        persist(&self.dir, &job)?;
        inner.jobs.push(job);
        Ok(id)
    }

    /// Claim the highest-priority pending job (FIFO within a priority).
    /// Returns `None` when nothing is pending.
    pub fn claim(&self) -> io::Result<Option<ClaimedJob>> {
        let mut inner = self.inner.lock().unwrap();
        let best = inner
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.state == JobState::Pending)
            .max_by(|(_, a), (_, b)| {
                a.priority.cmp(&b.priority).then(b.id.cmp(&a.id))
            })
            .map(|(i, _)| i);
        let Some(i) = best else { return Ok(None) };
        inner.jobs[i].state = JobState::Running;
        let job = inner.jobs[i].clone();
        persist(&self.dir, &job)?;
        let token = CancelToken::default();
        inner.tokens.insert(job.id, token.clone());
        Ok(Some(ClaimedJob { job, token }))
    }

    /// Report a claimed job's terminal outcome.
    pub fn complete(&self, id: u64, outcome: JobOutcome) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.tokens.remove(&id);
        let job = inner
            .jobs
            .iter_mut()
            .find(|j| j.id == id)
            .ok_or_else(|| io::Error::other(format!("complete: unknown job {id}")))?;
        match outcome {
            JobOutcome::Done { hash } => {
                job.state = JobState::Done;
                job.result_hash = Some(hash);
            }
            JobOutcome::Cancelled => job.state = JobState::Cancelled,
            JobOutcome::Failed { error } => {
                job.state = JobState::Failed;
                job.error = Some(error);
            }
        }
        let job = job.clone();
        persist(&self.dir, &job)
    }

    /// Cancel a job. A pending job is terminally cancelled here; a
    /// running job has its token flipped and the owning worker completes
    /// it as cancelled. Returns false for unknown or already-terminal
    /// jobs.
    pub fn cancel(&self, id: u64) -> io::Result<bool> {
        let mut inner = self.inner.lock().unwrap();
        let Some(job) = inner.jobs.iter_mut().find(|j| j.id == id) else {
            return Ok(false);
        };
        match job.state {
            JobState::Pending => {
                job.state = JobState::Cancelled;
                let job = job.clone();
                persist(&self.dir, &job)?;
                Ok(true)
            }
            JobState::Running => {
                if let Some(token) = inner.tokens.get(&id) {
                    token.cancel();
                }
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Snapshot of every job (for status displays and tests).
    pub fn jobs(&self) -> Vec<Job> {
        self.inner.lock().unwrap().jobs.clone()
    }

    /// Number of jobs not yet in a terminal state.
    pub fn open_jobs(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .jobs
            .iter()
            .filter(|j| matches!(j.state, JobState::Pending | JobState::Running))
            .count()
    }
}

/// Atomically (tmp + rename) write one job file.
fn persist(dir: &Path, job: &Job) -> io::Result<()> {
    let doc = serde_json::json!({
        "v": 1,
        "kind": "awp-job",
        "id": job.id,
        "priority": job.priority,
        "state": job.state.as_str(),
        "spec": job.spec.to_json(),
        "result_hash": job.result_hash.clone().map(Value::from).unwrap_or(Value::Null),
        "error": job.error.clone().map(Value::from).unwrap_or(Value::Null)
    });
    let path = dir.join(format!("job-{:08}.json", job.id));
    let tmp = dir.join(format!(".job-{:08}.json.tmp-{}", job.id, std::process::id()));
    std::fs::write(&tmp, doc.to_string())?;
    std::fs::rename(&tmp, &path)
}

fn parse_job(text: &str) -> Result<Job, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
    if v["kind"].as_str() != Some("awp-job") || v["v"].as_f64() != Some(1.0) {
        return Err("not an awp-job v1 file".into());
    }
    Ok(Job {
        id: v["id"].as_f64().ok_or("job: missing id")? as u64,
        priority: v["priority"].as_f64().ok_or("job: missing priority")? as i32,
        state: v["state"]
            .as_str()
            .and_then(JobState::parse)
            .ok_or("job: bad state")?,
        spec: ScenarioSpec::from_value(&v["spec"])?,
        result_hash: v["result_hash"].as_str().map(String::from),
        error: v["error"].as_str().map(String::from),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("awp-queue-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn spec() -> ScenarioSpec {
        ScenarioSpec::new("shakeout-k", 16).unwrap()
    }

    #[test]
    fn claims_follow_priority_then_fifo() {
        let dir = tmp_dir("prio");
        let q = JobQueue::open(&dir).unwrap();
        let low = q.submit(spec(), 1).unwrap();
        let hi_a = q.submit(spec(), 9).unwrap();
        let hi_b = q.submit(spec(), 9).unwrap();
        let order: Vec<u64> = std::iter::from_fn(|| {
            q.claim().unwrap().map(|c| {
                q.complete(c.job.id, JobOutcome::Done { hash: "x".into() }).unwrap();
                c.job.id
            })
        })
        .collect();
        assert_eq!(order, vec![hi_a, hi_b, low]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queue_survives_reopen_and_demotes_running() {
        let dir = tmp_dir("reopen");
        {
            let q = JobQueue::open(&dir).unwrap();
            q.submit(spec(), 5).unwrap();
            let c = q.claim().unwrap().unwrap();
            assert_eq!(c.job.state, JobState::Running);
            // Process "dies" here: the claim is never completed.
        }
        let q2 = JobQueue::open(&dir).unwrap();
        let jobs = q2.jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].state, JobState::Pending, "dead worker's claim released");
        // Ids keep counting past reloaded jobs.
        let id2 = q2.submit(spec(), 1).unwrap();
        assert!(id2 > jobs[0].id);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancellation_of_pending_and_running() {
        let dir = tmp_dir("cancel");
        let q = JobQueue::open(&dir).unwrap();
        let a = q.submit(spec(), 1).unwrap();
        let b = q.submit(spec(), 2).unwrap();
        assert!(q.cancel(a).unwrap());
        let c = q.claim().unwrap().unwrap();
        assert_eq!(c.job.id, b);
        assert!(!c.token.is_cancelled());
        assert!(q.cancel(b).unwrap(), "running job cancels via token");
        assert!(c.token.is_cancelled());
        q.complete(b, JobOutcome::Cancelled).unwrap();
        assert!(q.claim().unwrap().is_none(), "cancelled jobs are never re-claimed");
        assert!(!q.cancel(a).unwrap(), "terminal jobs cannot cancel again");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
