//! Solver configuration, optimisation toggles and the Table-2 code-version
//! presets.

use awp_grid::blocking::BlockSpec;
use awp_grid::dims::Dims3;
use awp_vcluster::CommMode;
use serde::{Deserialize, Serialize};

/// Absorbing boundary selection (paper §II.D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AbcKind {
    /// No absorbing boundaries (rigid box) — verification only.
    None,
    /// Cerjan sponge layers: unconditionally stable, weaker absorption.
    Sponge { width: usize, amp: f64 },
    /// Multi-axial PML (M-PML): strong absorption; `pmax` is the
    /// cross-coupling ratio stabilising strong media gradients.
    Mpml { width: usize, pmax: f64 },
}

impl AbcKind {
    /// The M8 production choice: "we successfully used M-PMLs with a width
    /// of 10 grid points" (§II.D). The cross-coupling ratio 0.3 is what our
    /// long-run probes need to keep the free-surface/PML corner stable —
    /// exactly the instability M-PML was invented to suppress ("the
    /// split-equation PMLs … are known to be numerically unstable", §II.D).
    pub fn m8() -> Self {
        AbcKind::Mpml { width: 10, pmax: 0.3 }
    }

    pub fn default_sponge() -> Self {
        AbcKind::Sponge { width: 20, amp: 0.92 }
    }

    pub fn width(&self) -> usize {
        match *self {
            AbcKind::None => 0,
            AbcKind::Sponge { width, .. } | AbcKind::Mpml { width, .. } => width,
        }
    }
}

/// Optimisation toggles — each maps to one of the paper's §IV items so
/// benches can measure them independently (Table 2 / Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverOpts {
    /// §IV.B: precompute reciprocal densities and harmonic moduli once
    /// ("we store the reciprocals of mu and lam") instead of dividing in
    /// the inner loops.
    pub reciprocal_media: bool,
    /// §IV.B cache blocking of the (k, j) loop nest.
    pub block: BlockSpec,
    /// §IV.A reduced algorithm-level communication (per-field per-axis
    /// minimal halo widths instead of blanket 2-cell exchanges).
    pub reduced_comm: bool,
    /// Explicit-SIMD kernel backend (runtime-dispatched AVX2/SSE2 with a
    /// portable scalar fallback). Requires `reciprocal_media`; bit-exact
    /// with the scalar optimized kernels, so it composes freely with every
    /// equivalence test — including the shell/interior overlap split.
    pub simd: bool,
    /// §IV.C computation/communication overlap via the shell/interior
    /// split timestep: boundary slabs update first, halo sends launch, the
    /// interior updates while messages fly. Composes with `simd`, `hybrid`
    /// and M-PML; requires the asynchronous engine
    /// (`SolverConfig::validate` rejects the combination otherwise).
    pub overlap: bool,
    /// §IV.A synchronous vs asynchronous engine.
    pub comm_mode: CommModeOpt,
    /// §IV.D hybrid MPI/OpenMP mode: intra-rank thread parallelism via
    /// Rayon. "While the hybrid approach reduces the load imbalance, it
    /// introduced significant idle thread overhead" — off by default, as
    /// in the paper's production runs.
    pub hybrid: bool,
    /// Worker count for the hybrid path: 0 uses rayon's global pool, any
    /// other value runs the kernels on a dedicated pool of exactly that
    /// many threads (deterministic on 1-core CI).
    #[serde(default)]
    pub threads: usize,
    /// Insert a global barrier every step (the redundant synchronisation
    /// the paper removes; kept togglable to measure T_sync).
    pub per_step_barrier: bool,
    /// Clustered local time stepping: partition the depth axis into
    /// rate-2ᵏ dt-clusters from the medium's per-plane CFL bounds and
    /// substep each at its own rate. `None` (the default, including in
    /// [`SolverOpts::optimized`]) keeps single-rate stepping; LTS stays an
    /// explicit opt-in ([`SolverOpts::optimized_lts`]) because a
    /// multi-rate schedule is a different — O(dt)-equivalent but not
    /// bit-identical — numerical scheme whenever the medium warrants ≥ 2
    /// rates. With a cluster census of 1 the solver delegates to the plain
    /// path and is bit-exact. Requires `reciprocal_media` (the windowed
    /// kernels assume the optimized layout) and, in parallel runs, a
    /// z-unpartitioned decomposition (`parts[2] == 1`).
    #[serde(default)]
    pub lts: Option<LtsOpts>,
    /// Cooperative work-stealing tile scheduler: decompose each rank's
    /// interior velocity/stress update into disjoint-write k-slab tiles on
    /// per-rank dispatch queues, and let ranks that finish early (or park
    /// in `finish_exchange`) steal tiles from lagging peers. `None` keeps
    /// the one-thread-per-rank path. Requires `overlap` (tiles are the
    /// interior window of the shell/interior split) and conflicts with the
    /// `hybrid`/`threads` intra-rank pool — the scheduler *is* the
    /// intra-host thread budget ([`ConfigError::SchedConflictsWithHybrid`]).
    /// Bit-exact with the unscheduled path under any steal order.
    #[serde(default)]
    pub sched: Option<SchedOpts>,
    /// Simulation-health sentinel cadence (`--health-every N`): every N
    /// steps each rank scans its shell slabs for non-finite velocities and
    /// records the |v| watermark, aborting with a clear `sim-health:` error
    /// on NaN/Inf instead of writing garbage outputs. 0 (the default)
    /// disables the probe entirely.
    #[serde(default)]
    pub health_every: u64,
}

/// Knobs for the work-stealing tile scheduler (see `awp_vcluster::sched`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedOpts {
    /// Tile granularity: z-planes per tile. Tiles keep the full i/j extent
    /// of the interior window (identical SIMD row geometry), so this is
    /// the only split knob. 0 means one tile per window (no stealing
    /// opportunity — useful for overhead measurement).
    pub tile_planes: usize,
}

impl SchedOpts {
    pub fn new() -> Self {
        Self { tile_planes: 4 }
    }
}

impl Default for SchedOpts {
    fn default() -> Self {
        Self::new()
    }
}

/// Knobs for the dt-cluster construction (see `awp_cvm::lts`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LtsOpts {
    /// Cap on the rate ladder: clusters step at most `2^max_rate_log2 × dt`.
    pub max_rate_log2: u32,
    /// Minimum cluster thickness in depth planes. Must be at least 4
    /// (2 × the stencil half-width) so the two ghost planes a fine cluster
    /// reads from its coarse neighbour never reach into a third cluster.
    pub min_slab: usize,
}

impl LtsOpts {
    pub fn new() -> Self {
        Self { max_rate_log2: 3, min_slab: 4 }
    }
}

impl Default for LtsOpts {
    fn default() -> Self {
        Self::new()
    }
}

/// Serializable mirror of [`CommMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommModeOpt {
    Synchronous,
    Asynchronous,
}

impl From<CommModeOpt> for CommMode {
    fn from(m: CommModeOpt) -> CommMode {
        match m {
            CommModeOpt::Synchronous => CommMode::Synchronous,
            CommModeOpt::Asynchronous => CommMode::Asynchronous,
        }
    }
}

impl SolverOpts {
    /// Everything on — AWP-ODC v7.2.
    pub fn optimized() -> Self {
        Self {
            reciprocal_media: true,
            block: BlockSpec::JAGUAR,
            reduced_comm: true,
            simd: true,
            overlap: true, // shell/interior split: overlap composes with simd/hybrid/M-PML
            comm_mode: CommModeOpt::Asynchronous,
            per_step_barrier: false,
            hybrid: false,
            threads: 0,
            lts: None,
            sched: None,
            health_every: 0,
        }
    }

    /// Everything on *plus* clustered local time stepping: when the
    /// medium's depth-contrast warrants ≥ 2 rates the solver substeps
    /// dt-clusters; otherwise the census collapses to one cluster and this
    /// is bit-identical to [`SolverOpts::optimized`].
    pub fn optimized_lts() -> Self {
        Self { lts: Some(LtsOpts::new()), ..Self::optimized() }
    }

    /// Everything off — the original research code.
    pub fn legacy() -> Self {
        Self {
            reciprocal_media: false,
            block: BlockSpec::UNBLOCKED,
            reduced_comm: false,
            simd: false,
            overlap: false,
            comm_mode: CommModeOpt::Synchronous,
            per_step_barrier: true,
            hybrid: false,
            threads: 0,
            lts: None,
            sched: None,
            health_every: 0,
        }
    }

    /// Everything on *plus* the work-stealing tile scheduler: interior
    /// updates run as disjoint-write k-slab tiles that idle ranks steal.
    /// Bit-exact with [`SolverOpts::optimized`] under any steal order.
    pub fn optimized_sched() -> Self {
        Self { sched: Some(SchedOpts::new()), ..Self::optimized() }
    }
}

/// A configuration rejected at solver construction — before any rank
/// thread spawns — instead of panicking mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `opts.overlap` requires the asynchronous engine: the split timestep
    /// posts sends early and completes receives late, which the ordered
    /// synchronous rendezvous cannot express.
    OverlapNeedsAsyncEngine,
    /// `opts.lts` requires the optimized (reciprocal-media) layout: the
    /// cluster schedule drives the windowed kernels, which assume it.
    LtsNeedsOptimizedLayout,
    /// `opts.lts` requires `parts[2] == 1` in parallel runs: with the
    /// depth axis unpartitioned every rank holds the full rate ladder, all
    /// cluster coupling stays rank-local, and halo exchange is per-cluster
    /// x/y traffic at each cluster's own cadence.
    LtsNeedsSingleZPart,
    /// `opts.lts.min_slab` must be ≥ 4: a fine cluster reads two ghost
    /// planes from its coarse neighbour, which must not span a cluster.
    LtsSlabTooThin,
    /// `opts.sched` conflicts with the `hybrid`/`threads` intra-rank pool:
    /// both claim the host's spare cores, and arbitrating a shared budget
    /// silently would make wall-clock numbers unattributable. Pick one
    /// thread strategy per run.
    SchedConflictsWithHybrid,
    /// `opts.sched` requires `opts.overlap`: tiles are the interior window
    /// of the shell/interior split; the unsplit step has no interior-only
    /// phase for thieves to help with.
    SchedNeedsOverlap,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::OverlapNeedsAsyncEngine => write!(
                f,
                "opts.overlap requires the asynchronous engine \
                 (set opts.comm_mode = Asynchronous or disable overlap)"
            ),
            ConfigError::LtsNeedsOptimizedLayout => write!(
                f,
                "opts.lts requires the optimized layout (set opts.reciprocal_media or disable lts)"
            ),
            ConfigError::LtsNeedsSingleZPart => write!(
                f,
                "opts.lts requires a z-unpartitioned decomposition (parts[2] == 1)"
            ),
            ConfigError::LtsSlabTooThin => write!(
                f,
                "opts.lts.min_slab must be at least 4 (two stencil half-widths)"
            ),
            ConfigError::SchedConflictsWithHybrid => write!(
                f,
                "opts.sched conflicts with the hybrid/threads intra-rank pool \
                 (disable opts.hybrid and set opts.threads = 0, or drop opts.sched)"
            ),
            ConfigError::SchedNeedsOverlap => write!(
                f,
                "opts.sched requires the shell/interior overlap split \
                 (set opts.overlap or drop opts.sched)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Code versions of Table 2, each enabling the optimisations the paper
/// attributes to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodeVersion {
    /// 2004 TeraShake-K: MPI tuning only.
    V1_0,
    /// 2005 TeraShake-D: I/O tuning.
    V2_0,
    /// 2006: partitioned mesh.
    V3_0,
    /// 2007 ShakeOut-K: incorporated SGSN.
    V4_0,
    /// 2008 ShakeOut-D: asynchronous communication.
    V5_0,
    /// 2009 W2W: single-CPU optimisation (+overlap experiments).
    V6_0,
    /// 2010: cache blocking.
    V7_1,
    /// 2010 M8: cache blocking + reduced communication.
    V7_2,
}

impl CodeVersion {
    pub const ALL: [CodeVersion; 8] = [
        CodeVersion::V1_0,
        CodeVersion::V2_0,
        CodeVersion::V3_0,
        CodeVersion::V4_0,
        CodeVersion::V5_0,
        CodeVersion::V6_0,
        CodeVersion::V7_1,
        CodeVersion::V7_2,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            CodeVersion::V1_0 => "1.0",
            CodeVersion::V2_0 => "2.0",
            CodeVersion::V3_0 => "3.0",
            CodeVersion::V4_0 => "4.0",
            CodeVersion::V5_0 => "5.0",
            CodeVersion::V6_0 => "6.0",
            CodeVersion::V7_1 => "7.1",
            CodeVersion::V7_2 => "7.2",
        }
    }

    /// Solver-level toggles for this version (I/O-side optimisations are
    /// handled by the pario crate).
    pub fn opts(&self) -> SolverOpts {
        let mut o = SolverOpts::legacy();
        if *self >= CodeVersion::V5_0 {
            o.comm_mode = CommModeOpt::Asynchronous;
            o.per_step_barrier = false;
        }
        if *self >= CodeVersion::V6_0 {
            o.reciprocal_media = true;
        }
        if *self >= CodeVersion::V7_1 {
            o.block = BlockSpec::JAGUAR;
        }
        if *self >= CodeVersion::V7_2 {
            o.reduced_comm = true;
        }
        o
    }
}

// Ordering for the >= comparisons above.
impl PartialOrd for CodeVersion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CodeVersion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (*self as u8).cmp(&(*other as u8))
    }
}

/// Full solver configuration for one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Global grid extent.
    pub dims: Dims3,
    /// Grid spacing (m).
    pub h: f64,
    /// Time step (s); must satisfy the CFL bound.
    pub dt: f64,
    /// Number of time steps.
    pub steps: usize,
    /// Absorbing boundary condition on sides and bottom.
    pub abc: AbcKind,
    /// Apply the free-surface condition at the top (else ABC there too).
    pub free_surface: bool,
    /// Enable anelastic attenuation (coarse-grained memory variables).
    pub attenuation: bool,
    /// Frequency band for the constant-Q fit (Hz).
    pub q_band: (f64, f64),
    pub opts: SolverOpts,
}

impl SolverConfig {
    /// Check option consistency. Called by `Solver::try_new` and
    /// `try_run_parallel` so invalid combinations fail the run gracefully
    /// instead of panicking a rank thread.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.opts.overlap && self.opts.comm_mode == CommModeOpt::Synchronous {
            return Err(ConfigError::OverlapNeedsAsyncEngine);
        }
        if let Some(lts) = self.opts.lts {
            if !self.opts.reciprocal_media {
                return Err(ConfigError::LtsNeedsOptimizedLayout);
            }
            if lts.min_slab < 4 {
                return Err(ConfigError::LtsSlabTooThin);
            }
        }
        if self.opts.sched.is_some() {
            if self.opts.hybrid || self.opts.threads > 0 {
                return Err(ConfigError::SchedConflictsWithHybrid);
            }
            if !self.opts.overlap {
                return Err(ConfigError::SchedNeedsOverlap);
            }
        }
        Ok(())
    }

    /// A small default box for tests and examples.
    pub fn small(dims: Dims3, h: f64, dt: f64, steps: usize) -> Self {
        Self {
            dims,
            h,
            dt,
            steps,
            abc: AbcKind::default_sponge(),
            free_surface: true,
            attenuation: false,
            q_band: (0.1, 2.0),
            opts: SolverOpts::optimized(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_accumulate_optimisations() {
        let v1 = CodeVersion::V1_0.opts();
        assert!(!v1.reciprocal_media && !v1.reduced_comm);
        assert_eq!(v1.comm_mode, CommModeOpt::Synchronous);
        let v5 = CodeVersion::V5_0.opts();
        assert_eq!(v5.comm_mode, CommModeOpt::Asynchronous);
        assert!(!v5.reciprocal_media);
        let v6 = CodeVersion::V6_0.opts();
        assert!(v6.reciprocal_media);
        assert_eq!(v6.block, BlockSpec::UNBLOCKED);
        let v72 = CodeVersion::V7_2.opts();
        assert!(v72.reduced_comm);
        assert_eq!(v72.block, BlockSpec::JAGUAR);
    }

    #[test]
    fn version_ordering_is_chronological() {
        for w in CodeVersion::ALL.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn optimized_differs_from_legacy() {
        assert_ne!(SolverOpts::optimized(), SolverOpts::legacy());
        assert_eq!(CodeVersion::V7_2.opts(), {
            let mut o = SolverOpts::optimized();
            o.overlap = false;
            // The explicit-SIMD backend postdates the paper's v7.2; the
            // Table-2 presets stay scalar so version contrasts are honest.
            o.simd = false;
            o
        });
    }

    #[test]
    fn validate_rejects_overlap_on_sync_engine() {
        let mut cfg = SolverConfig::small(Dims3::new(8, 8, 8), 100.0, 1e-3, 4);
        assert!(cfg.validate().is_ok());
        cfg.opts.overlap = true;
        cfg.opts.comm_mode = CommModeOpt::Synchronous;
        assert_eq!(cfg.validate(), Err(ConfigError::OverlapNeedsAsyncEngine));
        cfg.opts.overlap = false;
        assert!(cfg.validate().is_ok(), "sync engine without overlap is fine");
        let msg = ConfigError::OverlapNeedsAsyncEngine.to_string();
        assert!(msg.contains("asynchronous"), "{msg}");
    }

    #[test]
    fn optimized_enables_overlap_split() {
        let o = SolverOpts::optimized();
        assert!(o.overlap && o.simd, "v-next default: overlap composes with simd");
        assert_eq!(o.threads, 0, "global pool unless pinned");
    }

    #[test]
    fn lts_is_opt_in_and_validated() {
        assert!(SolverOpts::optimized().lts.is_none(), "LTS is an explicit opt-in");
        let o = SolverOpts::optimized_lts();
        assert_eq!(o.lts, Some(LtsOpts::new()));
        assert_eq!({ let mut p = o; p.lts = None; p }, SolverOpts::optimized());
        let mut cfg = SolverConfig::small(Dims3::new(8, 8, 8), 100.0, 1e-3, 4);
        cfg.opts = SolverOpts::optimized_lts();
        assert!(cfg.validate().is_ok());
        cfg.opts.reciprocal_media = false;
        cfg.opts.simd = false;
        cfg.opts.overlap = false;
        assert_eq!(cfg.validate(), Err(ConfigError::LtsNeedsOptimizedLayout));
        cfg.opts = SolverOpts::optimized_lts();
        cfg.opts.lts = Some(LtsOpts { max_rate_log2: 3, min_slab: 2 });
        assert_eq!(cfg.validate(), Err(ConfigError::LtsSlabTooThin));
    }

    #[test]
    fn sched_is_opt_in_and_arbitrated_against_hybrid() {
        assert!(SolverOpts::optimized().sched.is_none(), "scheduler is an explicit opt-in");
        let o = SolverOpts::optimized_sched();
        assert_eq!(o.sched, Some(SchedOpts::new()));
        assert_eq!({ let mut p = o; p.sched = None; p }, SolverOpts::optimized());

        let mut cfg = SolverConfig::small(Dims3::new(8, 8, 8), 100.0, 1e-3, 4);
        cfg.opts = SolverOpts::optimized_sched();
        assert!(cfg.validate().is_ok());
        // Thread-budget arbitration: the scheduler and the hybrid pool both
        // claim the host's spare cores — conflicting configs are rejected
        // up front, whichever knob expresses the conflict.
        cfg.opts.hybrid = true;
        assert_eq!(cfg.validate(), Err(ConfigError::SchedConflictsWithHybrid));
        cfg.opts.hybrid = false;
        cfg.opts.threads = 2;
        assert_eq!(cfg.validate(), Err(ConfigError::SchedConflictsWithHybrid));
        cfg.opts.threads = 0;
        assert!(cfg.validate().is_ok());
        // Tiles are the interior window of the overlap split.
        cfg.opts.overlap = false;
        assert_eq!(cfg.validate(), Err(ConfigError::SchedNeedsOverlap));
        let msg = ConfigError::SchedConflictsWithHybrid.to_string();
        assert!(msg.contains("hybrid"), "{msg}");
    }

    #[test]
    fn abc_widths() {
        assert_eq!(AbcKind::None.width(), 0);
        assert_eq!(AbcKind::m8().width(), 10);
        assert_eq!(AbcKind::default_sponge().width(), 20);
    }
}
