//! Property-based tests for the virtual-cluster substrate.

use awp_vcluster::cluster::{Cluster, CommMode};
use awp_vcluster::ledger::{Category, TimeLedger};
use awp_vcluster::message::make_tag;
use awp_vcluster::topology::CartTopology;
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tag matching delivers every message to the right receive regardless
    /// of send order (the out-of-order-arrival property of §IV.A).
    #[test]
    fn tags_survive_arbitrary_send_order(perm_seed in any::<u64>(), n_msgs in 1usize..20) {
        let cluster = Cluster::new(2, CommMode::Asynchronous);
        let ok = cluster.run(|ctx| {
            if ctx.rank() == 0 {
                // Send n messages in a seed-determined order.
                let mut order: Vec<u64> = (0..n_msgs as u64).collect();
                let mut x = perm_seed | 1;
                for i in (1..order.len()).rev() {
                    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                    order.swap(i, (x as usize) % (i + 1));
                }
                for t in order {
                    ctx.send(1, t, vec![t as f32]);
                }
                true
            } else {
                // Receive in ascending tag order.
                (0..n_msgs as u64).all(|t| ctx.recv(0, t).into_f32() == vec![t as f32])
            }
        });
        prop_assert!(ok.iter().all(|&b| b));
    }

    /// make_tag is injective over its field ranges.
    #[test]
    fn tag_injective(a in (0u8..16, 0u8..16, 0u8..16, 0u64..1000),
                     b in (0u8..16, 0u8..16, 0u8..16, 0u64..1000)) {
        let ta = make_tag(a.0, a.1, a.2, a.3);
        let tb = make_tag(b.0, b.1, b.2, b.3);
        if a != b {
            prop_assert_ne!(ta, tb);
        } else {
            prop_assert_eq!(ta, tb);
        }
    }

    /// Cartesian topology round-trips and neighbour relations are
    /// symmetric for arbitrary shapes.
    #[test]
    fn topology_symmetry(px in 1usize..5, py in 1usize..5, pz in 1usize..5) {
        let t = CartTopology::new([px, py, pz]);
        for r in 0..t.size() {
            prop_assert_eq!(t.rank_of(t.coords_of(r)), r);
            for axis in 0..3 {
                if let Some(n) = t.neighbor(r, axis, 1) {
                    prop_assert_eq!(t.neighbor(n, axis, -1), Some(r));
                    prop_assert_eq!(t.hop_distance(r, n), 1);
                }
            }
        }
    }

    /// Ledger merge is associative-ish: merging in any order gives the
    /// same totals.
    #[test]
    fn ledger_merge_order_independent(ms in proptest::collection::vec(0u64..50, 1..6)) {
        let ledgers: Vec<TimeLedger> = ms
            .iter()
            .map(|&m| {
                let mut l = TimeLedger::new();
                l.add(Category::Comp, Duration::from_millis(m));
                l.add(Category::Comm, Duration::from_millis(m / 2));
                l
            })
            .collect();
        let mut fwd = TimeLedger::new();
        for l in &ledgers {
            fwd.merge(l);
        }
        let mut rev = TimeLedger::new();
        for l in ledgers.iter().rev() {
            rev.merge(l);
        }
        prop_assert!((fwd.total_seconds() - rev.total_seconds()).abs() < 1e-12);
        prop_assert!(
            (fwd.seconds(Category::Comm) - rev.seconds(Category::Comm)).abs() < 1e-12
        );
    }
}

/// All-to-all storm: every rank sends to every other rank with unique
/// tags; every payload arrives intact (non-proptest stress test).
#[test]
fn all_to_all_storm() {
    let n = 6;
    for mode in [CommMode::Asynchronous] {
        let cluster = Cluster::new(n, mode);
        let sums: Vec<f32> = cluster.run(|ctx| {
            let me = ctx.rank();
            for dst in 0..n {
                if dst != me {
                    let tag = make_tag(3, me as u8, dst as u8, 0);
                    ctx.send(dst, tag, vec![(me * 10 + dst) as f32; 8]);
                }
            }
            let mut sum = 0.0f32;
            for src in 0..n {
                if src != me {
                    let tag = make_tag(3, src as u8, me as u8, 0);
                    let v = ctx.recv(src, tag).into_f32();
                    assert_eq!(v.len(), 8);
                    sum += v[0];
                }
            }
            sum
        });
        for (me, s) in sums.iter().enumerate() {
            let want: f32 = (0..n).filter(|&src| src != me).map(|src| (src * 10 + me) as f32).sum();
            assert_eq!(*s, want, "rank {me}");
        }
    }
}
